//! Ablation benches: the design choices DESIGN.md calls out — special
//! parents, parent sets, load balancing, and the in-flight concurrency
//! level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_baselines::DetectionRates;
use mot_bench::{ablation_table, churn_table, general_graph_table, Profile};
use mot_core::{MotConfig, MotTracker};
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_sim::{
    replay_moves, run_publish, ConcurrentConfig, ConcurrentEngine, TestBed, WorkloadSpec,
};

fn bench(c: &mut Criterion) {
    let p = Profile::quick(50);
    eprintln!("{}", ablation_table(&p).expect("figure").render());
    eprintln!("{}", general_graph_table(&p).expect("figure").render());
    eprintln!("{}", churn_table(0).expect("figure").render());

    // Variant timing: plain vs no-SP vs LB on one workload.
    let bed = TestBed::grid(12, 12, 1).unwrap();
    let w = WorkloadSpec::new(10, 80, 2).generate(&bed.graph);
    let mut group = c.benchmark_group("mot_variants_12x12");
    group.sample_size(20);
    for (label, cfg) in [
        ("plain", MotConfig::plain()),
        ("no_special_parents", MotConfig::no_special_parents()),
        ("load_balanced", MotConfig::load_balanced()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut t = MotTracker::new(&bed.overlay, &bed.oracle, cfg.clone());
                run_publish(&mut t, &w).unwrap();
                replay_moves(&mut t, &w, &bed.oracle).unwrap()
            })
        });
    }
    group.finish();

    // Overlay constants: practical vs paper-exact construction time.
    let mut group = c.benchmark_group("overlay_constants_12x12");
    group.sample_size(20);
    for (label, ocfg) in [
        ("practical", OverlayConfig::practical()),
        ("paper_exact", OverlayConfig::paper_exact()),
        ("singleton_parents", OverlayConfig::singleton_parents()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &ocfg, |b, ocfg| {
            b.iter(|| build_doubling(&bed.graph, &bed.oracle, ocfg, 7))
        });
    }
    group.finish();

    // In-flight sweep: how the concurrency level changes engine cost.
    let rates = DetectionRates::uniform(&bed.graph);
    let mut group = c.benchmark_group("concurrency_inflight_sweep");
    group.sample_size(15);
    for k in [1usize, 2, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut t = bed.make_tracker(mot_sim::Algo::Mot, &rates).unwrap();
                run_publish(t.as_mut(), &w).unwrap();
                ConcurrentEngine::run(
                    t.as_mut(),
                    &w,
                    &bed.oracle,
                    &ConcurrentConfig {
                        max_inflight_per_object: k,
                        queries_per_batch: 0,
                        seed: 1,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
