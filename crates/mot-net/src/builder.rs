//! Validating builder for [`Graph`].

use crate::error::NetError;
use crate::graph::{Edge, Graph};
use crate::node::{NodeId, Point};
use crate::Result;

/// Incrementally assembles a [`Graph`], validating every edge.
///
/// Weights must be finite and strictly positive, self-loops are rejected
/// (the paper defines `w(u,u) = 0` implicitly, not as stored edges), and a
/// duplicate undirected edge with a conflicting weight is an error
/// (re-inserting with the identical weight is an idempotent no-op, which
/// keeps generator code simple).
pub struct GraphBuilder {
    adjacency: Vec<Vec<Edge>>,
    positions: Option<Vec<Point>>,
    edge_count: usize,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); n],
            positions: None,
            edge_count: 0,
        }
    }

    /// Number of nodes the graph will have.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Attaches geographic positions (one per node).
    ///
    /// # Panics
    /// Panics if `positions.len()` differs from the node count.
    pub fn with_positions(mut self, positions: Vec<Point>) -> Self {
        assert_eq!(
            positions.len(),
            self.adjacency.len(),
            "positions must cover every node"
        );
        self.positions = Some(positions);
        self
    }

    /// Adds the undirected edge `(a, b)` with weight `w`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: f64) -> Result<()> {
        let n = self.adjacency.len();
        for node in [a, b] {
            if node.index() >= n {
                return Err(NetError::NodeOutOfRange { node, n });
            }
        }
        if a == b {
            return Err(NetError::SelfLoop { node: a });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(NetError::InvalidWeight { a, b, weight: w });
        }
        if let Some(existing) = self.adjacency[a.index()].iter().find(|e| e.to == b) {
            if (existing.weight - w).abs() > f64::EPSILON {
                return Err(NetError::DuplicateEdge { a, b });
            }
            return Ok(()); // idempotent re-insert
        }
        self.adjacency[a.index()].push(Edge { to: b, weight: w });
        self.adjacency[b.index()].push(Edge { to: a, weight: w });
        self.edge_count += 1;
        Ok(())
    }

    /// Finishes the build, requiring a non-empty, connected graph.
    pub fn build(self) -> Result<Graph> {
        if self.adjacency.is_empty() {
            return Err(NetError::EmptyGraph);
        }
        let g = self.build_unchecked();
        if !g.is_connected() {
            return Err(NetError::Disconnected);
        }
        Ok(g)
    }

    /// Finishes the build without the connectivity check (useful in tests
    /// and for intermediate constructions that mask nodes later).
    pub fn build_unchecked(mut self) -> Graph {
        // Deterministic neighbor order: ascending by id. Several paper
        // procedures (parent-set visits, tie-breaks) are specified in ID
        // order, and determinism makes experiments reproducible.
        for adj in &mut self.adjacency {
            adj.sort_by_key(|e| e.to);
        }
        Graph::from_parts(self.adjacency, self.positions, self.edge_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(5), 1.0),
            Err(NetError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(0), 1.0),
            Err(NetError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(1), 0.0),
            Err(NetError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(1), f64::NAN),
            Err(NetError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(1), f64::INFINITY),
            Err(NetError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn duplicate_edge_same_weight_is_idempotent() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 2.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_edge_conflicting_weight_is_error() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        assert!(matches!(
            b.add_edge(NodeId(1), NodeId(0), 3.0),
            Err(NetError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn build_rejects_empty_and_disconnected() {
        assert!(matches!(
            GraphBuilder::new(0).build(),
            Err(NetError::EmptyGraph)
        ));
        let b = GraphBuilder::new(2);
        assert!(matches!(b.build(), Err(NetError::Disconnected)));
    }

    #[test]
    fn neighbor_lists_are_sorted_by_id() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let order: Vec<_> = g.neighbors(NodeId(0)).iter().map(|e| e.to).collect();
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "positions must cover every node")]
    fn positions_length_mismatch_panics() {
        let _ = GraphBuilder::new(2).with_positions(vec![Point::new(0.0, 0.0)]);
    }
}
