//! The tracker runtime: drives the node machines to quiescence per
//! operation (the paper's one-by-one case, where event inter-arrival
//! times dwarf message propagation times).

use crate::arena::{ArenaStats, RouteArena};
use crate::faults::FaultModel;
use crate::message::{Message, Payload};
use crate::node::{Ctx, DlEntry, NodeState};
use crate::transport::{CostLedger, Delivery, LossyTransport, TimedTransport, Transport};
use mot_core::{CoreError, MotConfig, MoveOutcome, ObjectId, QueryResult, Tracker};
use mot_hierarchy::Overlay;
use mot_net::{DistanceOracle, NodeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// One operation of a concurrent batch. All operations in a batch must
/// reference *distinct* objects — the paper observes that overlay
/// changes for one object never interfere with another's, which is what
/// makes cross-object concurrency safe at message granularity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchOp {
    /// First detection of `object` at `proxy`.
    Publish {
        /// The object entering the system.
        object: ObjectId,
        /// The detecting bottom-level sensor.
        proxy: NodeId,
    },
    /// Hand `object` off to the sensor `to`.
    Move {
        /// The object moving.
        object: ObjectId,
        /// The destination sensor.
        to: NodeId,
    },
    /// Locate `object` from the sensor `from`.
    Query {
        /// The object being located.
        object: ObjectId,
        /// The querying sensor.
        from: NodeId,
    },
}

impl BatchOp {
    fn object(&self) -> ObjectId {
        match *self {
            BatchOp::Publish { object, .. }
            | BatchOp::Move { object, .. }
            | BatchOp::Query { object, .. } => object,
        }
    }
}

/// Result of a concurrently executed batch.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Total charged message distance across the batch.
    pub total_cost: f64,
    /// Wall-clock completion time (message latency = distance; climbs
    /// gated by the §4.1.2 periods when `period_base > 0`).
    pub makespan: f64,
    /// Charged cost attributed per object.
    pub per_object: Vec<(ObjectId, f64)>,
    /// Query answers observed (object → proxy).
    pub replies: Vec<(ObjectId, NodeId)>,
}

/// The one-by-one delivery pipe: reliable FIFO, or lossy with ack/retry.
enum Pipe {
    Reliable(Transport),
    Lossy(LossyTransport),
}

impl Pipe {
    fn send(&mut self, msg: Message) {
        match self {
            Pipe::Reliable(t) => t.send(msg),
            Pipe::Lossy(t) => t.send(msg),
        }
    }

    fn send_all(&mut self, msgs: impl IntoIterator<Item = Message>) {
        match self {
            Pipe::Reliable(t) => t.send_all(msgs),
            Pipe::Lossy(t) => t.send_all(msgs),
        }
    }

    fn ledger(&self) -> &CostLedger {
        match self {
            Pipe::Reliable(t) => &t.ledger,
            Pipe::Lossy(t) => &t.ledger,
        }
    }

    fn ledger_mut(&mut self) -> &mut CostLedger {
        match self {
            Pipe::Reliable(t) => &mut t.ledger,
            Pipe::Lossy(t) => &mut t.ledger,
        }
    }

    /// The next message whose effects should be applied. Duplicates are
    /// consumed here (already billed as retries, never re-applied);
    /// retry-budget exhaustion surfaces as [`CoreError::DeliveryFailed`].
    fn deliver(&mut self, oracle: &dyn DistanceOracle) -> mot_core::Result<Option<Message>> {
        match self {
            Pipe::Reliable(t) => Ok(t.deliver(oracle)),
            Pipe::Lossy(t) => loop {
                match t.deliver(oracle) {
                    None => return Ok(None),
                    Some(Delivery::Apply(m)) => return Ok(Some(m)),
                    Some(Delivery::Duplicate(_)) => continue,
                    Some(Delivery::Failed { msg, attempts }) => {
                        return Err(CoreError::DeliveryFailed {
                            object: msg.payload.object(),
                            attempts,
                        })
                    }
                }
            },
        }
    }
}

struct Inner<'a> {
    overlay: &'a Overlay,
    oracle: &'a dyn DistanceOracle,
    use_special_parents: bool,
    nodes: Vec<NodeState>,
    transport: Pipe,
    proxies: HashMap<ObjectId, NodeId>,
    last_reply: Option<(ObjectId, NodeId)>,
    /// Reply (result delivery) distance, reported separately from the
    /// query cost like the direct implementation.
    pub reply_distance: f64,
    /// Freelist for the route buffers riding inside payloads.
    arena: RouteArena,
    /// Reused collector for each delivery's outgoing messages.
    out_buf: Vec<Message>,
}

impl Inner<'_> {
    fn run_to_idle(&mut self) -> mot_core::Result<()> {
        while let Some(msg) = self.transport.deliver(self.oracle)? {
            if let Payload::Reply { object, proxy } = msg.payload {
                self.last_reply = Some((object, proxy));
                self.reply_distance += self.oracle.dist(msg.src, msg.dst);
                continue;
            }
            let ctx = Ctx {
                overlay: self.overlay,
                oracle: self.oracle,
                use_special_parents: self.use_special_parents,
            };
            self.out_buf.clear();
            self.nodes[msg.dst.index()].handle(
                msg.dst,
                msg.payload,
                &ctx,
                &mut self.arena,
                &mut self.out_buf,
            );
            self.transport.send_all(self.out_buf.drain(..));
        }
        Ok(())
    }

    /// Seeds the level-0 entry at a (new) proxy and builds the messages
    /// that launch the climb.
    fn seed_climb_messages(&mut self, o: ObjectId, proxy: NodeId, publish: bool) -> Vec<Message> {
        self.arena.begin_op();
        // level-0 special parent, same policy as internal levels
        let sp0 = if self.use_special_parents && self.overlay.sp_level(0) != 0 {
            Some(self.overlay.sp_host(proxy, 0, 0))
        } else {
            None
        };
        self.nodes[proxy.index()].seed_proxy_entry(o, proxy, sp0, &mut self.arena);
        let mut msgs = Vec::new();
        if let Some(host) = sp0 {
            msgs.push(Message {
                src: proxy,
                dst: host,
                payload: Payload::SpInstall {
                    object: o,
                    guarded_level: 0,
                    child: proxy,
                },
            });
        }
        if self.overlay.height() >= 1 {
            let station = self.overlay.station(proxy, 1);
            let mut prev_members = self.arena.take();
            prev_members.push(proxy);
            msgs.push(Message {
                src: proxy,
                dst: station[0],
                payload: Payload::Climb {
                    object: o,
                    origin: proxy,
                    level: 1,
                    index: 0,
                    prev_members,
                    added: self.arena.take(),
                    publish,
                },
            });
        }
        msgs
    }

    /// Seeds and launches a climb on the FIFO transport (one-by-one path).
    fn start_climb(&mut self, o: ObjectId, proxy: NodeId, publish: bool) {
        let msgs = self.seed_climb_messages(o, proxy, publish);
        self.transport.send_all(msgs);
    }
}

/// A message-passing MOT tracker (one-by-one execution).
///
/// Implements [`Tracker`] by injecting protocol messages and running the
/// network to quiescence; costs come from the transport's distance
/// ledger, mirroring the direct implementation's accounting (charged:
/// publish/insert/delete/query/descend; uncharged bookkeeping:
/// SDL installs/removes, repoints; replies ledgered separately).
pub struct ProtoTracker<'a> {
    inner: RefCell<Inner<'a>>,
}

impl<'a> ProtoTracker<'a> {
    /// Creates the runtime over a prebuilt overlay. Only the
    /// `use_special_parents` switch of `cfg` applies (the message runtime
    /// models plain MOT; load balancing composes at the storage layer and
    /// is exercised through the direct implementation).
    pub fn new(overlay: &'a Overlay, oracle: &'a dyn DistanceOracle, cfg: &MotConfig) -> Self {
        Self::with_pipe(overlay, oracle, cfg, Pipe::Reliable(Transport::new()))
    }

    /// Creates the runtime over a [`LossyTransport`] driven by `faults`:
    /// charged messages ride the ack/retry protocol (`max_attempts`
    /// transmissions each before [`CoreError::DeliveryFailed`]), wasted
    /// distance accrues under the uncharged `retries` ledger kind, and
    /// redelivered messages are applied exactly once. Only one-by-one
    /// operations go through the lossy pipe; `run_batch` models timing,
    /// not loss, and stays reliable.
    pub fn with_faults(
        overlay: &'a Overlay,
        oracle: &'a dyn DistanceOracle,
        cfg: &MotConfig,
        faults: Box<dyn FaultModel>,
        max_attempts: u32,
    ) -> Self {
        Self::with_pipe(
            overlay,
            oracle,
            cfg,
            Pipe::Lossy(LossyTransport::new(faults, max_attempts)),
        )
    }

    fn with_pipe(
        overlay: &'a Overlay,
        oracle: &'a dyn DistanceOracle,
        cfg: &MotConfig,
        transport: Pipe,
    ) -> Self {
        ProtoTracker {
            inner: RefCell::new(Inner {
                overlay,
                oracle,
                use_special_parents: cfg.use_special_parents,
                nodes: vec![NodeState::default(); overlay.node_count()],
                transport,
                proxies: HashMap::new(),
                last_reply: None,
                reply_distance: 0.0,
                arena: RouteArena::new(),
                out_buf: Vec::new(),
            }),
        }
    }

    /// Fault overhead (lost + duplicate transmission distance) billed
    /// during the most recent operation; 0 on the reliable transport.
    pub fn retry_distance(&self) -> f64 {
        self.inner.borrow().transport.ledger().retries()
    }

    /// Toggles route-buffer reuse (on by default). Disabling makes every
    /// buffer a fresh allocation — the reference mode the churn parity
    /// test compares against; results must be bit-identical either way.
    pub fn set_buffer_reuse(&mut self, on: bool) {
        self.inner.borrow_mut().arena.set_enabled(on);
    }

    /// Route-buffer arena counters (takes / freelist hits / recycles).
    pub fn arena_stats(&self) -> ArenaStats {
        self.inner.borrow().arena.stats()
    }

    /// Whether `node` holds `o` at role `level` (for differential tests).
    pub fn holds(&self, node: NodeId, level: usize, o: ObjectId) -> bool {
        self.inner.borrow().nodes[node.index()].holds(o, level)
    }

    /// Total reply (result delivery) distance accumulated so far.
    pub fn reply_distance(&self) -> f64 {
        self.inner.borrow().reply_distance
    }

    /// Executes a batch of operations on *distinct* objects concurrently
    /// at message granularity: all operations start at time 0, messages
    /// race through a timed transport (latency = distance), and climbs
    /// entering level `i` wait for the period `Φ(i) = period_base · 2^i`
    /// (§4.1.2; 0 disables the gate). Because the objects are distinct,
    /// the final state is identical to any sequential execution — what
    /// concurrency buys is the makespan.
    ///
    /// # Panics
    /// Panics if two operations reference the same object.
    pub fn run_batch(
        &mut self,
        ops: &[BatchOp],
        period_base: f64,
    ) -> mot_core::Result<BatchOutcome> {
        {
            let mut seen = std::collections::HashSet::new();
            for op in ops {
                assert!(
                    seen.insert(op.object()),
                    "batch operations must reference distinct objects ({} repeats)",
                    op.object()
                );
            }
        }
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let mut timed = TimedTransport::new(period_base);
        let mut outcome = BatchOutcome::default();
        let mut per_object: HashMap<ObjectId, f64> = HashMap::new();

        // Inject every operation at t = 0.
        for op in ops {
            match *op {
                BatchOp::Publish { object, proxy } => {
                    if inner.proxies.contains_key(&object) {
                        return Err(CoreError::AlreadyPublished(object));
                    }
                    if proxy.index() >= inner.nodes.len() {
                        return Err(CoreError::UnknownNode(proxy));
                    }
                    for m in inner.seed_climb_messages(object, proxy, true) {
                        timed.send_at(m, 0.0, inner.oracle);
                    }
                    inner.proxies.insert(object, proxy);
                }
                BatchOp::Move { object, to } => {
                    let from = *inner
                        .proxies
                        .get(&object)
                        .ok_or(CoreError::UnknownObject(object))?;
                    if to.index() >= inner.nodes.len() {
                        return Err(CoreError::UnknownNode(to));
                    }
                    if from == to {
                        continue;
                    }
                    for m in inner.seed_climb_messages(object, to, false) {
                        timed.send_at(m, 0.0, inner.oracle);
                    }
                    inner.proxies.insert(object, to);
                }
                BatchOp::Query { object, from } => {
                    if !inner.proxies.contains_key(&object) {
                        return Err(CoreError::UnknownObject(object));
                    }
                    if from.index() >= inner.nodes.len() {
                        return Err(CoreError::UnknownNode(from));
                    }
                    inner.arena.begin_op();
                    timed.send_at(
                        Message {
                            src: from,
                            dst: from,
                            payload: Payload::Query {
                                object,
                                origin: from,
                                level: 0,
                                index: 0,
                            },
                        },
                        0.0,
                        inner.oracle,
                    );
                }
            }
        }

        // Race everything to quiescence.
        while let Some(msg) = timed.deliver(inner.oracle) {
            let sent_at = timed.now;
            if msg.payload.charged() {
                *per_object.entry(msg.payload.object()).or_default() +=
                    inner.oracle.dist(msg.src, msg.dst);
            }
            if let Payload::Reply { object, proxy } = msg.payload {
                outcome.replies.push((object, proxy));
                continue;
            }
            let ctx = Ctx {
                overlay: inner.overlay,
                oracle: inner.oracle,
                use_special_parents: inner.use_special_parents,
            };
            inner.out_buf.clear();
            inner.nodes[msg.dst.index()].handle(
                msg.dst,
                msg.payload,
                &ctx,
                &mut inner.arena,
                &mut inner.out_buf,
            );
            for m in inner.out_buf.drain(..) {
                timed.send_at(m, sent_at, inner.oracle);
            }
        }
        outcome.total_cost = timed.ledger.charged;
        outcome.makespan = timed.now;
        outcome.per_object = {
            let mut v: Vec<_> = per_object.into_iter().collect();
            v.sort_by_key(|&(o, _)| o);
            v
        };
        Ok(outcome)
    }

    /// Distance accumulated under a payload kind since the start.
    fn check_node(&self, u: NodeId) -> mot_core::Result<()> {
        if u.index() >= self.inner.borrow().nodes.len() {
            return Err(CoreError::UnknownNode(u));
        }
        Ok(())
    }
}

impl Tracker for ProtoTracker<'_> {
    fn name(&self) -> String {
        "MOT (message-passing)".to_string()
    }

    fn publish(&mut self, o: ObjectId, proxy: NodeId) -> mot_core::Result<f64> {
        self.check_node(proxy)?;
        let mut inner = self.inner.borrow_mut();
        if inner.proxies.contains_key(&o) {
            return Err(CoreError::AlreadyPublished(o));
        }
        inner.transport.ledger_mut().reset();
        inner.start_climb(o, proxy, true);
        inner.run_to_idle()?;
        inner.proxies.insert(o, proxy);
        Ok(inner.transport.ledger().charged)
    }

    fn move_object(&mut self, o: ObjectId, to: NodeId) -> mot_core::Result<MoveOutcome> {
        self.check_node(to)?;
        let mut inner = self.inner.borrow_mut();
        let from = *inner.proxies.get(&o).ok_or(CoreError::UnknownObject(o))?;
        if from == to {
            return Ok(MoveOutcome { from, cost: 0.0 });
        }
        inner.transport.ledger_mut().reset();
        inner.start_climb(o, to, false);
        inner.run_to_idle()?;
        inner.proxies.insert(o, to);
        Ok(MoveOutcome {
            from,
            cost: inner.transport.ledger().charged,
        })
    }

    fn query(&self, from: NodeId, o: ObjectId) -> mot_core::Result<QueryResult> {
        self.check_node(from)?;
        let mut inner = self.inner.borrow_mut();
        if !inner.proxies.contains_key(&o) {
            return Err(CoreError::UnknownObject(o));
        }
        inner.transport.ledger_mut().reset();
        inner.last_reply = None;
        inner.arena.begin_op();
        inner.transport.send(Message {
            src: from,
            dst: from, // zero-distance self-delivery starts the probe
            payload: Payload::Query {
                object: o,
                origin: from,
                level: 0,
                index: 0,
            },
        });
        inner.run_to_idle()?;
        let (obj, proxy) = inner.last_reply.expect("published objects always resolve");
        debug_assert_eq!(obj, o);
        Ok(QueryResult {
            proxy,
            cost: inner.transport.ledger().charged,
        })
    }

    fn proxy_of(&self, o: ObjectId) -> Option<NodeId> {
        self.inner.borrow().proxies.get(&o).copied()
    }

    fn node_loads(&self) -> Vec<usize> {
        self.inner
            .borrow()
            .nodes
            .iter()
            .map(NodeState::load)
            .collect()
    }
}

impl NodeState {
    /// Installs the level-0 (proxy) entry directly — the proxy detects
    /// the object locally; no message is needed for its own entry.
    pub fn seed_proxy_entry(
        &mut self,
        o: ObjectId,
        me: NodeId,
        sp_host: Option<NodeId>,
        arena: &mut RouteArena,
    ) {
        let mut level_members = arena.take();
        level_members.push(me);
        self.insert_entry(
            o,
            0,
            DlEntry {
                down_members: arena.take(),
                level_members,
                sp_host,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_hierarchy::{build_doubling, OverlayConfig};
    use mot_net::generators;
    use mot_net::DenseOracle;

    fn env() -> (mot_net::Graph, DenseOracle) {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        (g, m)
    }

    #[test]
    fn publish_move_query_lifecycle() {
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let o = ObjectId(0);
        let c = t.publish(o, NodeId(0)).unwrap();
        assert!(c > 0.0);
        let mv = t.move_object(o, NodeId(1)).unwrap();
        assert_eq!(mv.from, NodeId(0));
        assert!(mv.cost > 0.0);
        for x in g.nodes() {
            let q = t.query(x, o).unwrap();
            assert_eq!(q.proxy, NodeId(1), "query from {x}");
        }
        assert!(t.reply_distance() > 0.0);
    }

    #[test]
    fn error_paths() {
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        assert!(matches!(
            t.query(NodeId(0), ObjectId(7)),
            Err(CoreError::UnknownObject(_))
        ));
        t.publish(ObjectId(0), NodeId(2)).unwrap();
        assert!(matches!(
            t.publish(ObjectId(0), NodeId(3)),
            Err(CoreError::AlreadyPublished(_))
        ));
        assert!(matches!(
            t.publish(ObjectId(1), NodeId(999)),
            Err(CoreError::UnknownNode(_))
        ));
    }

    #[test]
    fn batch_publish_matches_sequential_cost_with_smaller_makespan() {
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let pubs: Vec<BatchOp> = (0..8u32)
            .map(|k| BatchOp::Publish {
                object: ObjectId(k),
                proxy: NodeId(k * 4 % 36),
            })
            .collect();

        // sequential reference
        let mut seq = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let mut seq_cost = 0.0;
        let mut latencies = Vec::new();
        for op in &pubs {
            if let BatchOp::Publish { object, proxy } = *op {
                let c = seq.publish(object, proxy).unwrap();
                seq_cost += c;
                latencies.push(c);
            }
        }

        // concurrent batch (no period gate)
        let mut con = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let out = con.run_batch(&pubs, 0.0).unwrap();
        assert!(
            (out.total_cost - seq_cost).abs() < 1e-6,
            "batch cost {} vs sequential {}",
            out.total_cost,
            seq_cost
        );
        // cross-object parallelism: finish before the serialized sum but
        // no earlier than the slowest single operation's own latency.
        assert!(
            out.makespan < seq_cost,
            "no parallelism: makespan {}",
            out.makespan
        );
        // identical final state
        for node in g.nodes() {
            for level in 0..=overlay.height() {
                for k in 0..8u32 {
                    assert_eq!(
                        seq.holds(node, level, ObjectId(k)),
                        con.holds(node, level, ObjectId(k))
                    );
                }
            }
        }
        assert_eq!(out.per_object.len(), 8);
    }

    #[test]
    fn batch_moves_and_queries_race_safely() {
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        for k in 0..6u32 {
            t.publish(ObjectId(k), NodeId(k * 6 % 36)).unwrap();
        }
        // moves for objects 0..3, queries for objects 3..6 — distinct
        let ops = vec![
            BatchOp::Move {
                object: ObjectId(0),
                to: NodeId(1),
            },
            BatchOp::Move {
                object: ObjectId(1),
                to: NodeId(7),
            },
            BatchOp::Move {
                object: ObjectId(2),
                to: NodeId(13),
            },
            BatchOp::Query {
                object: ObjectId(3),
                from: NodeId(35),
            },
            BatchOp::Query {
                object: ObjectId(4),
                from: NodeId(0),
            },
            BatchOp::Query {
                object: ObjectId(5),
                from: NodeId(17),
            },
        ];
        let out = t.run_batch(&ops, 0.0).unwrap();
        assert_eq!(out.replies.len(), 3);
        for &(o, answered) in &out.replies {
            assert_eq!(Some(answered), t.proxy_of(o), "query answer for {o}");
        }
        assert_eq!(t.proxy_of(ObjectId(0)), Some(NodeId(1)));
        assert_eq!(t.proxy_of(ObjectId(2)), Some(NodeId(13)));
        // post-batch structure still answers everything correctly
        for k in 0..6u32 {
            let truth = t.proxy_of(ObjectId(k)).unwrap();
            assert_eq!(t.query(NodeId(20), ObjectId(k)).unwrap().proxy, truth);
        }
    }

    #[test]
    fn period_gating_slows_makespan_but_not_cost() {
        let (_, m) = env();
        let g = generators::grid(6, 6).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let pubs: Vec<BatchOp> = (0..5u32)
            .map(|k| BatchOp::Publish {
                object: ObjectId(k),
                proxy: NodeId(k * 7 % 36),
            })
            .collect();
        let mut free = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let out_free = free.run_batch(&pubs, 0.0).unwrap();
        let mut gated = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let out_gated = gated.run_batch(&pubs, 1.0).unwrap();
        assert!((out_free.total_cost - out_gated.total_cost).abs() < 1e-6);
        assert!(
            out_gated.makespan >= out_free.makespan,
            "periods cannot speed things up: {} < {}",
            out_gated.makespan,
            out_free.makespan
        );
    }

    #[test]
    #[should_panic(expected = "distinct objects")]
    fn batch_rejects_duplicate_objects() {
        let g = generators::grid(3, 3).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let _ = t.run_batch(
            &[
                BatchOp::Publish {
                    object: ObjectId(0),
                    proxy: NodeId(0),
                },
                BatchOp::Move {
                    object: ObjectId(0),
                    to: NodeId(1),
                },
            ],
            0.0,
        );
    }

    #[test]
    fn lossy_runtime_with_clean_model_matches_reliable_costs() {
        use crate::faults::NoFaults;
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut clean = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let mut lossy =
            ProtoTracker::with_faults(&overlay, &m, &MotConfig::plain(), Box::new(NoFaults), 8);
        let o = ObjectId(0);
        assert_eq!(
            clean.publish(o, NodeId(0)).unwrap(),
            lossy.publish(o, NodeId(0)).unwrap()
        );
        assert_eq!(
            clean.move_object(o, NodeId(7)).unwrap().cost,
            lossy.move_object(o, NodeId(7)).unwrap().cost
        );
        assert_eq!(
            clean.query(NodeId(35), o).unwrap().cost,
            lossy.query(NodeId(35), o).unwrap().cost
        );
        assert_eq!(lossy.retry_distance(), 0.0);
    }

    #[test]
    fn dropped_messages_retry_to_completion_with_identical_charges() {
        use crate::faults::ScriptedFaults;
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut clean = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        // drop the 2nd and 5th transmissions of the publish
        let faults = ScriptedFaults::dropping([false, true, false, false, true]);
        let mut lossy =
            ProtoTracker::with_faults(&overlay, &m, &MotConfig::plain(), Box::new(faults), 8);
        let o = ObjectId(0);
        let c_clean = clean.publish(o, NodeId(14)).unwrap();
        let c_lossy = lossy.publish(o, NodeId(14)).unwrap();
        assert_eq!(
            c_clean, c_lossy,
            "retries restore delivery; charged cost unchanged"
        );
        assert!(lossy.retry_distance() > 0.0, "wasted attempts were billed");
        for x in g.nodes() {
            assert_eq!(lossy.query(x, o).unwrap().proxy, NodeId(14));
        }
    }

    #[test]
    fn duplicated_messages_apply_once_end_to_end() {
        use crate::faults::ScriptedFaults;
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut clean = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        // duplicate the first three deliveries of every operation
        let faults = ScriptedFaults::duplicating([true, true, true]);
        let mut lossy =
            ProtoTracker::with_faults(&overlay, &m, &MotConfig::plain(), Box::new(faults), 8);
        let o = ObjectId(0);
        let c_clean = clean.publish(o, NodeId(3)).unwrap();
        let c_lossy = lossy.publish(o, NodeId(3)).unwrap();
        assert_eq!(c_clean, c_lossy, "duplicates never double-charge");
        assert!(lossy.retry_distance() > 0.0, "duplicate arrivals billed");
        // identical final state: redelivery applied exactly once
        for node in g.nodes() {
            for level in 0..=overlay.height() {
                assert_eq!(
                    clean.holds(node, level, o),
                    lossy.holds(node, level, o),
                    "state diverged at {node} level {level}"
                );
            }
        }
        for x in g.nodes() {
            assert_eq!(lossy.query(x, o).unwrap().proxy, NodeId(3));
        }
    }

    #[test]
    fn exhausted_retry_budget_surfaces_delivery_failed() {
        use crate::faults::ScriptedFaults;
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        // every node's inbox is gone: the first climb message can never
        // land, so the publish must fail cleanly instead of hanging
        let faults = ScriptedFaults::nodes_down(g.nodes());
        let mut t =
            ProtoTracker::with_faults(&overlay, &m, &MotConfig::plain(), Box::new(faults), 4);
        match t.publish(ObjectId(9), NodeId(0)) {
            Err(CoreError::DeliveryFailed { object, attempts }) => {
                assert_eq!(object, ObjectId(9));
                assert_eq!(attempts, 4);
            }
            other => panic!("expected DeliveryFailed, got {other:?}"),
        }
    }

    #[test]
    fn random_walk_stays_consistent() {
        use rand::{Rng, SeedableRng};
        let (g, m) = env();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let o = ObjectId(0);
        let mut proxy = NodeId(17);
        t.publish(o, proxy).unwrap();
        for _ in 0..150 {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[rng.gen_range(0..nbrs.len())].to;
            let mv = t.move_object(o, proxy).unwrap();
            assert!(mv.cost > 0.0);
        }
        for x in g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, proxy);
        }
    }
}
