//! Object mobility models and workload generation.
//!
//! The paper assumes the distance an object can traverse per unit time is
//! bounded, i.e. objects hand off between *adjacent* sensors. The random
//! walk model hops one adjacency per move (the classic tracking
//! workload); the waypoint model walks shortest paths toward successive
//! random targets, producing directional traces with hot corridors —
//! traffic the rate-conscious baselines can genuinely exploit.

use mot_core::ObjectId;
use mot_net::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How objects pick their next proxy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityModel {
    /// Uniform hop to a random adjacent sensor per move.
    RandomWalk,
    /// Walk a shortest path toward a random waypoint; pick a new waypoint
    /// on arrival.
    Waypoint,
    /// Shuttle between two fixed anchor sensors along shortest paths —
    /// the most predictable traffic possible, i.e. the *best case* for
    /// the traffic-conscious baselines (every crossing is on one hot
    /// corridor the rate-built trees can hug) and therefore the honest
    /// stress test for MOT's traffic-obliviousness claim.
    Commuter,
}

/// One maintenance operation: object `object` moves `from → to`
/// (`from` is recorded so optimal costs and detection rates don't need
/// replaying).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveOp {
    /// The moving object.
    pub object: ObjectId,
    /// Proxy the object departs (its pre-move detector).
    pub from: NodeId,
    /// Proxy the object arrives at (its new detector).
    pub to: NodeId,
}

/// A complete generated workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Initial proxy per object (index = object id).
    pub initial: Vec<NodeId>,
    /// Moves in a random global interleaving that preserves each object's
    /// own order (the paper replays "operations per object in random
    /// order").
    pub moves: Vec<MoveOp>,
}

impl Workload {
    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.initial.len()
    }

    /// The `(from, to)` pairs — input for
    /// `mot_baselines::DetectionRates::from_moves` (the baselines'
    /// traffic knowledge).
    pub fn move_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.moves.iter().map(|m| (m.from, m.to)).collect()
    }

    /// Final proxy of every object after the full replay.
    pub fn final_proxies(&self) -> Vec<NodeId> {
        let mut p = self.initial.clone();
        for m in &self.moves {
            p[m.object.index()] = m.to;
        }
        p
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of tracked objects.
    pub objects: usize,
    /// Moves generated per object.
    pub moves_per_object: usize,
    /// Mobility model driving the trace.
    pub model: MobilityModel,
    /// RNG seed — the same spec always generates the same workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Convenience constructor for the paper's standard workload shape.
    pub fn new(objects: usize, moves_per_object: usize, seed: u64) -> Self {
        WorkloadSpec {
            objects,
            moves_per_object,
            model: MobilityModel::RandomWalk,
            seed,
        }
    }

    /// Generates the workload on `g`.
    pub fn generate(&self, g: &Graph) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = g.node_count();
        let initial: Vec<NodeId> = (0..self.objects)
            .map(|_| NodeId::from_index(rng.gen_range(0..n)))
            .collect();

        // Per-object move sequences.
        let mut per_object: Vec<Vec<MoveOp>> = Vec::with_capacity(self.objects);
        for (oi, &start) in initial.iter().enumerate() {
            let o = ObjectId(oi as u32);
            let mut seq = Vec::with_capacity(self.moves_per_object);
            let mut cur = start;
            let mut waypoint_path: Vec<NodeId> = Vec::new();
            // Commuter state: the opposite anchor (the walk shuttles
            // start <-> anchor forever).
            let far_anchor = loop {
                let t = NodeId::from_index(rng.gen_range(0..n));
                if t != start {
                    break t;
                }
            };
            let mut heading_out = true;
            for _ in 0..self.moves_per_object {
                let next = match self.model {
                    MobilityModel::RandomWalk => {
                        let nbrs = g.neighbors(cur);
                        nbrs[rng.gen_range(0..nbrs.len())].to
                    }
                    MobilityModel::Waypoint => {
                        if waypoint_path.is_empty() {
                            let target = loop {
                                let t = NodeId::from_index(rng.gen_range(0..n));
                                if t != cur {
                                    break t;
                                }
                            };
                            // shortest path cur -> target, excluding cur
                            let tree = mot_net::shortest_path_tree(g, target);
                            let mut path = tree.path_to_root(cur);
                            path.remove(0);
                            path.reverse(); // will pop() from the cur-end
                            waypoint_path = path;
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                    MobilityModel::Commuter => {
                        if waypoint_path.is_empty() {
                            let target = if heading_out { far_anchor } else { start };
                            heading_out = !heading_out;
                            if target == cur {
                                // degenerate: anchors adjacent loops; hop away
                                let nbrs = g.neighbors(cur);
                                waypoint_path = vec![nbrs[0].to];
                            } else {
                                let tree = mot_net::shortest_path_tree(g, target);
                                let mut path = tree.path_to_root(cur);
                                path.remove(0);
                                path.reverse();
                                waypoint_path = path;
                            }
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                };
                seq.push(MoveOp {
                    object: o,
                    from: cur,
                    to: next,
                });
                cur = next;
            }
            per_object.push(seq);
        }

        // Random global interleaving preserving per-object order: shuffle
        // a deck with `moves_per_object` copies of each object id.
        let mut deck: Vec<usize> = (0..self.objects)
            .flat_map(|oi| std::iter::repeat_n(oi, self.moves_per_object))
            .collect();
        deck.shuffle(&mut rng);
        let mut cursors = vec![0usize; self.objects];
        let mut moves = Vec::with_capacity(deck.len());
        for oi in deck {
            moves.push(per_object[oi][cursors[oi]]);
            cursors[oi] += 1;
        }
        Workload { initial, moves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;

    #[test]
    fn random_walk_moves_are_adjacent() {
        let g = generators::grid(5, 5).unwrap();
        let w = WorkloadSpec::new(4, 50, 7).generate(&g);
        assert_eq!(w.object_count(), 4);
        assert_eq!(w.moves.len(), 200);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to), "move {m:?} not an adjacency");
        }
    }

    #[test]
    fn per_object_order_is_a_consistent_walk() {
        let g = generators::grid(4, 4).unwrap();
        let w = WorkloadSpec::new(3, 40, 9).generate(&g);
        let mut pos = w.initial.clone();
        for m in &w.moves {
            assert_eq!(m.from, pos[m.object.index()], "broken chain at {m:?}");
            pos[m.object.index()] = m.to;
        }
        assert_eq!(pos, w.final_proxies());
    }

    #[test]
    fn interleaving_mixes_objects() {
        let g = generators::grid(4, 4).unwrap();
        let w = WorkloadSpec::new(2, 100, 3).generate(&g);
        // the first 100 moves should not all belong to object 0
        let first_obj: Vec<_> = w.moves[..100].iter().map(|m| m.object).collect();
        assert!(first_obj.contains(&ObjectId(0)));
        assert!(first_obj.contains(&ObjectId(1)));
    }

    #[test]
    fn waypoint_walks_shortest_paths() {
        let g = generators::grid(6, 6).unwrap();
        let spec = WorkloadSpec {
            objects: 2,
            moves_per_object: 60,
            model: MobilityModel::Waypoint,
            seed: 5,
        };
        let w = spec.generate(&g);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to), "waypoint hop {m:?} not an edge");
        }
    }

    #[test]
    fn commuter_shuttles_along_one_corridor() {
        let g = generators::grid(8, 8).unwrap();
        let spec = WorkloadSpec {
            objects: 1,
            moves_per_object: 120,
            model: MobilityModel::Commuter,
            seed: 6,
        };
        let w = spec.generate(&g);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to));
        }
        // a commuter revisits a small set of edges over and over
        let mut edges = std::collections::HashSet::new();
        for m in &w.moves {
            let (a, b) = if m.from < m.to {
                (m.from, m.to)
            } else {
                (m.to, m.from)
            };
            edges.insert((a, b));
        }
        assert!(
            edges.len() * 3 <= w.moves.len(),
            "commuter used {} distinct edges over {} moves — not a corridor",
            edges.len(),
            w.moves.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(4, 4).unwrap();
        let a = WorkloadSpec::new(3, 20, 11).generate(&g);
        let b = WorkloadSpec::new(3, 20, 11).generate(&g);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.moves, b.moves);
        let c = WorkloadSpec::new(3, 20, 12).generate(&g);
        assert_ne!(a.moves, c.moves);
    }
}
