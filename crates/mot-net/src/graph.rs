//! The weighted sensor-network graph `G = (V, E, w)`.
//!
//! # Memory layout
//!
//! The graph is stored in compressed-sparse-row (CSR) form: one flat
//! array of packed half-[`Edge`]s plus a `u32` offset per node
//! (`neighbors(u)` is the slice `edges[offsets[u]..offsets[u+1]]`).
//! Every Dijkstra run — and therefore every oracle row, hierarchy
//! radius query, and cost account in the suite — iterates neighbor
//! lists, so they are contiguous in memory instead of one heap
//! allocation per node. See DESIGN.md §13.

use crate::error::NetError;
use crate::node::{NodeId, Point};
use crate::Result;

/// A weighted half-edge stored in a node's adjacency row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// The neighbor this half-edge points to.
    pub to: NodeId,
    /// Normalized distance between the two adjacent sensors (`w` in the
    /// paper). Always finite and strictly positive.
    pub weight: f64,
}

/// A connected, undirected, weighted graph of sensor nodes.
///
/// Construction goes through [`crate::GraphBuilder`] (or a generator in
/// [`crate::generators`]), which validates weights and rejects duplicate
/// edges. The built graph is the paper's static network model; §7-style
/// topology churn is layered on as *generation-stamped mutation*:
/// [`Graph::remove_node`] deactivates a sensor and strips its incident
/// edges, [`Graph::restore_node`] brings one back with an explicit edge
/// star. Node ids are stable across leave/rejoin, every mutation bumps
/// [`Graph::generation`], and each affected node records the generation
/// that last touched it ([`Graph::node_generation`]) so caches built
/// against an older generation can invalidate precisely (DESIGN.md §17).
///
/// Internally the adjacency structure is a flat CSR array (see the
/// module docs), but the API is unchanged from the per-node
/// representation: [`Graph::neighbors`] still hands out a `&[Edge]`
/// slice per node. A never-mutated graph pays one predictable branch
/// per `neighbors` call; mutated rows live in per-node patch vectors
/// layered over the immutable CSR base.
///
/// # Example
///
/// Neighbor iteration is a contiguous-slice walk — the hot loop of
/// every shortest-path computation in the suite:
///
/// ```
/// use mot_net::{generators, NodeId};
///
/// let g = generators::grid(3, 3)?; // unit 3×3 grid
/// let center = NodeId(4);
/// // The adjacency row is a plain slice, sorted by neighbor id.
/// let row = g.neighbors(center);
/// assert_eq!(row.len(), 4);
/// assert!(row.windows(2).all(|w| w[0].to < w[1].to));
/// // Summing weights over a row touches one contiguous cache run.
/// let total: f64 = row.iter().map(|e| e.weight).sum();
/// assert_eq!(total, 4.0);
/// # Ok::<(), mot_net::NetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR row offsets: node `u`'s half-edges live at
    /// `edges[offsets[u] as usize..offsets[u + 1] as usize]`.
    /// `offsets.len() == node_count() + 1`.
    offsets: Vec<u32>,
    /// All half-edges, packed row by row (each undirected edge appears
    /// twice, once per endpoint).
    edges: Vec<Edge>,
    positions: Option<Vec<Point>>,
    edge_count: usize,
    /// Mutation overlay; `None` until the first `remove_node` /
    /// `restore_node` so static graphs stay branch-predictable and pay
    /// no extra memory.
    dyn_state: Option<Box<DynState>>,
}

/// Copy-on-write mutation overlay for a [`Graph`]. Rows that a mutation
/// touched are shadowed by owned vectors; untouched rows keep serving
/// straight from the CSR base.
#[derive(Clone, Debug)]
struct DynState {
    /// `patch[u] = Some(row)` shadows the CSR row of `u`.
    patch: Vec<Option<Vec<Edge>>>,
    /// `true` while the node is removed from the topology.
    inactive: Vec<bool>,
    inactive_count: usize,
    /// Monotone mutation counter; starts at 1 on the first mutation.
    generation: u64,
    /// Per-node stamp of the generation that last changed its row.
    touched: Vec<u64>,
}

impl Graph {
    pub(crate) fn from_parts(
        adjacency: Vec<Vec<Edge>>,
        positions: Option<Vec<Point>>,
        edge_count: usize,
    ) -> Self {
        let n = adjacency.len();
        let half_edges: usize = adjacency.iter().map(Vec::len).sum();
        debug_assert!(
            half_edges <= u32::MAX as usize,
            "half-edge count overflows the CSR u32 offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(half_edges);
        offsets.push(0u32);
        for row in &adjacency {
            edges.extend_from_slice(row);
            offsets.push(edges.len() as u32);
        }
        Graph {
            offsets,
            edges,
            positions,
            edge_count,
            dyn_state: None,
        }
    }

    /// Lazily materializes the mutation overlay.
    fn dyn_state_mut(&mut self) -> &mut DynState {
        let n = self.node_count();
        self.dyn_state.get_or_insert_with(|| {
            Box::new(DynState {
                patch: vec![None; n],
                inactive: vec![false; n],
                inactive_count: 0,
                generation: 0,
                touched: vec![0; n],
            })
        })
    }

    /// Number of sensor nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of stored half-edges (`2 |E|`). For a never-mutated graph
    /// this is the length of the packed CSR edge array.
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        if self.dyn_state.is_some() {
            2 * self.edge_count
        } else {
            self.edges.len()
        }
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// The adjacency row of `u`: a contiguous slice of half-edges,
    /// sorted ascending by neighbor id. For an inactive node the row is
    /// empty. Mutated rows come from the patch overlay; untouched rows
    /// come straight from the CSR base.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Edge] {
        let i = u.index();
        if let Some(d) = &self.dyn_state {
            if let Some(row) = &d.patch[i] {
                return row;
            }
        }
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `u` (0 while `u` is inactive).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Returns the weight of the undirected edge `(u, v)` if present.
    /// By convention `w(u, u) = 0` (the paper's assumption).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if u == v {
            return Some(0.0);
        }
        // Rows are sorted by neighbor id, so this is a binary search.
        let row = self.neighbors(u);
        row.binary_search_by(|e| e.to.cmp(&v))
            .ok()
            .map(|i| row[i].weight)
    }

    /// True when `(u, v)` is an edge of `G`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search_by(|e| e.to.cmp(&v)).is_ok()
    }

    /// Iterator over undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .filter(move |e| a < e.to)
                .map(move |e| (a, e.to, e.weight))
        })
    }

    /// Geographic positions, if the graph carries them.
    pub fn positions(&self) -> Option<&[Point]> {
        self.positions.as_deref()
    }

    /// Geographic position of `u`, or an error if the graph has none.
    pub fn position(&self, u: NodeId) -> Result<Point> {
        self.positions
            .as_ref()
            .map(|p| p[u.index()])
            .ok_or(NetError::MissingPositions)
    }

    /// The smallest edge weight in the graph.
    pub fn min_edge_weight(&self) -> Option<f64> {
        self.edges().map(|(_, _, w)| w).fold(None, |acc, w| {
            Some(match acc {
                None => w,
                Some(m) => m.min(w),
            })
        })
    }

    /// Returns a copy of the graph with all edge weights rescaled so the
    /// shortest edge has weight exactly 1 (the paper's normalization; the
    /// cost-ratio bounds are then independent of the network's scale).
    pub fn normalized(&self) -> Graph {
        let Some(min_w) = self.min_edge_weight() else {
            return self.clone();
        };
        if (min_w - 1.0).abs() < f64::EPSILON {
            return self.clone();
        }
        let mut g = self.clone();
        for e in &mut g.edges {
            e.weight /= min_w;
        }
        if let Some(d) = &mut g.dyn_state {
            for row in d.patch.iter_mut().flatten() {
                for e in row.iter_mut() {
                    e.weight /= min_w;
                }
            }
        }
        g
    }

    /// Whether the *active* topology is connected (trivially true for at
    /// most one active node).
    ///
    /// The paper assumes `G` is connected; generators assert this and
    /// the distance oracle rejects disconnected graphs. On a mutated
    /// graph the inactive nodes are excluded: the question is whether
    /// the surviving sensors still form one component.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        let active = self.active_count();
        if active <= 1 {
            return true;
        }
        // `active >= 2` guarantees a first active node exists.
        let start = self
            .nodes()
            .find(|&u| self.is_active(u))
            .expect("active_count >= 2")
            .index();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        let mut visited = 1usize;
        while let Some(u) = stack.pop() {
            for e in self.neighbors(NodeId::from_index(u)) {
                let v = e.to.index();
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == active
    }

    /// Total number of mutations applied to this graph (0 for a graph
    /// that has never been mutated). Each successful `remove_node` /
    /// `restore_node` bumps this by one.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.dyn_state.as_ref().map_or(0, |d| d.generation)
    }

    /// The generation that last changed `u`'s adjacency row (0 if the
    /// row was never touched by a mutation). Caches keyed by source node
    /// compare this against the generation they solved at.
    #[inline]
    pub fn node_generation(&self, u: NodeId) -> u64 {
        self.dyn_state.as_ref().map_or(0, |d| d.touched[u.index()])
    }

    /// True while `u` participates in the topology (never removed, or
    /// removed and since restored).
    #[inline]
    pub fn is_active(&self, u: NodeId) -> bool {
        self.dyn_state
            .as_ref()
            .is_none_or(|d| !d.inactive[u.index()])
    }

    /// Number of currently active nodes.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.node_count() - self.dyn_state.as_ref().map_or(0, |d| d.inactive_count)
    }

    /// Iterator over the currently active node ids, ascending.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&u| self.is_active(u))
    }

    /// Removes sensor `u` from the topology (a §7 "leave" event).
    ///
    /// The node id stays valid — queries see an isolated, inactive node
    /// with an empty adjacency row — and the incident edge star is
    /// returned so the caller can later [`Graph::restore_node`] it. The
    /// mutation bumps [`Graph::generation`] and stamps `u` plus every
    /// former neighbor with the new generation.
    ///
    /// Errors with [`NetError::NodeOutOfRange`] or
    /// [`NetError::NodeInactive`] (already removed).
    ///
    /// ```
    /// use mot_net::{generators, NodeId};
    ///
    /// let mut g = generators::grid(3, 3)?; // unit 3×3 grid
    /// assert_eq!(g.generation(), 0);
    ///
    /// // Remove the center sensor: its 4 incident edges vanish...
    /// let star = g.remove_node(NodeId(4))?;
    /// assert_eq!(star.len(), 4);
    /// assert_eq!((g.active_count(), g.edge_count()), (8, 8));
    /// assert!(g.neighbors(NodeId(4)).is_empty());
    /// // ...the ring of 8 survivors is still connected,
    /// assert!(g.is_connected());
    /// // and only touched rows carry the new generation stamp.
    /// assert_eq!(g.node_generation(NodeId(4)), 1);
    /// assert_eq!(g.node_generation(NodeId(0)), 0);
    ///
    /// // A later "join" restores the same id with its old star.
    /// g.restore_node(NodeId(4), &star)?;
    /// assert_eq!((g.active_count(), g.edge_count(), g.generation()), (9, 12, 2));
    /// # Ok::<(), mot_net::NetError>(())
    /// ```
    pub fn remove_node(&mut self, u: NodeId) -> Result<Vec<Edge>> {
        let n = self.node_count();
        if u.index() >= n {
            return Err(NetError::NodeOutOfRange { node: u, n });
        }
        if !self.is_active(u) {
            return Err(NetError::NodeInactive { node: u });
        }
        let star = self.neighbors(u).to_vec();
        let d = self.dyn_state_mut();
        d.generation += 1;
        let gen = d.generation;
        d.touched[u.index()] = gen;
        d.patch[u.index()] = Some(Vec::new());
        d.inactive[u.index()] = true;
        d.inactive_count += 1;
        self.edge_count -= star.len();
        for e in &star {
            let v = e.to;
            let mut row = self.neighbors(v).to_vec();
            row.retain(|f| f.to != u);
            let d = self.dyn_state_mut();
            d.patch[v.index()] = Some(row);
            d.touched[v.index()] = gen;
        }
        Ok(star)
    }

    /// Restores sensor `u` with the given edge star (a §7 "join" event).
    ///
    /// `edges` lists the half-edges from `u`'s side; the reverse
    /// half-edges are inserted into each endpoint's row. Endpoints must
    /// be active, weights finite and positive, no self-loops, no
    /// duplicates. On success the star is installed sorted by neighbor
    /// id and the generation is bumped, stamping `u` and every new
    /// neighbor.
    ///
    /// Errors with [`NetError::NodeActive`] if `u` was not removed, and
    /// with the usual construction errors for a bad star.
    pub fn restore_node(&mut self, u: NodeId, edges: &[Edge]) -> Result<()> {
        let n = self.node_count();
        if u.index() >= n {
            return Err(NetError::NodeOutOfRange { node: u, n });
        }
        if self.is_active(u) {
            return Err(NetError::NodeActive { node: u });
        }
        let mut star = edges.to_vec();
        star.sort_by_key(|e| e.to);
        for (i, e) in star.iter().enumerate() {
            if e.to == u {
                return Err(NetError::SelfLoop { node: u });
            }
            if e.to.index() >= n {
                return Err(NetError::NodeOutOfRange { node: e.to, n });
            }
            if !self.is_active(e.to) {
                return Err(NetError::NodeInactive { node: e.to });
            }
            if !(e.weight.is_finite() && e.weight > 0.0) {
                return Err(NetError::InvalidWeight {
                    a: u,
                    b: e.to,
                    weight: e.weight,
                });
            }
            if i > 0 && star[i - 1].to == e.to {
                return Err(NetError::DuplicateEdge { a: u, b: e.to });
            }
        }
        let added = star.len();
        let d = self.dyn_state_mut();
        d.generation += 1;
        let gen = d.generation;
        d.touched[u.index()] = gen;
        d.inactive[u.index()] = false;
        d.inactive_count -= 1;
        for e in &star {
            let v = e.to;
            let mut row = self.neighbors(v).to_vec();
            let pos = row.partition_point(|f| f.to < u);
            debug_assert!(row.get(pos).map(|f| f.to) != Some(u));
            row.insert(
                pos,
                Edge {
                    to: u,
                    weight: e.weight,
                },
            );
            let d = self.dyn_state_mut();
            d.patch[v.index()] = Some(row);
            d.touched[v.index()] = gen;
        }
        self.dyn_state_mut().patch[u.index()] = Some(star);
        self.edge_count += added;
        Ok(())
    }

    /// Sum of all edge weights — handy for sanity checks in tests.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.half_edge_count(), 6);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn edge_weight_lookup_is_symmetric() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(0)), Some(0.0));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn csr_rows_are_contiguous_and_sorted() {
        let g = crate::generators::grid(4, 5).unwrap();
        let mut total = 0usize;
        for u in g.nodes() {
            let row = g.neighbors(u);
            assert_eq!(row.len(), g.degree(u));
            assert!(row.windows(2).all(|w| w[0].to < w[1].to));
            total += row.len();
        }
        assert_eq!(total, g.half_edge_count());
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn normalization_rescales_to_unit_minimum() {
        let g = triangle().normalized();
        let min = g.min_edge_weight().unwrap();
        assert!((min - 1.0).abs() < 1e-12);
        // relative proportions preserved
        assert!((g.edge_weight(NodeId(2), NodeId(0)).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(!g.is_connected());
    }

    #[test]
    fn remove_restore_round_trips_bitwise() {
        let base = crate::generators::grid(4, 4).unwrap();
        let mut g = base.clone();
        let star = g.remove_node(NodeId(5)).unwrap();
        assert_eq!(star.len(), 4);
        assert_eq!(g.active_count(), 15);
        assert_eq!(g.edge_count(), base.edge_count() - 4);
        assert!(g.neighbors(NodeId(5)).is_empty());
        assert_eq!(g.degree(NodeId(5)), 0);
        for e in &star {
            assert!(!g.has_edge(e.to, NodeId(5)));
        }
        assert!(g.is_connected());
        g.restore_node(NodeId(5), &star).unwrap();
        assert_eq!(g.active_count(), 16);
        assert_eq!(g.edge_count(), base.edge_count());
        assert_eq!(g.half_edge_count(), base.half_edge_count());
        // Every row is bit-identical to the never-mutated graph.
        for u in base.nodes() {
            assert_eq!(g.neighbors(u), base.neighbors(u));
        }
        assert_eq!(g.generation(), 2);
    }

    #[test]
    fn mutation_errors_are_reported() {
        let mut g = crate::generators::grid(3, 3).unwrap();
        assert_eq!(
            g.restore_node(NodeId(4), &[]),
            Err(NetError::NodeActive { node: NodeId(4) })
        );
        let star = g.remove_node(NodeId(4)).unwrap();
        assert_eq!(
            g.remove_node(NodeId(4)),
            Err(NetError::NodeInactive { node: NodeId(4) })
        );
        // Can't attach a join to an inactive endpoint.
        let star2 = g.remove_node(NodeId(1)).unwrap();
        assert_eq!(
            g.restore_node(NodeId(4), &star),
            Err(NetError::NodeInactive { node: NodeId(1) })
        );
        g.restore_node(NodeId(1), &star2).unwrap();
        // Bad weights and self-loops are rejected like at build time.
        assert_eq!(
            g.restore_node(
                NodeId(4),
                &[Edge {
                    to: NodeId(4),
                    weight: 1.0
                }]
            ),
            Err(NetError::SelfLoop { node: NodeId(4) })
        );
        assert!(matches!(
            g.restore_node(
                NodeId(4),
                &[Edge {
                    to: NodeId(1),
                    weight: f64::NAN
                }]
            ),
            Err(NetError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.restore_node(
                NodeId(4),
                &[
                    Edge {
                        to: NodeId(1),
                        weight: 1.0
                    },
                    Edge {
                        to: NodeId(1),
                        weight: 2.0
                    }
                ]
            ),
            Err(NetError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn generation_stamps_touch_only_mutated_region() {
        let mut g = crate::generators::grid(4, 4).unwrap();
        let star = g.remove_node(NodeId(0)).unwrap();
        assert_eq!(g.generation(), 1);
        assert_eq!(g.node_generation(NodeId(0)), 1);
        for e in &star {
            assert_eq!(g.node_generation(e.to), 1);
        }
        assert_eq!(g.node_generation(NodeId(15)), 0);
        let s1 = g.remove_node(NodeId(5)).unwrap();
        assert!(g.is_connected());
        g.restore_node(NodeId(5), &s1).unwrap();
        g.restore_node(NodeId(0), &star).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.generation(), 4);
    }

    #[test]
    fn disconnection_is_detected_on_active_subgraph() {
        // Path 0-1-2: removing the middle sensor splits the survivors.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let mut g = b.build().unwrap();
        g.remove_node(NodeId(1)).unwrap();
        assert!(!g.is_connected());
        // A single surviving sensor is trivially connected.
        g.remove_node(NodeId(2)).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn positions_absent_by_default() {
        let g = triangle();
        assert!(g.positions().is_none());
        assert_eq!(g.position(NodeId(0)), Err(NetError::MissingPositions));
    }
}
