//! Hierarchical overlay structures (`HS`) for the MOT tracking algorithm.
//!
//! The paper builds its tracking data structure on a layered overlay:
//!
//! * **Constant-doubling model (§2.2):** a sequence of connectivity graphs
//!   `I_0 ⊇ I_1 ⊇ … ⊇ I_h` where `V_{ℓ+1}` is a maximal independent set of
//!   `(V_ℓ, E_ℓ)` and `E_ℓ` connects nodes closer than `2^{ℓ+1}`. Level-ℓ
//!   members are pairwise `≥ 2^ℓ` apart yet cover every lower-level node
//!   within `2^ℓ`. The MIS is computed with Luby's randomized algorithm.
//! * **General model (§6):** an `(O(log n), O(log n))` sparse-partition
//!   scheme — per level, `O(log n)` labelled padded decompositions with
//!   cluster radius `O(2^ℓ log n)`; every node belongs to `O(log n)`
//!   clusters and every `2^ℓ`-ball is contained in some cluster.
//!
//! Both constructions export the same artifact: for every bottom-level
//! sensor a [`DetectionPath`] — per level, the ordered *station* of parent
//! nodes a detection/maintenance/query message visits on its way to the
//! root. The [`Overlay`] type packages paths, levels, and the
//! special-parent pairing (Definition 3) consumed by `mot-core`.
//!
//! For §7 topology churn, [`RepairableHierarchy`] maintains the same
//! doubling structure under sensor leave/join deltas via deterministic
//! hash-priority MIS and localized repair, with a rebuild-vs-repair
//! cost ledger (DESIGN.md §17).
//!
//! # Example
//!
//! ```
//! use mot_hierarchy::{build_doubling, OverlayConfig};
//! use mot_net::{generators, DenseOracle, NodeId};
//!
//! let g = generators::grid(8, 8)?;
//! let m = DenseOracle::build(&g)?;
//! let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 7);
//!
//! // h <= ceil(log2 D) + 1 levels, shrinking to a single root.
//! assert!(overlay.height() <= (m.diameter().log2().ceil() as usize) + 1);
//! assert_eq!(overlay.level_members(overlay.height()).len(), 1);
//!
//! // Every bottom node's detection path starts at itself and ends at
//! // the root; nearby nodes' paths meet at a low level (Lemma 2.1).
//! let u = NodeId(0);
//! assert_eq!(overlay.station(u, 0), &[u]);
//! assert!(overlay.meet_level(NodeId(0), NodeId(1)) <= overlay.height());
//! # Ok::<(), mot_net::NetError>(())
//! ```
//!
//! # Place in the workspace
//!
//! Sits directly above `mot-net` in the crate DAG; `mot-core`,
//! `mot-sim`, and `mot-bench` build on it. Implements §2.2 (doubling
//! overlays) and §6 (general overlays); the overlay choice drives the
//! `general` experiment table. See DESIGN.md §3 and §5.

#![warn(missing_docs)]

pub mod config;
pub mod doubling;
pub mod general;
pub mod mis;
pub mod overlay;
pub mod path;
pub mod reference;
pub mod repair;
pub mod validate;

pub use config::OverlayConfig;
pub use doubling::{build_doubling, build_doubling_balls, ADAPTIVE_CROSSOVER_NODES};
pub use general::build_general;
pub use mis::luby_mis;
pub use overlay::{Overlay, OverlayKind};
pub use path::DetectionPath;
pub use reference::reference_build_doubling;
pub use repair::{
    HierarchySnapshot, RepairDecision, RepairLedger, RepairReport, RepairableHierarchy,
};
