//! Bench for Figures 6 & 7: query cost after a maintenance workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_baselines::DetectionRates;
use mot_bench::{query_figure, Profile};
use mot_core::ObjectId;
use mot_net::NodeId;
use mot_sim::{replay_moves, run_publish, Algo, TestBed, WorkloadSpec};

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        query_figure(&Profile::quick(20), false)
            .expect("figure")
            .render()
    );

    let bed = TestBed::grid(12, 12, 1).unwrap();
    let w = WorkloadSpec::new(10, 100, 2).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());

    let mut group = c.benchmark_group("query_after_workload_12x12");
    for algo in Algo::paper_lineup() {
        // Prepare state once; time pure queries.
        let mut t = bed.make_tracker(algo, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(algo.label()), &algo, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                let from = NodeId(i % 144);
                let o = ObjectId(i % 10);
                i = i.wrapping_add(17);
                t.query(from, o).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
