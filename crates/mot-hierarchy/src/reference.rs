//! Frozen oracle-scan doubling builder: the measured baseline.
//!
//! This is the doubling construction exactly as it existed before the
//! bounded-ball rewrite of [`build_doubling`](crate::build_doubling):
//! per level, an `O(k²)` all-pairs oracle scan for the connectivity
//! graph, `nearest_in` scans for default parents, and a per-node scan
//! over the level membership for every detection-path station.
//!
//! It is kept, unchanged, for two jobs:
//!
//! * **Benchmark baseline** — `experiments bench-baseline` times this
//!   builder next to the optimized one on identical inputs, so the
//!   `BENCH_*.json` speedup column always measures against the same
//!   frozen yardstick, on the same machine, in the same process.
//! * **Parity witness** — the `hierarchy_parity` tests assert the
//!   optimized builder produces a bit-identical overlay (same levels,
//!   same parents, same stations) on every topology generator, which is
//!   what lets the optimized path claim the DESIGN.md §12 determinism
//!   contract.
//!
//! Do not optimize this module; that would defeat both jobs.

use crate::config::OverlayConfig;
use crate::mis::luby_mis;
use crate::overlay::{Overlay, OverlayKind};
use crate::path::DetectionPath;
use mot_net::{DistanceOracle, Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// The pre-optimization [`build_doubling`](crate::build_doubling):
/// identical output, oracle-scan construction. See the module docs for
/// why this is kept verbatim.
pub fn reference_build_doubling(
    g: &Graph,
    m: &dyn DistanceOracle,
    cfg: &OverlayConfig,
    seed: u64,
) -> Overlay {
    assert_eq!(
        g.node_count(),
        m.node_count(),
        "graph and oracle disagree on n"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = g.node_count();

    let mut levels: Vec<Vec<NodeId>> = vec![g.nodes().collect()];
    for level in 1..=64usize {
        let prev = &levels[level - 1];
        if prev.len() == 1 {
            break;
        }
        let radius = (1u64 << level) as f64;
        let adjacency: Vec<Vec<usize>> = prev
            .iter()
            .map(|&u| {
                prev.iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != u && m.dist(u, v) < radius)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        let mis = luby_mis(prev, &adjacency, &mut rng);
        levels.push(mis);
    }
    assert_eq!(
        levels.last().map(Vec::len),
        Some(1),
        "doubling construction did not converge to a root (n = {n}, D = {})",
        m.diameter()
    );
    let height = levels.len() - 1;

    let default_parent: Vec<HashMap<NodeId, NodeId>> = (0..height)
        .map(|l| {
            levels[l]
                .iter()
                .map(|&w| {
                    let p = m
                        .nearest_in(w, &levels[l + 1])
                        .expect("non-empty upper level");
                    debug_assert!(
                        m.dist(w, p) < (1u64 << (l + 1)) as f64 + 1e-6,
                        "default parent must lie within 2^(l+1): dist({w},{p}) = {}",
                        m.dist(w, p)
                    );
                    (w, p)
                })
                .collect()
        })
        .collect();

    let paths: Vec<DetectionPath> = g
        .nodes()
        .map(|u| {
            let mut stations = Vec::with_capacity(height + 1);
            stations.push(vec![u]);
            let mut home = u;
            for l in 1..=height {
                let dp = default_parent[l - 1][&home];
                let radius = cfg.parent_set_radius_mult * (1u64 << l) as f64;
                let mut station: Vec<NodeId> = levels[l]
                    .iter()
                    .copied()
                    .filter(|&v| m.dist(home, v) <= radius)
                    .collect();
                if !station.contains(&dp) {
                    station.push(dp);
                }
                station.sort();
                stations.push(station);
                home = dp;
            }
            DetectionPath { stations }
        })
        .collect();

    Overlay::new(OverlayKind::Doubling, levels, paths, cfg.sp_gap)
}
