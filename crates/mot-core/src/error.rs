//! Error type for tracking operations.

use crate::object::ObjectId;
use mot_net::NodeId;
use std::fmt;

/// Errors raised by tracking structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// `move_object`/`query` on an object that was never published.
    UnknownObject(ObjectId),
    /// `publish` called twice for the same object (the paper applies
    /// publish exactly once per object).
    AlreadyPublished(ObjectId),
    /// A node id outside the network was used.
    UnknownNode(NodeId),
    /// The operation hit tracking state lost to a crashed (or
    /// rebooted-with-amnesia) sensor. A read-only `query` surfaces this
    /// so a caller with mutable access can run
    /// [`crate::Tracker::repair_object`] and retry; mutating operations
    /// self-repair instead of returning it.
    NodeDown(NodeId),
    /// A lossy transport exhausted its retry budget for a message of
    /// `object` after `attempts` transmissions; the operation did not
    /// complete.
    DeliveryFailed {
        /// The object whose message was lost.
        object: ObjectId,
        /// Transmissions attempted before giving up.
        attempts: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownObject(o) => write!(f, "object {o} was never published"),
            CoreError::AlreadyPublished(o) => write!(f, "object {o} published twice"),
            CoreError::UnknownNode(u) => write!(f, "node {u} is not part of the network"),
            CoreError::NodeDown(u) => {
                write!(f, "node {u} crashed and lost its tracking state")
            }
            CoreError::DeliveryFailed { object, attempts } => write!(
                f,
                "delivery failed for a message of object {object} after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        assert!(CoreError::UnknownObject(ObjectId(3))
            .to_string()
            .contains('3'));
        assert!(CoreError::AlreadyPublished(ObjectId(9))
            .to_string()
            .contains('9'));
        assert!(CoreError::UnknownNode(NodeId(5)).to_string().contains('5'));
        assert!(CoreError::NodeDown(NodeId(4)).to_string().contains('4'));
        let e = CoreError::DeliveryFailed {
            object: ObjectId(2),
            attempts: 16,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains("16"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CoreError>();
    }
}
