//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--profile quick|standard|paper] [--csv DIR] [IDS...]
//! ```
//!
//! `IDS` default to every figure. Examples:
//!
//! ```text
//! cargo run --release -p mot-bench --bin experiments -- fig4 fig6
//! cargo run --release -p mot-bench --bin experiments -- --profile paper all
//! ```

use mot_bench::{
    ablation_table, churn_table, general_graph_table, load_figure, locality_table,
    maintenance_figure, mobility_table, publish_cost_table, query_figure, state_size_table,
    FigureTable, Profile,
};
use mot_sim::Algo;
use std::io::Write;

fn profile_for(objects: usize, name: &str) -> Profile {
    match name {
        "quick" => Profile::quick(objects),
        "standard" => Profile::standard(objects),
        "paper" => Profile::paper(objects),
        other => {
            eprintln!("unknown profile '{other}' (quick|standard|paper)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile_name = "standard".to_string();
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => {
                profile_name = it.next().unwrap_or_else(|| {
                    eprintln!("--profile needs a value");
                    std::process::exit(2);
                })
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--profile quick|standard|paper] [--csv DIR] [IDS...]\n\
                     ids: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15\n\
                          pub-cost ablations general churn state-size locality mobility all"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = [
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "pub-cost",
            "ablations",
            "general",
            "churn",
            "state-size",
            "locality",
            "mobility",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let emit = |table: FigureTable, id: &str| {
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{id}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(table.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    };

    for id in &ids {
        let started = std::time::Instant::now();
        match id.as_str() {
            "fig4" => emit(
                maintenance_figure(&profile_for(100, &profile_name), false),
                id,
            ),
            "fig5" => emit(
                maintenance_figure(&profile_for(1000, &profile_name), false),
                id,
            ),
            "fig6" => emit(query_figure(&profile_for(100, &profile_name), false), id),
            "fig7" => emit(query_figure(&profile_for(1000, &profile_name), false), id),
            "fig8" => emit(
                load_figure(&profile_for(100, &profile_name), Algo::Stun, 0),
                id,
            ),
            "fig9" => emit(
                load_figure(&profile_for(100, &profile_name), Algo::Stun, 10),
                id,
            ),
            "fig10" => emit(
                load_figure(&profile_for(100, &profile_name), Algo::Zdat, 0),
                id,
            ),
            "fig11" => emit(
                load_figure(&profile_for(100, &profile_name), Algo::Zdat, 10),
                id,
            ),
            "fig12" => emit(
                maintenance_figure(&profile_for(100, &profile_name), true),
                id,
            ),
            "fig13" => emit(
                maintenance_figure(&profile_for(1000, &profile_name), true),
                id,
            ),
            "fig14" => emit(query_figure(&profile_for(100, &profile_name), true), id),
            "fig15" => emit(query_figure(&profile_for(1000, &profile_name), true), id),
            "pub-cost" => emit(publish_cost_table(&profile_for(100, &profile_name)), id),
            "ablations" => emit(ablation_table(&profile_for(100, &profile_name)), id),
            "general" => emit(general_graph_table(&profile_for(50, &profile_name)), id),
            "churn" => emit(churn_table(), id),
            "state-size" => emit(state_size_table(&profile_for(100, &profile_name)), id),
            "locality" => emit(locality_table(&profile_for(100, &profile_name)), id),
            "mobility" => emit(mobility_table(&profile_for(50, &profile_name)), id),
            other => eprintln!("skipping unknown experiment id '{other}'"),
        }
        eprintln!("[{id} took {:.1?}]", started.elapsed());
    }
}
