//! One-by-one execution: publish, maintenance replay, query batches.
//!
//! Each operation completes before the next starts (the paper's primary
//! case, matching scenarios where event inter-arrival times dwarf message
//! propagation times).

use crate::error::SimError;
use crate::metrics::{CostStats, Histogram};
use crate::mobility::Workload;
use mot_core::{ObjectId, Result, Tracker};
use mot_net::{DistanceOracle, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Publishes every object of `workload` at its initial proxy. Returns the
/// total publish cost (a one-time cost outside the cost ratios).
///
/// # Example
///
/// ```
/// use mot_sim::{run_publish, Algo, TestBed, WorkloadSpec};
/// use mot_baselines::DetectionRates;
///
/// let bed = TestBed::grid(4, 4, 1)?;
/// let w = WorkloadSpec::new(2, 10, 3).generate(&bed.graph);
/// let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
/// let mut t = bed.make_tracker(Algo::Mot, &rates)?;
/// let cost = run_publish(t.as_mut(), &w)?;
/// assert!(cost > 0.0); // Thm 4.1: O(D) per object, never free here
/// # Ok::<(), mot_sim::SimError>(())
/// ```
pub fn run_publish(tracker: &mut dyn Tracker, workload: &Workload) -> Result<f64> {
    let mut total = 0.0;
    for (oi, &proxy) in workload.initial.iter().enumerate() {
        total += tracker.publish(ObjectId(oi as u32), proxy)?;
    }
    Ok(total)
}

/// Replays the maintenance operations one by one, verifying each move's
/// provenance and accumulating algorithm-vs-optimal cost.
///
/// Every move's `from` is checked against the structure's proxy record;
/// a mismatch aborts the replay with [`SimError::TraceDiverged`] — cost
/// accounts after a divergence would compare the algorithm against the
/// wrong optimal.
pub fn replay_moves(
    tracker: &mut dyn Tracker,
    workload: &Workload,
    oracle: &dyn DistanceOracle,
) -> std::result::Result<CostStats, SimError> {
    replay_inner(tracker, workload, oracle, None)
}

/// [`replay_moves`] plus observability: each move's per-operation cost
/// ratio is recorded into `ratios` (moves with zero optimal cost are
/// skipped, matching [`CostStats`] accounting). The returned stats are
/// identical to [`replay_moves`]'.
pub fn replay_moves_observed(
    tracker: &mut dyn Tracker,
    workload: &Workload,
    oracle: &dyn DistanceOracle,
    ratios: &mut Histogram,
) -> std::result::Result<CostStats, SimError> {
    replay_inner(tracker, workload, oracle, Some(ratios))
}

fn replay_inner(
    tracker: &mut dyn Tracker,
    workload: &Workload,
    oracle: &dyn DistanceOracle,
    mut ratios: Option<&mut Histogram>,
) -> std::result::Result<CostStats, SimError> {
    let mut stats = CostStats::default();
    for (step, m) in workload.moves.iter().enumerate() {
        let outcome = tracker.move_object(m.object, m.to)?;
        if outcome.from != m.from {
            return Err(SimError::TraceDiverged {
                step,
                object: m.object,
                expected: m.from,
                actual: outcome.from,
            });
        }
        let optimal = oracle.dist(m.from, m.to);
        stats.record(outcome.cost, optimal);
        if let Some(h) = ratios.as_deref_mut() {
            if optimal > 0.0 {
                h.record(outcome.cost / optimal);
            }
        }
    }
    Ok(stats)
}

/// Statistics of one query batch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryBatchStats {
    /// Query cost vs optimal (requester–proxy distance) per query.
    pub cost: CostStats,
    /// Queries whose requester happened to be the proxy (optimal cost 0;
    /// excluded from the ratio, reported for completeness).
    pub zero_distance: usize,
    /// Queries that returned the true proxy (must equal the batch size).
    pub correct: usize,
}

/// Issues `count` queries from random nodes for random objects against
/// the tracker's current state and scores them against the optimal cost
/// `dist(requester, proxy)`.
pub fn run_queries(
    tracker: &dyn Tracker,
    oracle: &dyn DistanceOracle,
    object_count: usize,
    count: usize,
    seed: u64,
) -> Result<QueryBatchStats> {
    queries_inner(tracker, oracle, object_count, count, seed, None)
}

/// [`run_queries`] plus observability: each query's per-operation cost
/// ratio is recorded into `ratios` (zero-distance queries excluded, as
/// in [`QueryBatchStats`]). Identical stats and query stream.
pub fn run_queries_observed(
    tracker: &dyn Tracker,
    oracle: &dyn DistanceOracle,
    object_count: usize,
    count: usize,
    seed: u64,
    ratios: &mut Histogram,
) -> Result<QueryBatchStats> {
    queries_inner(tracker, oracle, object_count, count, seed, Some(ratios))
}

fn queries_inner(
    tracker: &dyn Tracker,
    oracle: &dyn DistanceOracle,
    object_count: usize,
    count: usize,
    seed: u64,
    mut ratios: Option<&mut Histogram>,
) -> Result<QueryBatchStats> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = oracle.node_count();
    let mut out = QueryBatchStats::default();
    for _ in 0..count {
        let from = NodeId::from_index(rng.gen_range(0..n));
        let o = ObjectId(rng.gen_range(0..object_count as u32));
        let truth = tracker
            .proxy_of(o)
            .expect("workload published every object");
        let r = tracker.query(from, o)?;
        if r.proxy == truth {
            out.correct += 1;
        }
        let optimal = oracle.dist(from, truth);
        if optimal <= 0.0 {
            out.zero_distance += 1;
        } else {
            out.cost.record(r.cost, optimal);
            if let Some(h) = ratios.as_deref_mut() {
                h.record(r.cost / optimal);
            }
        }
    }
    Ok(out)
}

/// Issues `count` *local* queries: each requester is drawn from within
/// distance `radius` of the queried object's proxy. Distance-sensitive
/// tracking is the paper's core promise — a query about a nearby object
/// must cost proportional to the distance, not the network size — and
/// local queries are where sink-routed baselines pay their detour.
pub fn run_local_queries(
    tracker: &dyn Tracker,
    oracle: &dyn DistanceOracle,
    object_count: usize,
    radius: f64,
    count: usize,
    seed: u64,
) -> Result<QueryBatchStats> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = QueryBatchStats::default();
    let mut near = Vec::new();
    for _ in 0..count {
        let o = ObjectId(rng.gen_range(0..object_count as u32));
        let truth = tracker
            .proxy_of(o)
            .expect("workload published every object");
        oracle.ball_into(truth, radius, &mut near);
        let from = near[rng.gen_range(0..near.len())];
        let r = tracker.query(from, o)?;
        if r.proxy == truth {
            out.correct += 1;
        }
        let optimal = oracle.dist(from, truth);
        if optimal <= 0.0 {
            out.zero_distance += 1;
        } else {
            out.cost.record(r.cost, optimal);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WorkloadSpec;
    use mot_core::{MotConfig, MotTracker};
    use mot_hierarchy::{build_doubling, OverlayConfig};
    use mot_net::generators;
    use mot_net::DenseOracle;

    #[test]
    fn full_pipeline_on_mot() {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        let w = WorkloadSpec::new(5, 100, 1).generate(&g);
        let publish_cost = run_publish(&mut t, &w).unwrap();
        assert!(publish_cost > 0.0);
        let stats = replay_moves(&mut t, &w, &m).unwrap();
        assert_eq!(stats.operations, 500);
        // random-walk moves are unit hops: optimal = #moves
        assert!((stats.optimal - 500.0).abs() < 1e-6);
        assert!(
            stats.ratio() >= 1.0,
            "ratio {} below optimal",
            stats.ratio()
        );
        // final proxies agree with the trace
        for (oi, &p) in w.final_proxies().iter().enumerate() {
            assert_eq!(t.proxy_of(ObjectId(oi as u32)), Some(p));
        }
        let q = run_queries(&t, &m, 5, 200, 9).unwrap();
        assert_eq!(q.correct, 200, "every query must find the true proxy");
        assert!(q.cost.ratio() >= 1.0);
    }

    #[test]
    fn local_queries_come_from_within_the_radius() {
        let g = generators::grid(8, 8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        let w = WorkloadSpec::new(4, 50, 2).generate(&g);
        run_publish(&mut t, &w).unwrap();
        replay_moves(&mut t, &w, &m).unwrap();
        let q = run_local_queries(&t, &m, 4, 2.0, 150, 7).unwrap();
        assert_eq!(q.correct, 150);
        // optimal distances capped by the radius
        assert!(q.cost.optimal <= 2.0 * q.cost.operations as f64 + 1e-9);
        assert!(q.cost.mean_ratio() >= 1.0);
    }

    #[test]
    fn replay_detects_trace_divergence() {
        use crate::mobility::MoveOp;
        let g = generators::grid(4, 4).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        t.publish(ObjectId(0), NodeId(5)).unwrap();
        // The trace believes the object starts at node 0; the structure
        // has it at node 5.
        let w = Workload {
            initial: vec![NodeId(0)],
            moves: vec![MoveOp {
                object: ObjectId(0),
                from: NodeId(0),
                to: NodeId(1),
            }],
        };
        let err = replay_moves(&mut t, &w, &m).unwrap_err();
        assert_eq!(
            err,
            crate::SimError::TraceDiverged {
                step: 0,
                object: ObjectId(0),
                expected: NodeId(0),
                actual: NodeId(5),
            }
        );
    }

    #[test]
    fn query_batch_counts_zero_distance_cases() {
        let g = generators::grid(3, 3).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        // park one object on every node: many queries hit distance zero
        let w = Workload {
            initial: g.nodes().collect(),
            moves: vec![],
        };
        run_publish(&mut t, &w).unwrap();
        let q = run_queries(&t, &m, 9, 300, 4).unwrap();
        assert!(q.zero_distance > 0);
        assert_eq!(q.correct, 300);
        assert_eq!(q.cost.operations + q.zero_distance, 300);
    }
}
