//! Runners that regenerate the paper's tables and figures.
//!
//! Every sweep-shaped figure family fans its *(grid × seed × algorithm)*
//! cells out on a [`ParallelRunner`] and folds the per-cell statistics
//! back in canonical cell order, so tables are bit-identical whatever
//! `Profile::jobs` says (DESIGN.md §12). The instrumented single-run
//! paths (`level-decomp`, `--trace`, `--metrics` aggregates) stay
//! sequential — they are one fixed-seed run by construction.

use crate::report::FigureTable;
use mot_baselines::DetectionRates;
use mot_core::{LedgerKind, MemorySink, MotConfig, MotTracker, TraceEvent, TraceSink, Tracker};
use mot_hierarchy::OverlayConfig;
use mot_net::{generators, CacheLedger, DistanceOracle, OracleKind};
use mot_sim::{
    repair_all, replay_moves, replay_moves_faulty, run_publish, run_queries, run_queries_faulty,
    unrepaired_objects, Algo, CellKey, ConcurrentConfig, ConcurrentEngine, CostStats, FaultConfig,
    Keyed, LoadStats, ParallelRunner, Recorder, TestBed, TraceAggregates, WorkloadSpec,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Errors a figure run can surface: tracker/simulation failures plus the
/// runners' own sanity checks (e.g. a query batch answering wrong).
/// `Send + Sync` so cell failures cross worker-thread boundaries intact.
pub type BenchError = Box<dyn std::error::Error + Send + Sync>;

/// Every runner returns the table or a readable error — the
/// `experiments` binary turns these into a nonzero exit, not a panic.
pub type BenchResult = Result<FigureTable, BenchError>;

/// Workload scale for a figure run.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Tracked objects per repetition.
    pub objects: usize,
    /// Moves per object per repetition.
    pub moves_per_object: usize,
    /// Repetitions averaged (the paper averages 5).
    pub seeds: u64,
    /// Queries per repetition for the query figures.
    pub queries: usize,
    /// Grid sizes swept (paper: ~10 → 1024 nodes).
    pub grids: Vec<(usize, usize)>,
    /// Distance backend every bed in the run is built on.
    pub oracle: OracleKind,
    /// Worker threads for the cell fan-out (0 = one per hardware
    /// thread). Output is bit-identical for any value — see DESIGN.md
    /// §12 — so this is purely a wall-clock knob.
    pub jobs: usize,
}

impl Profile {
    /// Seconds-scale smoke profile (integration tests, criterion).
    pub fn quick(objects: usize) -> Self {
        Profile {
            objects,
            moves_per_object: 30,
            seeds: 2,
            queries: 100,
            grids: vec![(3, 3), (6, 6), (10, 10)],
            oracle: OracleKind::Auto,
            jobs: 0,
        }
    }

    /// Minutes-scale profile covering the full grid sweep.
    pub fn standard(objects: usize) -> Self {
        Profile {
            objects,
            moves_per_object: 200,
            seeds: 3,
            queries: 500,
            grids: generators::paper_grid_sizes(),
            oracle: OracleKind::Auto,
            jobs: 0,
        }
    }

    /// The paper's full scale: 1000 moves/object, 5 repetitions.
    pub fn paper(objects: usize) -> Self {
        Profile {
            objects,
            moves_per_object: 1000,
            seeds: 5,
            queries: 1000,
            grids: generators::paper_grid_sizes(),
            oracle: OracleKind::Auto,
            jobs: 0,
        }
    }

    /// Same profile on an explicit distance backend.
    pub fn with_oracle(mut self, kind: OracleKind) -> Self {
        self.oracle = kind;
        self
    }

    /// Same profile with an explicit fan-out width (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The cell fan-out engine this profile asks for.
    fn runner(&self) -> ParallelRunner {
        ParallelRunner::new(self.jobs)
    }
}

fn lineup() -> Vec<Algo> {
    Algo::paper_lineup().to_vec()
}

/// The sweep-shaped figures share one cell layout — grid-major, then
/// seed, then algorithm — mirroring the historical sequential loop
/// nesting, so the canonical merge below reproduces its exact
/// floating-point accumulation order.
fn sweep_cells(p: &Profile, figure: &str, algos: &[Algo]) -> Vec<Keyed<(usize, usize, u64, Algo)>> {
    let mut cells = Vec::with_capacity(p.grids.len() * p.seeds as usize * algos.len());
    for &(r, c) in &p.grids {
        for seed in 0..p.seeds {
            for &algo in algos {
                cells.push(Keyed::new(
                    CellKey::new(figure, r * c, algo.label(), seed),
                    (r, c, seed, algo),
                ));
            }
        }
    }
    cells
}

/// Folds per-cell stats from [`sweep_cells`] order back into one
/// accumulator per (grid, algorithm), merging seeds in ascending order —
/// the canonical order that keeps output independent of worker count.
fn merge_sweep(p: &Profile, algo_count: usize, results: Vec<CostStats>) -> Vec<Vec<CostStats>> {
    let mut per_grid = Vec::with_capacity(p.grids.len());
    let mut it = results.into_iter();
    for _ in &p.grids {
        let mut per_algo = vec![CostStats::default(); algo_count];
        for _seed in 0..p.seeds {
            for acc in per_algo.iter_mut() {
                acc.merge(&it.next().expect("one result per cell"));
            }
        }
        per_grid.push(per_algo);
    }
    per_grid
}

/// Figs. 4/5 (one-by-one) and 12/13 (concurrent): maintenance cost ratio
/// across network sizes.
pub fn maintenance_figure(p: &Profile, concurrent: bool) -> BenchResult {
    let algos = lineup();
    let figure = if concurrent { "maint-conc" } else { "maint" };
    let cells = sweep_cells(p, figure, &algos);
    let results: Vec<CostStats> = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (r, c, seed, algo) = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, seed, p.oracle)?;
        let w = WorkloadSpec::new(p.objects, p.moves_per_object, seed * 7 + 1).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(algo, &rates)?;
        run_publish(t.as_mut(), &w)?;
        Ok(if concurrent {
            ConcurrentEngine::run(
                t.as_mut(),
                &w,
                &bed.oracle,
                &ConcurrentConfig {
                    max_inflight_per_object: 10,
                    queries_per_batch: 0,
                    seed,
                },
            )?
            .maintenance
        } else {
            replay_moves(t.as_mut(), &w, &bed.oracle)?
        })
    })?;
    let rows = p
        .grids
        .iter()
        .zip(merge_sweep(p, algos.len(), results))
        .map(|(&(r, c), per_algo)| {
            (
                (r * c).to_string(),
                per_algo.iter().map(CostStats::ratio).collect(),
            )
        })
        .collect();
    Ok(FigureTable {
        title: format!(
            "Maintenance cost ratio, {} objects, {} execution (paper Fig. {})",
            p.objects,
            if concurrent {
                "concurrent"
            } else {
                "one-by-one"
            },
            match (p.objects >= 1000, concurrent) {
                (false, false) => "4",
                (true, false) => "5",
                (false, true) => "12",
                (true, true) => "13",
            }
        ),
        x_label: "nodes".into(),
        columns: algos.iter().map(|a| a.label().to_string()).collect(),
        rows,
    })
}

/// Figs. 6/7 (one-by-one) and 14/15 (concurrent): query cost ratio across
/// network sizes, after the maintenance workload.
pub fn query_figure(p: &Profile, concurrent: bool) -> BenchResult {
    let algos = lineup();
    let figure = if concurrent { "query-conc" } else { "query" };
    let cells = sweep_cells(p, figure, &algos);
    let results: Vec<CostStats> = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (r, c, seed, algo) = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, seed, p.oracle)?;
        let w = WorkloadSpec::new(p.objects, p.moves_per_object, seed * 7 + 1).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(algo, &rates)?;
        run_publish(t.as_mut(), &w)?;
        if concurrent {
            // queries race the maintenance batches (§4.2.2)
            let out = ConcurrentEngine::run(
                t.as_mut(),
                &w,
                &bed.oracle,
                &ConcurrentConfig {
                    max_inflight_per_object: 10,
                    queries_per_batch: 1,
                    seed,
                },
            )?;
            if out.queries_correct != out.queries_issued {
                return Err(format!(
                    "{}: {}/{} concurrent queries answered wrong",
                    algo.label(),
                    out.queries_issued - out.queries_correct,
                    out.queries_issued
                )
                .into());
            }
            Ok(out.queries)
        } else {
            replay_moves(t.as_mut(), &w, &bed.oracle)?;
            let q = run_queries(t.as_ref(), &bed.oracle, p.objects, p.queries, seed + 31)?;
            if q.correct != p.queries {
                return Err(format!(
                    "{}: {}/{} queries answered wrong",
                    algo.label(),
                    p.queries - q.correct,
                    p.queries
                )
                .into());
            }
            Ok(q.cost)
        }
    })?;
    let rows = p
        .grids
        .iter()
        .zip(merge_sweep(p, algos.len(), results))
        .map(|(&(r, c), per_algo)| {
            (
                (r * c).to_string(),
                per_algo.iter().map(CostStats::mean_ratio).collect(),
            )
        })
        .collect();
    Ok(FigureTable {
        title: format!(
            "Query cost ratio, {} objects, {} execution (paper Fig. {})",
            p.objects,
            if concurrent {
                "concurrent"
            } else {
                "one-by-one"
            },
            match (p.objects >= 1000, concurrent) {
                (false, false) => "6",
                (true, false) => "7",
                (false, true) => "14",
                (true, true) => "15",
            }
        ),
        x_label: "nodes".into(),
        columns: algos.iter().map(|a| a.label().to_string()).collect(),
        rows,
    })
}

/// Figs. 8–11: per-node load of MOT(+LB) against a baseline, on the
/// largest grid of the profile, `moves_per_object` moves after
/// initialization (0 = "just after initialization").
pub fn load_figure(p: &Profile, vs: Algo, moves_per_object: usize) -> BenchResult {
    let &(r, c) = p.grids.last().ok_or("profile has no grids")?;
    let cells: Vec<Keyed<Algo>> = [Algo::MotLb, vs]
        .into_iter()
        .map(|algo| Keyed::new(CellKey::new("load", r * c, algo.label(), 1), algo))
        .collect();
    let rows = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let algo = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, 1, p.oracle)?;
        let w = WorkloadSpec::new(p.objects, moves_per_object.max(1), 5).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(algo, &rates)?;
        run_publish(t.as_mut(), &w)?;
        if moves_per_object > 0 {
            replay_moves(t.as_mut(), &w, &bed.oracle)?;
        }
        let stats = LoadStats::from_loads(&t.node_loads());
        Ok((
            algo.label().to_string(),
            vec![
                stats.max as f64,
                stats.mean,
                stats.nodes_above_10 as f64,
                stats.jain_index,
            ],
        ))
    })?;
    let fig = match (vs, moves_per_object > 0) {
        (Algo::Stun, false) => "8",
        (Algo::Stun, true) => "9",
        (_, false) => "10",
        (_, true) => "11",
    };
    Ok(FigureTable {
        title: format!(
            "Load per node, {} objects on {} nodes, {} (paper Fig. {fig})",
            p.objects,
            r * c,
            if moves_per_object == 0 {
                "after initialization".to_string()
            } else {
                format!("after {moves_per_object} moves/object")
            },
        ),
        x_label: "algorithm".into(),
        columns: vec![
            "max_load".into(),
            "mean_load".into(),
            "nodes>10".into(),
            "jain".into(),
        ],
        rows,
    })
}

/// Theorem 4.1 sanity: publish cost stays `O(D)` as the diameter grows.
pub fn publish_cost_table(p: &Profile) -> BenchResult {
    let cells: Vec<Keyed<(usize, usize)>> = p
        .grids
        .iter()
        .map(|&(r, c)| Keyed::new(CellKey::new("pub-cost", r * c, "MOT", 2), (r, c)))
        .collect();
    let rows = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (r, c) = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, 2, p.oracle)?;
        let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = bed.graph.node_count();
        let objects = p.objects.min(100);
        let mut total = 0.0;
        for k in 0..objects {
            let proxy = mot_net::NodeId::from_index(rng.gen_range(0..n));
            total += t.publish(mot_core::ObjectId(k as u32), proxy)?;
        }
        let d = bed.oracle.diameter();
        let per_object = total / objects as f64;
        Ok(((r * c).to_string(), vec![d, per_object, per_object / d]))
    })?;
    Ok(FigureTable {
        title: "Publish cost vs diameter (Theorem 4.1: O(D) per object)".into(),
        x_label: "nodes".into(),
        columns: vec!["diameter".into(), "publish/object".into(), "cost/D".into()],
        rows,
    })
}

/// Ablations over MOT's design choices on one mid-size grid: special
/// parents, parent sets, load balancing.
pub fn ablation_table(p: &Profile) -> BenchResult {
    let (r, c) = (16, 16);
    let seed = 3;
    let variants: Vec<(&str, OverlayConfig, MotConfig)> = vec![
        ("MOT", OverlayConfig::practical(), MotConfig::plain()),
        (
            "MOT-noSP",
            OverlayConfig::practical(),
            MotConfig::no_special_parents(),
        ),
        (
            "MOT-singletonPS",
            OverlayConfig::singleton_parents(),
            MotConfig::plain(),
        ),
        (
            "MOT+LB",
            OverlayConfig::practical(),
            MotConfig::load_balanced(),
        ),
    ];
    let cells: Vec<Keyed<(&'static str, OverlayConfig, MotConfig)>> = variants
        .into_iter()
        .map(|v| Keyed::new(CellKey::new("ablations", r * c, v.0, seed), v))
        .collect();
    let rows = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (label, ocfg, mcfg) = &cell.data;
        let bed =
            TestBed::with_oracle(generators::grid(r, c).expect("grid"), ocfg, seed, p.oracle)?;
        let w = WorkloadSpec::new(p.objects.min(100), p.moves_per_object, 9).generate(&bed.graph);
        let mut t = MotTracker::new(&bed.overlay, &bed.oracle, mcfg.clone());
        run_publish(&mut t, &w)?;
        let maint = replay_moves(&mut t, &w, &bed.oracle)?;
        let q = run_queries(&t, &bed.oracle, w.object_count(), p.queries, 17)?;
        let loads = LoadStats::from_loads(&t.node_loads());
        Ok((
            label.to_string(),
            vec![maint.ratio(), q.cost.mean_ratio(), loads.max as f64],
        ))
    })?;
    Ok(FigureTable {
        title: format!("Ablations on a {r}x{c} grid (maintenance / query / max load)"),
        x_label: "variant".into(),
        columns: vec![
            "maint_ratio".into(),
            "query_ratio".into(),
            "max_load".into(),
        ],
        rows,
    })
}

/// §6: MOT over the general-network overlay on non-grid topologies.
pub fn general_graph_table(p: &Profile) -> BenchResult {
    let topologies: Vec<(&str, mot_net::Graph)> = vec![
        ("grid-10x10", generators::grid(10, 10).expect("grid")),
        ("ring-100", generators::ring(100).expect("ring")),
        (
            "rgg-100",
            generators::random_geometric(100, 12.0, 2.2, 7).expect("rgg"),
        ),
    ];
    let mut cells = Vec::new();
    for (name, g) in &topologies {
        for kind in ["doubling", "general"] {
            cells.push(Keyed::new(
                CellKey::new(format!("general/{name}"), g.node_count(), kind, 4),
                (*name, g, kind),
            ));
        }
    }
    let rows = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (name, g, kind) = cell.data;
        let bed = match kind {
            "doubling" => TestBed::new(g.clone(), 4)?,
            _ => TestBed::general(g.clone(), &OverlayConfig::practical(), 4)?,
        };
        let w = WorkloadSpec::new(p.objects.min(50), p.moves_per_object, 13).generate(&bed.graph);
        let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
        run_publish(&mut t, &w)?;
        let maint = replay_moves(&mut t, &w, &bed.oracle)?;
        let q = run_queries(&t, &bed.oracle, w.object_count(), p.queries, 23)?;
        Ok((
            format!("{name}/{kind}"),
            vec![maint.ratio(), q.cost.mean_ratio()],
        ))
    })?;
    Ok(FigureTable {
        title: "MOT on doubling vs general (sparse-partition) overlays".into(),
        x_label: "topology/overlay".into(),
        columns: vec!["maint_ratio".into(), "query_ratio".into()],
        rows,
    })
}

/// §5's routing-state argument: with the embedded de Bruijn graph every
/// cluster member keeps a constant-size neighbor table; without it, a
/// member would need the physical addresses of the whole cluster
/// (`O(|X|)`) to resolve hashed placements. This table measures both on
/// the overlay's actual clusters.
pub fn state_size_table(p: &Profile) -> BenchResult {
    use mot_core::lb::ClusterTable;
    let cells: Vec<Keyed<(usize, usize)>> = p
        .grids
        .iter()
        .map(|&(r, c)| Keyed::new(CellKey::new("state-size", r * c, "MOT+LB", 1), (r, c)))
        .collect();
    let rows = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (r, c) = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, 1, p.oracle)?;
        let table = ClusterTable::build(&bed.overlay, &bed.oracle);
        let (mut max_table, mut max_cluster, mut sum_table, mut count) =
            (0usize, 0usize, 0usize, 0usize);
        for level in 1..=bed.overlay.height() {
            for &center in bed.overlay.level_members(level) {
                let e = table
                    .embedding(center, level)
                    .ok_or("overlay cluster without embedding")?;
                max_cluster = max_cluster.max(e.len());
                for &member in e.members() {
                    let t = e.neighbor_table(member).len();
                    max_table = max_table.max(t);
                    sum_table += t;
                    count += 1;
                }
            }
        }
        Ok((
            (r * c).to_string(),
            vec![
                max_cluster as f64, // naive per-member state O(|X|)
                max_table as f64,   // de Bruijn per-member state
                sum_table as f64 / count.max(1) as f64,
            ],
        ))
    })?;
    Ok(FigureTable {
        title: "Per-member routing state: naive cluster tables vs de Bruijn embedding (§5)".into(),
        x_label: "nodes".into(),
        columns: vec![
            "naive_max(|X|)".into(),
            "debruijn_max".into(),
            "debruijn_mean".into(),
        ],
        rows,
    })
}

/// Distance-sensitivity: mean query cost ratio as a function of how far
/// the requester is from the object. MOT's O(1) promise (Thm 4.11) is
/// strongest for nearby requesters; sink-routed STUN pays its full
/// root detour exactly there.
pub fn locality_table(p: &Profile) -> BenchResult {
    let &(r, c) = p.grids.last().ok_or("profile has no grids")?;
    let algos = [Algo::Mot, Algo::Stun, Algo::Zdat, Algo::ZdatShortcuts];
    let cells: Vec<Keyed<Algo>> = algos
        .iter()
        .map(|&a| Keyed::new(CellKey::new("locality", r * c, a.label(), 2), a))
        .collect();
    // One cell per algorithm: build the bed, replay the workload once,
    // then sweep every radius on the settled tracker. Each cell returns
    // (diameter, per-radius series); the diameter labels the last row.
    let per_algo: Vec<(f64, Vec<f64>)> =
        p.runner().run(&cells, |cell| -> Result<_, BenchError> {
            let bed = TestBed::grid_with_oracle(r, c, 2, p.oracle)?;
            let w =
                WorkloadSpec::new(p.objects.min(100), p.moves_per_object, 4).generate(&bed.graph);
            let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
            let mut t = bed.make_tracker(cell.data, &rates)?;
            run_publish(t.as_mut(), &w)?;
            replay_moves(t.as_mut(), &w, &bed.oracle)?;
            let radii = [2.0, 4.0, 8.0, 16.0, bed.oracle.diameter()];
            let mut ys = Vec::with_capacity(radii.len());
            for &radius in &radii {
                let q = mot_sim::run_local_queries(
                    t.as_ref(),
                    &bed.oracle,
                    w.object_count(),
                    radius,
                    p.queries,
                    11,
                )?;
                if q.correct != p.queries {
                    return Err(format!(
                        "local queries answered wrong: {}/{} correct",
                        q.correct, p.queries
                    )
                    .into());
                }
                ys.push(q.cost.mean_ratio());
            }
            Ok((bed.oracle.diameter(), ys))
        })?;
    let diameter = per_algo[0].0;
    let radii = [2.0, 4.0, 8.0, 16.0, diameter];
    let mut rows = Vec::new();
    for (ri, &radius) in radii.iter().enumerate() {
        let label = if radius >= diameter {
            "any".to_string()
        } else {
            format!("<={radius:.0}")
        };
        rows.push((label, per_algo.iter().map(|(_, ys)| ys[ri]).collect()));
    }
    Ok(FigureTable {
        title: format!(
            "Query cost ratio by requester distance ({}x{} grid, {} objects)",
            r,
            c,
            p.objects.min(100)
        ),
        x_label: "distance".into(),
        columns: algos.iter().map(|a| a.label().to_string()).collect(),
        rows,
    })
}

/// Mobility-model stress test: maintenance cost ratios under the three
/// mobility models, including the *commuter* model — perfectly
/// predictable traffic, the best case for rate-built trees and the
/// honest worst case for MOT's traffic-obliviousness.
pub fn mobility_table(p: &Profile) -> BenchResult {
    use mot_sim::MobilityModel;
    let (r, c) = (16usize, 16usize);
    let algos = [Algo::Mot, Algo::Stun, Algo::Dat, Algo::Zdat];
    let models = [
        ("random-walk", MobilityModel::RandomWalk),
        ("waypoint", MobilityModel::Waypoint),
        ("commuter", MobilityModel::Commuter),
    ];
    // Model-major, algo-minor — the historical nesting, so merge order
    // (and f64 placement) is unchanged.
    let cells: Vec<Keyed<(MobilityModel, Algo)>> = models
        .iter()
        .flat_map(|&(label, model)| {
            algos.iter().map(move |&algo| {
                Keyed::new(
                    CellKey::new(format!("mobility/{label}"), r * c, algo.label(), 5),
                    (model, algo),
                )
            })
        })
        .collect();
    let ratios = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (model, algo) = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, 3, p.oracle)?;
        let spec = mot_sim::WorkloadSpec {
            objects: p.objects.min(50),
            moves_per_object: p.moves_per_object,
            model,
            seed: 5,
        };
        let w = spec.generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(algo, &rates)?;
        run_publish(t.as_mut(), &w)?;
        let stats = replay_moves(t.as_mut(), &w, &bed.oracle)?;
        Ok(stats.ratio())
    })?;
    let rows = models
        .iter()
        .enumerate()
        .map(|(mi, &(label, _))| {
            let ys = ratios[mi * algos.len()..(mi + 1) * algos.len()].to_vec();
            (label.to_string(), ys)
        })
        .collect();
    Ok(FigureTable {
        title: format!("Maintenance cost ratio by mobility model ({r}x{c} grid)"),
        x_label: "mobility".into(),
        columns: algos.iter().map(|a| a.label().to_string()).collect(),
        rows,
    })
}

/// Backend scaling: fig4-style MOT maintenance over the profile's
/// grids, reporting the distance backend's *measured* memory footprint
/// next to the dense matrix it replaces. On the 64×64 grid (4096
/// nodes, the dense limit) the lazy backend's LRU holds 256 rows
/// (~12.6 MiB) against the 64 MiB matrix; a 128×128 grid would pit
/// ~50 MiB of rows against a 1 GiB matrix.
pub fn scale_table(p: &Profile) -> BenchResult {
    const MIB: f64 = (1024 * 1024) as f64;
    let cells: Vec<Keyed<(usize, usize)>> = p
        .grids
        .iter()
        .map(|&(r, c)| Keyed::new(CellKey::new("scale", r * c, "MOT", 1), (r, c)))
        .collect();
    let rows = p.runner().run(&cells, |cell| -> Result<_, BenchError> {
        let (r, c) = cell.data;
        let bed = TestBed::grid_with_oracle(r, c, 1, p.oracle)?;
        let w = WorkloadSpec::new(p.objects.min(50), p.moves_per_object.min(100), 5)
            .generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(Algo::Mot, &rates)?;
        run_publish(t.as_mut(), &w)?;
        let stats = replay_moves(t.as_mut(), &w, &bed.oracle)?;
        let n = bed.graph.node_count();
        let dense_bytes = (n * n * std::mem::size_of::<f32>()) as f64;
        Ok((
            (r * c).to_string(),
            vec![
                stats.ratio(),
                bed.oracle.memory_bytes() as f64 / MIB,
                dense_bytes / MIB,
            ],
        ))
    })?;
    Ok(FigureTable {
        title: format!(
            "MOT maintenance at scale, {} distance backend (measured memory vs dense matrix)",
            p.oracle.label()
        ),
        x_label: "nodes".into(),
        columns: vec![
            "maint_ratio".into(),
            "oracle_MiB".into(),
            "dense_matrix_MiB".into(),
        ],
        rows,
    })
}

/// The fixed-seed instrumented MOT run behind `level-decomp`, `--trace`,
/// and the `--metrics` report's observability section: publish +
/// maintenance replay + a query batch over the profile's largest grid,
/// every billed hop mirrored to `sink`. Returns the maintenance stats so
/// callers can cross-check the ledger against [`CostStats`] totals,
/// plus the bed oracle's cache counters when its backend keeps them.
fn observed_mot_run(
    p: &Profile,
    seed: u64,
    sink: &dyn TraceSink,
) -> Result<(CostStats, Option<CacheLedger>), BenchError> {
    let &(r, c) = p.grids.last().ok_or("profile has no grids")?;
    let bed = TestBed::grid_with_oracle(r, c, seed, p.oracle)?;
    let w = WorkloadSpec::new(p.objects.min(100), p.moves_per_object, seed * 7 + 1)
        .generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let mut t = bed.make_tracker_traced(Algo::Mot, &rates, sink)?;
    run_publish(t.as_mut(), &w)?;
    let maint = replay_moves(t.as_mut(), &w, &bed.oracle)?;
    run_queries(
        t.as_ref(),
        &bed.oracle,
        w.object_count(),
        p.queries,
        seed + 31,
    )?;
    Ok((maint, bed.oracle.cache_stats()))
}

/// Raw event stream of the fixed-seed instrumented run (the `--trace`
/// NDJSON export). Deterministic for a fixed profile and seed.
pub fn trace_events(p: &Profile, seed: u64) -> Result<Vec<TraceEvent>, BenchError> {
    let sink = MemorySink::new();
    observed_mot_run(p, seed, &sink)?;
    Ok(sink.events())
}

/// Mergeable aggregates of the fixed-seed instrumented run (the
/// `--metrics` report's observability section).
pub fn trace_aggregates(p: &Profile, seed: u64) -> Result<TraceAggregates, BenchError> {
    instrumented_run(p, seed).map(|(agg, _)| agg)
}

/// [`trace_aggregates`] plus the run's oracle cache counters — the
/// `--metrics` report exposes both so long soaks on the `cached`
/// backend can watch hit/miss/eviction health over time. `None` for
/// backends that keep no cache.
pub fn instrumented_run(
    p: &Profile,
    seed: u64,
) -> Result<(TraceAggregates, Option<CacheLedger>), BenchError> {
    let rec = Recorder::new();
    let (_, cache) = observed_mot_run(p, seed, &rec)?;
    Ok((rec.finish(), cache))
}

/// Per-level cost decomposition of the instrumented MOT run: one row per
/// hierarchy level, one column per cost ledger plus the level total.
///
/// Two built-in health checks fail the run with a readable error:
/// the maintenance column must sum to the replay's [`CostStats::total`]
/// (the trace must account for every billed unit of distance, within
/// float-summation tolerance), and level-ℓ maintenance spend must decay
/// up the hierarchy — under a diffusive workload only a geometrically
/// shrinking fraction of moves climbs past level ℓ, so the top half of
/// the populated levels has to spend strictly less than the bottom half.
pub fn level_decomposition_table(p: &Profile) -> BenchResult {
    let rec = Recorder::new();
    let (maint, _) = observed_mot_run(p, 1, &rec)?;
    let agg = rec.finish();
    let ledger = &agg.ledger;
    let maint_sum = ledger.ledger_total(LedgerKind::Maintenance);
    let rel = (maint_sum - maint.total).abs() / maint.total.max(1.0);
    if rel > 1e-6 {
        return Err(format!(
            "per-level maintenance decomposition {maint_sum} does not sum to \
             CostStats::total {} (relative error {rel:.2e})",
            maint.total
        )
        .into());
    }
    let height = ledger.height();
    let maint_by_level: Vec<f64> = (0..height)
        .map(|l| ledger.get(l, LedgerKind::Maintenance))
        .collect();
    if height >= 2 {
        let mid = height.div_ceil(2);
        let bottom: f64 = maint_by_level[..mid].iter().sum();
        let top: f64 = maint_by_level[mid..].iter().sum();
        if top >= bottom {
            return Err(format!(
                "maintenance spend does not decay up the hierarchy: \
                 levels 0..{mid} spend {bottom}, levels {mid}..{height} spend {top}"
            )
            .into());
        }
    }
    let kinds = LedgerKind::all();
    let mut rows = Vec::new();
    for l in 0..height {
        let mut ys: Vec<f64> = kinds.iter().map(|&k| ledger.get(l, k)).collect();
        ys.push(ledger.level_total(l));
        rows.push((format!("L{l}"), ys));
    }
    let mut columns: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    columns.push("total".into());
    Ok(FigureTable {
        title: format!(
            "Per-level cost decomposition, instrumented MOT run \
             (maintenance column sums to {maint_sum:.3})"
        ),
        x_label: "level".into(),
        columns,
        rows,
    })
}

/// Robustness sweep: the fig-4 grid workload replayed under injected
/// faults — message drop rates × sensor crash counts — for MOT vs STUN.
/// Per cell the table reports maintenance and query stretch of the
/// *effective* traffic plus two overhead percentages (relative to the
/// effective maintenance distance): `retry%`, the distance wasted on
/// lost/duplicated transmissions, and `repair%`, the distance spent on
/// crash handoffs and pointer-path re-publishes.
///
/// Every cell is also a health check: all queries must answer correctly
/// (after self-repair) and a final repair pass must leave zero
/// unrepaired objects, or the run fails with a readable error.
pub fn faults_table(p: &Profile, grid: (usize, usize)) -> BenchResult {
    let (r, c) = grid;
    let drop_rates = [0.0, 0.01, 0.05, 0.10];
    let crash_counts = [0usize, 4, 16];
    let algos = [Algo::Mot, Algo::Stun];
    // Crashes → drop → algo → seed, matching the historical loop nesting
    // so the merge below reproduces the exact f64 accumulation order.
    let mut cells: Vec<Keyed<(usize, f64, Algo, u64)>> = Vec::new();
    for &crashes in &crash_counts {
        for &drop_rate in &drop_rates {
            for &algo in &algos {
                for seed in 0..p.seeds {
                    cells.push(Keyed::new(
                        CellKey::new(
                            format!("faults/d{drop_rate}/x{crashes}"),
                            r * c,
                            algo.label(),
                            seed,
                        ),
                        (crashes, drop_rate, algo, seed),
                    ));
                }
            }
        }
    }
    // Each cell replays one (fault mix, algo, seed) run, keeping its
    // health checks (query correctness + full repair) inside the cell so
    // a failure names the exact run that broke.
    let per_cell: Vec<(CostStats, CostStats, f64, f64)> =
        p.runner().run(&cells, |cell| -> Result<_, BenchError> {
            let (crashes, drop_rate, algo, seed) = cell.data;
            let bed = TestBed::grid_with_oracle(r, c, seed, p.oracle)?.with_faults(FaultConfig {
                seed: seed * 101 + 13,
                drop_rate,
                crashes,
                ..FaultConfig::default()
            });
            let w =
                WorkloadSpec::new(p.objects, p.moves_per_object, seed * 7 + 1).generate(&bed.graph);
            let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
            let mut plan = bed.fault_plan(w.moves.len()).ok_or("bed has no faults")?;
            let mut t = bed.make_tracker(algo, &rates)?;
            run_publish(t.as_mut(), &w)?;
            let run = replay_moves_faulty(t.as_mut(), &w, &bed.oracle, &mut plan)?;
            let q = run_queries_faulty(
                t.as_mut(),
                &bed.oracle,
                p.objects,
                p.queries,
                seed + 31,
                &mut plan,
            )?;
            if q.batch.correct != p.queries {
                return Err(format!(
                    "{} (drop {drop_rate}, {crashes} crashes): {}/{} faulty \
                 queries answered wrong",
                    algo.label(),
                    p.queries - q.batch.correct,
                    p.queries
                )
                .into());
            }
            repair_all(t.as_mut(), p.objects)?;
            let unrepaired = unrepaired_objects(t.as_ref(), p.objects, bed.center());
            if unrepaired != 0 {
                return Err(format!(
                    "{} (drop {drop_rate}, {crashes} crashes): {unrepaired} \
                 objects unrepaired after the repair pass",
                    algo.label()
                )
                .into());
            }
            Ok((
                run.maintenance,
                q.batch.cost,
                run.retry_overhead + q.retry_overhead,
                t.repair_cost(),
            ))
        })?;
    let mut rows = Vec::new();
    let mut next = per_cell.into_iter();
    for &crashes in &crash_counts {
        for &drop_rate in &drop_rates {
            let mut ys = Vec::new();
            for _ in &algos {
                let mut maint = CostStats::default();
                let mut query = CostStats::default();
                let (mut retry, mut repair) = (0.0, 0.0);
                for _ in 0..p.seeds {
                    let (m, q, rt, rp) = next.next().expect("cell count mismatch");
                    maint.merge(&m);
                    query.merge(&q);
                    retry += rt;
                    repair += rp;
                }
                let effective = maint.total.max(f64::EPSILON);
                ys.push(maint.ratio());
                ys.push(query.mean_ratio());
                ys.push(100.0 * retry / effective);
                ys.push(100.0 * repair / effective);
            }
            rows.push((format!("d={:.0}% x={crashes}", drop_rate * 100.0), ys));
        }
    }
    Ok(FigureTable {
        title: format!(
            "Fault sweep on a {r}x{c} grid, {} objects (drop rate × crashes; \
             overheads relative to effective maintenance distance)",
            p.objects
        ),
        x_label: "faults".into(),
        columns: algos
            .iter()
            .flat_map(|a| {
                ["maint", "query", "retry%", "repair%"]
                    .iter()
                    .map(move |m| format!("{}_{m}", a.label()))
            })
            .collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_maintenance_figure_has_expected_shape() {
        let p = Profile::quick(5);
        let t = maintenance_figure(&p, false).unwrap();
        assert_eq!(t.rows.len(), p.grids.len());
        assert_eq!(t.columns.len(), 4);
        // every ratio at least 1 (costs can't beat optimal)
        for (_, ys) in &t.rows {
            for &y in ys {
                assert!(y >= 1.0, "ratio {y} below optimal");
            }
        }
    }

    #[test]
    fn quick_query_figure_runs_both_modes() {
        let p = Profile::quick(4);
        let a = query_figure(&p, false).unwrap();
        let b = query_figure(&p, true).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
    }

    #[test]
    fn load_figure_shows_balanced_mot() {
        let mut p = Profile::quick(30);
        p.grids = vec![(10, 10)];
        let t = load_figure(&p, Algo::Stun, 0).unwrap();
        let mot = &t.rows[0];
        let stun = &t.rows[1];
        assert_eq!(mot.0, "MOT+LB");
        // STUN's root carries every object: max load >= objects
        assert!(stun.1[0] >= 30.0, "STUN max load {}", stun.1[0]);
        assert!(mot.1[0] < stun.1[0], "MOT load not below STUN");
    }

    #[test]
    fn publish_cost_is_linear_in_diameter() {
        let p = Profile::quick(20);
        let t = publish_cost_table(&p).unwrap();
        for (_, ys) in &t.rows {
            let cost_over_d = ys[2];
            assert!(
                cost_over_d < 16.0,
                "publish cost {cost_over_d} x D not O(D)"
            );
        }
    }

    #[test]
    fn state_size_is_constant_in_cluster_size() {
        let mut p = Profile::quick(10);
        p.grids = vec![(4, 4), (10, 10)];
        let t = state_size_table(&p).unwrap();
        for (_, ys) in &t.rows {
            let (naive, db_max) = (ys[0], ys[1]);
            assert!(db_max <= 8.0, "de Bruijn table {db_max} not constant");
            assert!(naive >= db_max, "naive {naive} below de Bruijn {db_max}");
        }
        // naive state grows with n; de Bruijn stays flat
        assert!(t.rows[1].1[0] > t.rows[0].1[0]);
        assert!(t.rows[1].1[1] <= t.rows[0].1[1] + 1.0);
    }

    #[test]
    fn locality_shows_mot_flat_and_stun_steep() {
        let mut p = Profile::quick(20);
        p.grids = vec![(12, 12)];
        p.queries = 150;
        let t = locality_table(&p).unwrap();
        let mot = t.column("MOT").unwrap();
        let stun = t.column("STUN").unwrap();
        // STUN pays far more than MOT for the nearest requesters
        assert!(
            stun[0] > 2.0 * mot[0],
            "nearby queries: STUN {} vs MOT {}",
            stun[0],
            mot[0]
        );
        // MOT stays within a small band across distances (O(1))
        let (lo, hi) = mot
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        assert!(hi <= 4.0 * lo, "MOT locality profile not flat: {mot:?}");
    }

    #[test]
    fn scale_table_reports_ratio_and_memory() {
        let mut p = Profile::quick(5).with_oracle(OracleKind::Lazy);
        p.grids = vec![(8, 8)];
        let t = scale_table(&p).unwrap();
        assert_eq!(t.rows.len(), 1);
        let ys = &t.rows[0].1;
        assert!(ys[0] >= 1.0, "ratio {} below optimal", ys[0]);
        assert!(ys[1] > 0.0, "lazy backend reported no memory");
        // 64 nodes: dense matrix is 64*64*4 bytes
        assert!((ys[2] - (64.0 * 64.0 * 4.0) / (1024.0 * 1024.0)).abs() < 1e-9);
    }

    #[test]
    fn faults_table_covers_the_sweep_and_recovers_everything() {
        let mut p = Profile::quick(6);
        p.seeds = 1;
        p.queries = 60;
        let t = faults_table(&p, (8, 8)).unwrap();
        assert_eq!(t.rows.len(), 12, "4 drop rates x 3 crash counts");
        assert_eq!(t.columns.len(), 8, "4 metrics per algorithm");
        // the clean cell pays no overhead at all
        let clean = &t.rows[0];
        assert_eq!(clean.0, "d=0% x=0");
        assert_eq!(clean.1[2], 0.0, "MOT retry overhead in the clean cell");
        assert_eq!(clean.1[3], 0.0, "MOT repair overhead in the clean cell");
        // the harshest cell pays retry overhead and keeps stretch sane
        let harsh = t.rows.last().unwrap();
        assert_eq!(harsh.0, "d=10% x=16");
        assert!(harsh.1[2] > 0.0, "10% drops must waste distance");
        for (_, ys) in &t.rows {
            assert!(ys[0] >= 1.0 && ys[4] >= 1.0, "stretch below optimal");
        }
    }

    #[test]
    fn level_decomposition_sums_to_cost_stats_total() {
        let mut p = Profile::quick(10);
        p.grids = vec![(12, 12)];
        p.moves_per_object = 60;
        // the runner itself errors if the maintenance column mismatches
        // CostStats::total or spend fails to decay up the hierarchy
        let t = level_decomposition_table(&p).unwrap();
        assert!(t.rows.len() >= 2, "expected multiple populated levels");
        assert_eq!(t.columns.last().map(String::as_str), Some("total"));
        let maint = t.column("maintenance").unwrap();
        assert!(maint.iter().sum::<f64>() > 0.0);
        // row totals equal the sum of their ledger columns
        for (x, ys) in &t.rows {
            let parts: f64 = ys[..ys.len() - 1].iter().sum();
            assert!(
                (parts - ys[ys.len() - 1]).abs() < 1e-9,
                "{x} total mismatch"
            );
        }
    }

    #[test]
    fn trace_exports_are_deterministic_for_a_fixed_seed() {
        let mut p = Profile::quick(6);
        p.grids = vec![(8, 8)];
        let a = trace_events(&p, 3).unwrap();
        let b = trace_events(&p, 3).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same profile + seed must produce identical traces");
        let agg1 = trace_aggregates(&p, 3).unwrap();
        let agg2 = trace_aggregates(&p, 3).unwrap();
        assert_eq!(agg1.to_json(), agg2.to_json());
    }

    #[test]
    fn mobility_table_covers_three_models() {
        let mut p = Profile::quick(8);
        p.moves_per_object = 40;
        let t = mobility_table(&p).unwrap();
        assert_eq!(t.rows.len(), 3);
        let labels: Vec<&str> = t.rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["random-walk", "waypoint", "commuter"]);
        for (_, ys) in &t.rows {
            for &y in ys {
                assert!(y >= 1.0);
            }
        }
    }
}
