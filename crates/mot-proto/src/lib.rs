//! Message-passing realization of the MOT algorithm.
//!
//! The paper presents Algorithm 1 "as an iteration over the nodes for the
//! sake of simplicity" and notes (footnote 2) that it converts immediately
//! to a message-passing distributed algorithm — each node reacting to
//! `publish`, `insert`, `delete`, and `query` messages from its overlay
//! neighbors. This crate is that conversion:
//!
//! * [`message`] — the typed wire protocol (climb, delete, repoint,
//!   SDL install/remove, query, descend, reply),
//! * [`node`] — the per-sensor state machine: detection-list entries with
//!   *down-member* routing state (which lower-level holders a delete or
//!   query descent should visit), SDL entries, and the handler that maps
//!   one incoming message to outgoing messages,
//! * [`transport`] — a deterministic message queue with a distance-based
//!   cost ledger per message kind, plus [`LossyTransport`]: an ack/retry
//!   pipe that consults a pluggable [`faults::FaultModel`] and bills
//!   fault overhead under the uncharged `retries` kind,
//! * [`runtime`] — [`ProtoTracker`], a [`mot_core::Tracker`] that drives
//!   the node machines to quiescence per operation (the paper's
//!   one-by-one case).
//!
//! The differential tests in `tests/` replay identical workloads through
//! [`ProtoTracker`] and the direct [`mot_core::MotTracker`] and assert
//! byte-identical detection-list state and *exactly equal* maintenance
//! costs — the two implementations are two renderings of the same
//! algorithm.
//!
//! # Example
//!
//! ```
//! use mot_core::{MotConfig, ObjectId, Tracker};
//! use mot_hierarchy::{build_doubling, OverlayConfig};
//! use mot_net::{generators, DenseOracle, NodeId};
//! use mot_proto::{BatchOp, ProtoTracker};
//!
//! let g = generators::grid(6, 6)?;
//! let m = DenseOracle::build(&g)?;
//! let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
//! let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
//!
//! // One-by-one operations run the message protocol to quiescence.
//! t.publish(ObjectId(0), NodeId(0))?;
//! t.move_object(ObjectId(0), NodeId(1))?;
//! assert_eq!(t.query(NodeId(35), ObjectId(0))?.proxy, NodeId(1));
//!
//! // Distinct-object operations can race at message granularity.
//! let out = t.run_batch(
//!     &[
//!         BatchOp::Publish { object: ObjectId(1), proxy: NodeId(30) },
//!         BatchOp::Query { object: ObjectId(0), from: NodeId(20) },
//!     ],
//!     0.0,
//! )?;
//! assert_eq!(out.replies, vec![(ObjectId(0), NodeId(1))]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Place in the workspace
//!
//! Builds on `mot-net`, `mot-hierarchy`, and `mot-core`; `mot-sim`'s
//! differential tests replay it against the reference tracker.
//! Implements footnote 2's message-passing rendering of Algorithm 1.
//! See DESIGN.md §3 and §9.

#![warn(missing_docs)]

pub mod arena;
pub mod faults;
pub mod message;
pub mod node;
pub mod runtime;
pub mod transport;

pub use arena::{ArenaStats, RouteArena};
pub use faults::{FaultModel, NoFaults, ScriptedFaults};
pub use message::{Message, Payload};
pub use runtime::{BatchOp, BatchOutcome, ProtoTracker};
pub use transport::{
    Backoff, CostLedger, Delivery, LossyTransport, TimedTransport, Transport, RETRIES_KIND,
};
