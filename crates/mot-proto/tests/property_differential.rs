//! Property-based differential testing: on random deployments and random
//! walks, the message-passing runtime and the direct implementation stay
//! cost- and state-identical.
//!
//! The harness is a deterministic sweep of seeded random cases (the
//! environment vendors no proptest); failures reproduce by case number.

use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::{generators, DenseOracle, NodeId};
use mot_proto::ProtoTracker;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 16;

#[test]
fn proto_and_direct_agree_on_random_walks() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0xd1ff ^ (case << 8));
        let n = rng.gen_range(12usize..50);
        let graph_seed = rng.gen_range(0u64..500);
        let overlay_seed = rng.gen_range(0u64..50);
        let step_count = rng.gen_range(1usize..60);
        let use_sp: bool = rng.gen();

        let g =
            generators::random_geometric(n, 8.0, 2.6, graph_seed).expect("connected deployment");
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), overlay_seed);
        let cfg = if use_sp {
            MotConfig::plain()
        } else {
            MotConfig::no_special_parents()
        };
        let mut direct = MotTracker::new(&overlay, &m, cfg.clone());
        let mut proto = ProtoTracker::new(&overlay, &m, &cfg);

        let o = ObjectId(0);
        let mut proxy = NodeId(rng.gen_range(0..n as u32));
        let cd = direct.publish(o, proxy).unwrap();
        let cp = proto.publish(o, proxy).unwrap();
        assert!((cd - cp).abs() < 1e-6, "case {case} publish: {cd} vs {cp}");

        for i in 0..step_count {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[rng.gen_range(0..nbrs.len())].to;
            let md = direct.move_object(o, proxy).unwrap();
            let mp = proto.move_object(o, proxy).unwrap();
            assert!(
                (md.cost - mp.cost).abs() < 1e-6,
                "case {case} step {i}: direct {} vs proto {}",
                md.cost,
                mp.cost
            );
        }

        // identical state everywhere
        for node in g.nodes() {
            for level in 0..=overlay.height() {
                assert_eq!(
                    direct.holds(node, level, o),
                    proto.holds(node, level, o),
                    "case {case}: DL divergence at {node} level {level}"
                );
            }
        }
        assert_eq!(direct.node_loads(), proto.node_loads(), "case {case}");

        // identical query behaviour from a sample of nodes
        for x in g.nodes().step_by(5) {
            let qd = direct.query(x, o).unwrap();
            let qp = proto.query(x, o).unwrap();
            assert_eq!(qd.proxy, qp.proxy, "case {case}");
            assert!(
                (qd.cost - qp.cost).abs() < 1e-6,
                "case {case} query from {x}: direct {} vs proto {}",
                qd.cost,
                qp.cost
            );
        }
    }
}
