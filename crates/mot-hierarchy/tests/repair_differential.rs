//! Repaired-vs-rebuilt bit-parity differential suite (DESIGN.md §17).
//!
//! After every delta of a seeded churn schedule, the incrementally
//! repaired [`RepairableHierarchy`] must be bit-identical — levels,
//! default parents, stations — to a from-scratch build on the mutated
//! topology. Exercised across grid and geometric generators, three
//! schedule seeds each, and the three overlay-config profiles
//! (including `parent_set_radius_mult = 0`, which degenerates stations
//! to singleton default parents).

use mot_hierarchy::{OverlayConfig, RepairableHierarchy};
use mot_net::{generators, ChurnSchedule, ChurnSpec, Graph};

/// Replays `sched` against `hier` delta by delta, asserting full
/// structural bit-parity with a fresh build after every step.
fn assert_repair_matches_rebuild(
    base: &Graph,
    cfg: &OverlayConfig,
    hier_seed: u64,
    spec: &ChurnSpec,
    ctx: &str,
) {
    let sched = ChurnSchedule::generate(base, spec).expect("schedule");
    let mut hier = RepairableHierarchy::build(base, cfg, hier_seed).expect("build");
    let mut live = base.clone();
    for (i, delta) in sched.deltas().iter().enumerate() {
        delta.apply(&mut live).expect("apply");
        hier.repair(delta).expect("repair");
        let fresh = RepairableHierarchy::build(&live, cfg, hier_seed).expect("rebuild");
        assert_eq!(
            hier.snapshot(),
            fresh.snapshot(),
            "{ctx}: divergence after delta {i}"
        );
    }
    let ledger = hier.ledger();
    assert_eq!(ledger.deltas, sched.len() as u64);
    assert_eq!(ledger.repairs + ledger.rebuilds, ledger.deltas);
}

#[test]
fn grid_bit_parity_across_three_seeds() {
    let g = generators::grid(7, 7).unwrap();
    let cfg = OverlayConfig::practical();
    for seed in [11u64, 12, 13] {
        assert_repair_matches_rebuild(
            &g,
            &cfg,
            7,
            &ChurnSpec::new(12, 5, seed),
            &format!("grid seed {seed}"),
        );
    }
}

#[test]
fn geometric_bit_parity_across_three_seeds() {
    let g = generators::random_geometric(56, 8.0, 2.2, 17).unwrap();
    let cfg = OverlayConfig::practical();
    for seed in [21u64, 22, 23] {
        assert_repair_matches_rebuild(
            &g,
            &cfg,
            9,
            &ChurnSpec::new(12, 6, seed),
            &format!("geometric seed {seed}"),
        );
    }
}

#[test]
fn config_profiles_keep_bit_parity() {
    let g = generators::grid(6, 6).unwrap();
    for (name, cfg) in [
        ("practical", OverlayConfig::practical()),
        ("paper_exact", OverlayConfig::paper_exact()),
        ("singleton_parents", OverlayConfig::singleton_parents()),
    ] {
        assert_repair_matches_rebuild(&g, &cfg, 5, &ChurnSpec::new(8, 4, 31), name);
    }
}

#[test]
fn tree_churn_with_heavy_departures() {
    // Trees disconnect aggressively, so schedules lean on the
    // connectivity filter; repair must still track rebuilds exactly.
    let g = generators::random_tree(48, 41).unwrap();
    let cfg = OverlayConfig::practical();
    assert_repair_matches_rebuild(&g, &cfg, 3, &ChurnSpec::new(14, 8, 43), "tree");
}

#[test]
fn repair_absorbs_batched_deltas() {
    // Multi-event deltas (leave + join in one batch) must repair
    // atomically to the same fixpoint.
    let g = generators::grid(6, 6).unwrap();
    let cfg = OverlayConfig::practical();
    let mut hier = RepairableHierarchy::build(&g, &cfg, 2).unwrap();
    let mut live = g.clone();

    let star = {
        let mut probe = g.clone();
        probe.remove_node(mot_net::NodeId(14)).unwrap()
    };
    let mut delta = mot_net::TopologyDelta::leave(mot_net::NodeId(14));
    delta
        .events
        .push(mot_net::ChurnEvent::Leave(mot_net::NodeId(0)));
    delta.apply(&mut live).unwrap();
    hier.repair(&delta).unwrap();
    let fresh = RepairableHierarchy::build(&live, &cfg, 2).unwrap();
    assert_eq!(hier.snapshot(), fresh.snapshot(), "after batched leaves");

    let back = mot_net::TopologyDelta::join(
        mot_net::NodeId(14),
        star.into_iter()
            .filter(|e| e.to != mot_net::NodeId(0))
            .collect(),
    );
    back.apply(&mut live).unwrap();
    hier.repair(&back).unwrap();
    let fresh = RepairableHierarchy::build(&live, &cfg, 2).unwrap();
    assert_eq!(hier.snapshot(), fresh.snapshot(), "after rejoin");
    assert_eq!(hier.ledger().events, 3);
}
