//! The uniform tracker interface driven by the simulator.
//!
//! Corresponds to the operation triple of the paper's §3 problem
//! statement — `publish` / `move` / `query` — with every operation
//! returning the message distance it spent, so cost ratios against the
//! optimal offline algorithm can be accounted per operation
//! (DESIGN.md §2).
//!
//! Trackers themselves are idempotency-oblivious: `publish` upserts and
//! `move_object` rebinds to an absolute target, so replaying an entry
//! point twice is harmless but *billed* twice. Drivers that deliver
//! operations at-least-once (service mode, DESIGN.md §15) therefore
//! assign every call an [`crate::OpId`] and gate it through an
//! [`crate::OpLedger`] — effects and billing happen exactly once per id,
//! and a stale retry is fenced before it reaches the entry point.

use crate::object::ObjectId;
use crate::Result;
use mot_net::NodeId;

/// Result of a query operation.
///
/// ```
/// use mot_core::{QueryResult};
/// use mot_net::NodeId;
///
/// let q = QueryResult { proxy: NodeId(3), cost: 2.5 };
/// assert_eq!(q.proxy, NodeId(3)); // where the object is detected
/// assert!(q.cost > 0.0); // message distance billed to the querier
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryResult {
    /// The proxy node the query located.
    pub proxy: NodeId,
    /// Total message distance spent serving the query.
    pub cost: f64,
}

/// Result of a maintenance (move) operation.
///
/// ```
/// use mot_core::MoveOutcome;
/// use mot_net::NodeId;
///
/// let m = MoveOutcome { from: NodeId(1), cost: 4.0 };
/// // `from` is the structure's own record of the old proxy — the
/// // simulator cross-checks it against the workload's ground truth.
/// assert_eq!(m.from, NodeId(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveOutcome {
    /// The proxy the object moved away from (the structure's own record —
    /// the simulator checks it against ground truth).
    pub from: NodeId,
    /// Total message distance spent updating the structure.
    pub cost: f64,
}

/// A location-tracking structure: publish / maintenance / query with
/// message-distance cost accounting and a per-node load snapshot.
///
/// Implemented by [`crate::MotTracker`] (plain and load-balanced) and by
/// the STUN / DAT / Z-DAT baselines in `mot-baselines`, so experiments
/// treat every algorithm identically.
///
/// # Observability contract
///
/// Instrumented implementations accept a [`crate::TraceSink`] at
/// construction (`with_sink`) and then emit one [`crate::TraceEvent`]
/// per billed message hop plus a `TraceSink::op_complete` per finished
/// operation, such that the event distances of an operation sum to the
/// cost it returned. Hypothetical cost probes (e.g. the concurrent
/// engine's planning reads) must stay silent. Without a sink no event
/// is constructed: a traced-off run is bit-identical to one on an
/// uninstrumented build.
///
/// # Example
///
/// Publish an object, move it, and query it on a small grid:
///
/// ```
/// use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
/// use mot_hierarchy::{build_doubling, OverlayConfig};
/// use mot_net::{generators, DenseOracle, NodeId};
///
/// let g = generators::grid(4, 4)?;
/// let oracle = DenseOracle::build(&g)?;
/// let overlay = build_doubling(&g, &oracle, &OverlayConfig::practical(), 7);
/// let mut t = MotTracker::new(&overlay, &oracle, MotConfig::plain());
///
/// let o = ObjectId(0);
/// t.publish(o, NodeId(0))?;
/// let moved = t.move_object(o, NodeId(1))?;
/// assert_eq!(moved.from, NodeId(0));
/// let q = t.query(NodeId(15), o)?;
/// assert_eq!(q.proxy, NodeId(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait Tracker {
    /// Human-readable algorithm name used in reports.
    fn name(&self) -> String;

    /// One-time insertion of `o` at proxy `v`. Returns the message cost.
    fn publish(&mut self, o: ObjectId, proxy: NodeId) -> Result<f64>;

    /// Object `o` moved to proxy `to`; update the structure. Returns the
    /// old proxy and the maintenance cost.
    fn move_object(&mut self, o: ObjectId, to: NodeId) -> Result<MoveOutcome>;

    /// Locate `o` from node `from`. Pure read: must not mutate lists.
    fn query(&self, from: NodeId, o: ObjectId) -> Result<QueryResult>;

    /// The structure's current proxy record for `o`.
    fn proxy_of(&self, o: ObjectId) -> Option<NodeId>;

    /// Per-node count of stored object/bookkeeping entries — the
    /// load metric of Figs. 8–11.
    fn node_loads(&self) -> Vec<usize>;

    // ---- fault model (optional) ---------------------------------------
    //
    // Trackers with a failure model override these; the defaults make
    // crashes invisible so baselines without one keep compiling and a
    // zero-fault run is bit-identical to a run without the fault layer.

    /// Marks sensor `u` as crashed: every tracking entry it stored is
    /// lost. Trackers with a failure model may eagerly hand objects
    /// proxied at `u` to a live neighbor (billing the handoff to the
    /// repair account); orphaned directory entries elsewhere are repaired
    /// lazily by the next operation that hits them.
    fn crash_node(&mut self, _u: NodeId) {}

    /// Marks sensor `u` as rebooted: alive again, with empty memory.
    fn recover_node(&mut self, _u: NodeId) {}

    /// Re-publishes the pointer path of `o` if crash damage is detected,
    /// billing the cost to the repair account. Returns the cost of this
    /// repair (0.0 when nothing was damaged).
    fn repair_object(&mut self, _o: ObjectId) -> Result<f64> {
        Ok(0.0)
    }

    /// Total message distance spent on crash repair so far (handoffs and
    /// path re-publications) — the degradation account reported by the
    /// fault experiments.
    fn repair_cost(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_types_are_value_like() {
        let q = QueryResult {
            proxy: NodeId(3),
            cost: 2.5,
        };
        let q2 = q;
        assert_eq!(q, q2);
        let m = MoveOutcome {
            from: NodeId(1),
            cost: 0.0,
        };
        assert_eq!(m.from, NodeId(1));
    }
}
