//! Property-based differential testing: on random deployments and random
//! walks, the message-passing runtime and the direct implementation stay
//! cost- and state-identical.

use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::{generators, DistanceMatrix, NodeId};
use mot_proto::ProtoTracker;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn proto_and_direct_agree_on_random_walks(
        n in 12usize..50,
        graph_seed in 0u64..500,
        overlay_seed in 0u64..50,
        start in any::<u32>(),
        steps in proptest::collection::vec(any::<u32>(), 1..60),
        use_sp in any::<bool>(),
    ) {
        let g = generators::random_geometric(n, 8.0, 2.6, graph_seed)
            .expect("connected deployment");
        let m = DistanceMatrix::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), overlay_seed);
        let cfg = if use_sp { MotConfig::plain() } else { MotConfig::no_special_parents() };
        let mut direct = MotTracker::new(&overlay, &m, cfg.clone());
        let mut proto = ProtoTracker::new(&overlay, &m, &cfg);

        let o = ObjectId(0);
        let mut proxy = NodeId(start % n as u32);
        let cd = direct.publish(o, proxy).unwrap();
        let cp = proto.publish(o, proxy).unwrap();
        prop_assert!((cd - cp).abs() < 1e-6, "publish: {cd} vs {cp}");

        for (i, &s) in steps.iter().enumerate() {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[(s as usize) % nbrs.len()].to;
            let md = direct.move_object(o, proxy).unwrap();
            let mp = proto.move_object(o, proxy).unwrap();
            prop_assert!(
                (md.cost - mp.cost).abs() < 1e-6,
                "step {i}: direct {} vs proto {}", md.cost, mp.cost
            );
        }

        // identical state everywhere
        for node in g.nodes() {
            for level in 0..=overlay.height() {
                prop_assert_eq!(
                    direct.holds(node, level, o),
                    proto.holds(node, level, o),
                    "DL divergence at {} level {}", node, level
                );
            }
        }
        prop_assert_eq!(direct.node_loads(), proto.node_loads());

        // identical query behaviour from a sample of nodes
        for x in g.nodes().step_by(5) {
            let qd = direct.query(x, o).unwrap();
            let qp = proto.query(x, o).unwrap();
            prop_assert_eq!(qd.proxy, qp.proxy);
            prop_assert!(
                (qd.cost - qp.cost).abs() < 1e-6,
                "query from {}: direct {} vs proto {}", x, qd.cost, qp.cost
            );
        }
    }
}
