//! Bit-exact golden cost statistics for the paper lineup.
//!
//! These tuples were captured on the pre-CSR tree (BinaryHeap Dijkstra,
//! adjacency-list graph, oracle-scan hierarchy builder) and pin the
//! end-to-end determinism contract across the flat-CSR / workspace
//! rewrite: every maintenance replay must reproduce the exact f64 bit
//! patterns, not just values within an epsilon. Any change that shifts
//! settle order, tie-breaks, or float accumulation order trips this
//! test before it can silently move a published figure.

use mot_baselines::DetectionRates;
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::{generators, CachedOracle, OracleKind};
use mot_sim::{replay_moves, run_publish, Algo, TestBed, WorkloadSpec};

/// `(rows, cols, seed, algo, total_bits, optimal_bits, operations)`
/// captured from the pre-CSR implementation.
const GOLDEN: [(usize, usize, u64, Algo, u64, u64, usize); 16] = [
    (
        6,
        6,
        0,
        Algo::Mot,
        0x409e940000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        0,
        Algo::Stun,
        0x4097a80000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        0,
        Algo::Zdat,
        0x4091400000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        0,
        Algo::ZdatShortcuts,
        0x4091400000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        1,
        Algo::Mot,
        0x40a16c0000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        1,
        Algo::Stun,
        0x4095b80000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        1,
        Algo::Zdat,
        0x408bc00000000000,
        0x4072c00000000000,
        300,
    ),
    (
        6,
        6,
        1,
        Algo::ZdatShortcuts,
        0x408bc00000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        0,
        Algo::Mot,
        0x40a3300000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        0,
        Algo::Stun,
        0x4097480000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        0,
        Algo::Zdat,
        0x4093e00000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        0,
        Algo::ZdatShortcuts,
        0x4093e00000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        1,
        Algo::Mot,
        0x40a4780000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        1,
        Algo::Stun,
        0x4095b80000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        1,
        Algo::Zdat,
        0x4091680000000000,
        0x4072c00000000000,
        300,
    ),
    (
        10,
        10,
        1,
        Algo::ZdatShortcuts,
        0x4091680000000000,
        0x4072c00000000000,
        300,
    ),
];

#[test]
fn replay_costs_match_pre_csr_bits() {
    // Beds and workloads are rebuilt per (grid, seed) exactly as the
    // capture loop did: bed seed = workload-family seed, fig4 workload
    // convention (10 objects, 30 moves, seed * 7 + 1).
    for &(r, c, seed, algo, total_bits, optimal_bits, operations) in &GOLDEN {
        let bed = TestBed::grid(r, c, seed).unwrap();
        let ctx = format!("{r}x{c} seed {seed} {algo:?}");
        assert_golden_replay(&bed, seed, algo, total_bits, optimal_bits, operations, &ctx);
    }
}

fn assert_golden_replay(
    bed: &TestBed,
    seed: u64,
    algo: Algo,
    total_bits: u64,
    optimal_bits: u64,
    operations: usize,
    ctx: &str,
) {
    let w = WorkloadSpec::new(10, 30, seed * 7 + 1).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let mut t = bed.make_tracker(algo, &rates).unwrap();
    run_publish(t.as_mut(), &w).unwrap();
    let s = replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
    assert_eq!(s.total.to_bits(), total_bits, "{ctx}: total drifted");
    assert_eq!(s.optimal.to_bits(), optimal_bits, "{ctx}: optimal drifted");
    assert_eq!(s.operations, operations, "{ctx}: operation count drifted");
}

/// The cached backend must reproduce the same pre-CSR golden bits as the
/// dense matrix: identical f32 quantization on every distance, so
/// swapping the backend moves no published figure.
#[test]
fn cached_backend_reproduces_the_golden_bits() {
    for &(r, c, seed, algo, total_bits, optimal_bits, operations) in &GOLDEN {
        let bed = TestBed::grid_with_oracle(r, c, seed, OracleKind::Cached).unwrap();
        let ctx = format!("{r}x{c} seed {seed} {algo:?} cached");
        assert_golden_replay(&bed, seed, algo, total_bits, optimal_bits, operations, &ctx);
    }
}

/// Same golden bits under continuous cache eviction: a two-row byte
/// budget forces rows out and back throughout overlay construction and
/// replay, and every recomputed row must quantize identically.
#[test]
fn cached_backend_under_eviction_reproduces_the_golden_bits() {
    for &(r, c, seed, algo, total_bits, optimal_bits, operations) in &GOLDEN {
        let g = generators::grid(r, c).unwrap();
        let n = g.node_count();
        let oracle = CachedOracle::with_byte_budget(&g, 2 * n * (4 + 8)).unwrap();
        let overlay = build_doubling(&g, &oracle, &OverlayConfig::practical(), seed);
        let bed = TestBed {
            graph: g,
            oracle: Box::new(oracle),
            overlay,
            faults: None,
        };
        let ctx = format!("{r}x{c} seed {seed} {algo:?} cached-evicting");
        assert_golden_replay(&bed, seed, algo, total_bits, optimal_bits, operations, &ctx);
    }
}
