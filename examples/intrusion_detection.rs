//! Perimeter intrusion detection: the ring pathology of tree trackers.
//!
//! ```text
//! cargo run --release --example intrusion_detection
//! ```
//!
//! A perimeter fence instrumented as a ring of sensors — the paper's
//! adversarial topology for spanning-tree trackers (§1.3: cost ratios can
//! reach `O(D)` on rings, because any spanning tree cuts one ring edge
//! whose endpoints then sit Θ(n) apart in the tree). An intruder creeping
//! along the fence crosses that cut repeatedly; STUN's maintenance
//! explodes while MOT's hierarchy stays near-optimal.

use mot_tracking::prelude::*;

fn main() {
    let n = 64;
    let bed = TestBed::new(generators::ring(n).expect("ring"), 17).unwrap();
    println!(
        "perimeter fence: ring of {n} sensors, diameter {}\n",
        bed.oracle.diameter()
    );

    // The intruder creeps around the full perimeter, twice.
    let mut moves = Vec::new();
    let mut cur = 0u32;
    for step in 1..=(2 * n as u32) {
        let next = step % n as u32;
        moves.push((NodeId(cur), NodeId(next)));
        cur = next;
    }
    let rates = DetectionRates::from_moves(&bed.graph, &moves);

    println!(
        "{:<18} {:>14} {:>16}",
        "algorithm", "total cost", "cost ratio"
    );
    for algo in [Algo::Mot, Algo::Stun, Algo::Dat] {
        let mut t = bed.make_tracker(algo, &rates).unwrap();
        t.publish(ObjectId(0), NodeId(0)).expect("publish");
        let mut total = 0.0;
        for &(_, to) in &moves {
            total += t.move_object(ObjectId(0), to).expect("move").cost;
        }
        let optimal = moves.len() as f64; // unit hops
        println!(
            "{:<18} {:>14.1} {:>16.2}",
            algo.label(),
            total,
            total / optimal
        );
    }

    // Quantify the structural cause: the worst tree detour between
    // graph-adjacent sensors.
    let stun_tree = build_stun(&bed.graph, &rates);
    let worst = bed
        .graph
        .edges()
        .map(|(a, b, _)| stun_tree.tree_distance(a, b, &bed.oracle))
        .fold(0.0, f64::max);
    println!(
        "\nworst adjacent-sensor detour in the STUN tree: {worst:.0} \
         (graph distance 1) — the Θ(D) pathology"
    );
    assert!(worst >= (n / 4) as f64);
}
