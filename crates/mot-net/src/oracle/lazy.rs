//! On-demand per-source Dijkstra backend.
//!
//! Where [`DenseOracle`](super::DenseOracle) spends O(n²) memory up
//! front, this backend solves a single-source shortest-path tree the
//! first time a source is queried and keeps the resulting
//! [`DistRow`](super::DistRow) in a sharded, LRU-evicted cache. Memory
//! is O(cached_rows · n); construction is O(1). The trade: a cache miss
//! costs one Dijkstra, and the diameter is a double-sweep estimate
//! `est` with `D/2 ≤ est ≤ D` (exact on trees, and on grids and other
//! graphs whose eccentricity is maximized at a sweep endpoint) instead
//! of the exact maximum over all pairs.
//!
//! Rows are quantized through `f32` exactly like the dense matrix, so
//! `dist`/`ball`/cost accounts are bit-identical to the dense backend
//! (Dijkstra is deterministic); only `diameter` may differ.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use super::{DistRow, DistanceOracle};
use crate::error::NetError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::workspace::DijkstraWorkspace;
use crate::Result;

const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    /// Source id → (row, last-touch stamp).
    rows: HashMap<u32, (Arc<DistRow>, u64)>,
}

/// Distance oracle that computes per-source rows on demand.
///
/// # Example
///
/// ```
/// use mot_net::{generators, DistanceOracle, LazyOracle, NodeId};
///
/// let g = generators::grid(4, 4)?;
/// let m = LazyOracle::new(&g)?; // O(1) construction, no rows yet
/// assert_eq!(m.cached_rows(), 0);
/// assert_eq!(m.dist(NodeId(0), NodeId(15)), 6.0); // solves row 0
/// assert!(m.cached_rows() >= 1);
/// # Ok::<(), mot_net::NetError>(())
/// ```
pub struct LazyOracle {
    g: Graph,
    shards: Vec<Mutex<Shard>>,
    /// Max cached rows per shard (total capacity spread evenly).
    per_shard: usize,
    /// Monotonic LRU clock; advanced on every row touch.
    clock: AtomicU64,
    diameter: OnceLock<f64>,
    /// Pool of Dijkstra workspaces reused across cache misses, so a
    /// miss allocates only the cached [`DistRow`] product, never the
    /// solver scratch. Bounded at [`SHARDS`] workspaces (one per
    /// plausibly concurrent miss).
    workspaces: Mutex<Vec<DijkstraWorkspace>>,
}

impl std::fmt::Debug for LazyOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyOracle")
            .field("node_count", &self.g.node_count())
            .field("cached_rows", &self.cached_rows())
            .finish()
    }
}

impl LazyOracle {
    /// Default total row capacity for an `n`-node graph: enough rows
    /// that hierarchy-construction working sets fit, bounded well below
    /// the dense matrix (`n` rows).
    pub fn default_row_capacity(n: usize) -> usize {
        (n / 16).max(128)
    }

    /// Validates the graph (connected, non-empty) and creates an oracle
    /// with the default row capacity. No distances are computed yet.
    pub fn new(g: &Graph) -> Result<Self> {
        Self::with_row_capacity(g, Self::default_row_capacity(g.node_count()))
    }

    /// As [`LazyOracle::new`] with an explicit total row capacity
    /// (clamped to at least one row per shard).
    pub fn with_row_capacity(g: &Graph, rows: usize) -> Result<Self> {
        if g.node_count() == 0 {
            return Err(NetError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(NetError::Disconnected);
        }
        Ok(LazyOracle {
            g: g.clone(),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: rows.div_ceil(SHARDS).max(1),
            clock: AtomicU64::new(0),
            diameter: OnceLock::new(),
            workspaces: Mutex::new(Vec::new()),
        })
    }

    /// The row for source `u`, from cache or computed now. Dijkstra
    /// runs outside the shard lock so concurrent misses on different
    /// sources don't serialize.
    pub(crate) fn row(&self, u: NodeId) -> Arc<DistRow> {
        let shard = &self.shards[u.index() % SHARDS];
        {
            let mut s = shard.lock().expect("oracle shard poisoned");
            if let Some((row, stamp)) = s.rows.get_mut(&u.0) {
                *stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(row);
            }
        }
        let mut ws = {
            let mut pool = self.workspaces.lock().expect("workspace pool poisoned");
            pool.pop().unwrap_or_default()
        };
        ws.sssp(&self.g, u);
        let row = Arc::new(DistRow::from_workspace(&ws, self.g.node_count()));
        {
            let mut pool = self.workspaces.lock().expect("workspace pool poisoned");
            if pool.len() < SHARDS {
                pool.push(ws);
            }
        }
        let mut s = shard.lock().expect("oracle shard poisoned");
        // Another thread may have raced us here; keep whichever row is
        // already in (they're identical — Dijkstra is deterministic).
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let entry = s
            .rows
            .entry(u.0)
            .or_insert_with(|| (Arc::clone(&row), stamp));
        entry.1 = stamp;
        let out = Arc::clone(&entry.0);
        if s.rows.len() > self.per_shard {
            // Evict the least-recently-touched row in this shard.
            if let Some(&victim) = s
                .rows
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                s.rows.remove(&victim);
            }
        }
        out
    }

    /// Number of rows currently cached across all shards.
    pub fn cached_rows(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("oracle shard poisoned").rows.len())
            .sum()
    }

    /// Heap footprint of the cached rows, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("oracle shard poisoned")
                    .rows
                    .values()
                    .map(|(row, _)| row.bytes())
                    .sum::<usize>()
            })
            .sum()
    }

    /// The underlying graph (lazy backends own a copy).
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Double-sweep diameter estimate: the farthest node from an
    /// arbitrary start, then the eccentricity of that node. Always a
    /// lower bound on the true diameter `D`, never below `D/2`.
    fn double_sweep(&self) -> f64 {
        let first = self.row(NodeId(0));
        let a = first
            .farthest()
            .expect("non-empty graph has a farthest node");
        self.row(a).max()
    }
}

impl DistanceOracle for LazyOracle {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        self.row(u).dist(v)
    }

    fn diameter(&self) -> f64 {
        *self.diameter.get_or_init(|| self.double_sweep())
    }

    fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        self.row(u).ball(r)
    }

    fn ball_size(&self, u: NodeId, r: f64) -> usize {
        self.row(u).ball_size(r)
    }

    fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        self.row(u).ball_into(r, out)
    }

    fn memory_bytes(&self) -> usize {
        LazyOracle::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::DenseOracle;
    use super::*;
    use crate::generators;

    #[test]
    fn dist_matches_dense() {
        let g = generators::random_geometric(50, 8.0, 2.5, 17).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let lazy = LazyOracle::new(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(lazy.dist(u, v), dense.dist(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn ball_matches_dense_exactly() {
        let g = generators::grid(7, 6).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let lazy = LazyOracle::new(&g).unwrap();
        for u in g.nodes() {
            for r in [0.0, 1.0, 2.0, 3.5, 20.0] {
                assert_eq!(lazy.ball(u, r), dense.ball(u, r), "u = {u}, r = {r}");
            }
        }
    }

    #[test]
    fn diameter_exact_on_grid() {
        let g = generators::grid(8, 8).unwrap();
        let lazy = LazyOracle::new(&g).unwrap();
        assert_eq!(lazy.diameter(), 14.0);
    }

    #[test]
    fn diameter_estimate_within_bounds() {
        for seed in 0..8 {
            let g = generators::random_geometric(40, 8.0, 2.5, seed).unwrap();
            let exact = DenseOracle::build(&g).unwrap().diameter();
            let est = LazyOracle::new(&g).unwrap().diameter();
            assert!(
                est <= exact + 1e-6 && est >= exact / 2.0 - 1e-6,
                "seed {seed}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn cache_evicts_down_to_capacity() {
        let g = generators::grid(10, 10).unwrap();
        // 16 shards, 1 row per shard.
        let lazy = LazyOracle::with_row_capacity(&g, 1).unwrap();
        for u in g.nodes() {
            lazy.dist(u, NodeId(0));
        }
        assert!(
            lazy.cached_rows() <= SHARDS,
            "cache grew past capacity: {}",
            lazy.cached_rows()
        );
        // Evicted rows recompute transparently.
        assert_eq!(lazy.dist(NodeId(0), NodeId(99)), 18.0);
    }

    #[test]
    fn memory_stays_below_dense() {
        let g = generators::grid(16, 16).unwrap(); // 256 nodes
        let lazy = LazyOracle::with_row_capacity(&g, 16).unwrap();
        for u in g.nodes() {
            lazy.ball(u, 3.0);
        }
        let dense_bytes = 256 * 256 * 4;
        assert!(
            lazy.memory_bytes() < dense_bytes / 2,
            "lazy {} vs dense {}",
            lazy.memory_bytes(),
            dense_bytes
        );
    }

    #[test]
    fn concurrent_queries_agree() {
        let g = generators::grid(12, 12).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let lazy = LazyOracle::with_row_capacity(&g, 8).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let (lazy, dense, g) = (&lazy, &dense, &g);
                s.spawn(move || {
                    for u in g.nodes().skip(t).step_by(4) {
                        for v in g.nodes().step_by(7) {
                            assert_eq!(lazy.dist(u, v), dense.dist(u, v));
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn rejects_bad_graphs() {
        let mut b = crate::builder::GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(matches!(LazyOracle::new(&g), Err(NetError::Disconnected)));
    }
}
