//! The weighted sensor-network graph `G = (V, E, w)`.
//!
//! # Memory layout
//!
//! The graph is stored in compressed-sparse-row (CSR) form: one flat
//! array of packed half-[`Edge`]s plus a `u32` offset per node
//! (`neighbors(u)` is the slice `edges[offsets[u]..offsets[u+1]]`).
//! Every Dijkstra run — and therefore every oracle row, hierarchy
//! radius query, and cost account in the suite — iterates neighbor
//! lists, so they are contiguous in memory instead of one heap
//! allocation per node. See DESIGN.md §13.

use crate::error::NetError;
use crate::node::{NodeId, Point};
use crate::Result;

/// A weighted half-edge stored in a node's adjacency row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// The neighbor this half-edge points to.
    pub to: NodeId,
    /// Normalized distance between the two adjacent sensors (`w` in the
    /// paper). Always finite and strictly positive.
    pub weight: f64,
}

/// A static, connected, undirected, weighted graph of sensor nodes.
///
/// Construction goes through [`crate::GraphBuilder`] (or a generator in
/// [`crate::generators`]), which validates weights and rejects duplicate
/// edges; once built the graph is immutable, matching the paper's static
/// network model (dynamism is layered on top in `mot-core::dynamics` by
/// masking nodes, not by mutating `G`).
///
/// Internally the adjacency structure is a flat CSR array (see the
/// module docs), but the API is unchanged from the per-node
/// representation: [`Graph::neighbors`] still hands out a `&[Edge]`
/// slice per node.
///
/// # Example
///
/// Neighbor iteration is a contiguous-slice walk — the hot loop of
/// every shortest-path computation in the suite:
///
/// ```
/// use mot_net::{generators, NodeId};
///
/// let g = generators::grid(3, 3)?; // unit 3×3 grid
/// let center = NodeId(4);
/// // The adjacency row is a plain slice, sorted by neighbor id.
/// let row = g.neighbors(center);
/// assert_eq!(row.len(), 4);
/// assert!(row.windows(2).all(|w| w[0].to < w[1].to));
/// // Summing weights over a row touches one contiguous cache run.
/// let total: f64 = row.iter().map(|e| e.weight).sum();
/// assert_eq!(total, 4.0);
/// # Ok::<(), mot_net::NetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR row offsets: node `u`'s half-edges live at
    /// `edges[offsets[u] as usize..offsets[u + 1] as usize]`.
    /// `offsets.len() == node_count() + 1`.
    offsets: Vec<u32>,
    /// All half-edges, packed row by row (each undirected edge appears
    /// twice, once per endpoint).
    edges: Vec<Edge>,
    positions: Option<Vec<Point>>,
    edge_count: usize,
}

impl Graph {
    pub(crate) fn from_parts(
        adjacency: Vec<Vec<Edge>>,
        positions: Option<Vec<Point>>,
        edge_count: usize,
    ) -> Self {
        let n = adjacency.len();
        let half_edges: usize = adjacency.iter().map(Vec::len).sum();
        debug_assert!(
            half_edges <= u32::MAX as usize,
            "half-edge count overflows the CSR u32 offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(half_edges);
        offsets.push(0u32);
        for row in &adjacency {
            edges.extend_from_slice(row);
            offsets.push(edges.len() as u32);
        }
        Graph {
            offsets,
            edges,
            positions,
            edge_count,
        }
    }

    /// Number of sensor nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of stored half-edges (`2 |E|`) — the length of the packed
    /// CSR edge array.
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// The adjacency row of `u`: a contiguous slice of half-edges,
    /// sorted ascending by neighbor id.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Edge] {
        let i = u.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let i = u.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Returns the weight of the undirected edge `(u, v)` if present.
    /// By convention `w(u, u) = 0` (the paper's assumption).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if u == v {
            return Some(0.0);
        }
        // Rows are sorted by neighbor id, so this is a binary search.
        let row = self.neighbors(u);
        row.binary_search_by(|e| e.to.cmp(&v))
            .ok()
            .map(|i| row[i].weight)
    }

    /// True when `(u, v)` is an edge of `G`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search_by(|e| e.to.cmp(&v)).is_ok()
    }

    /// Iterator over undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .filter(move |e| a < e.to)
                .map(move |e| (a, e.to, e.weight))
        })
    }

    /// Geographic positions, if the graph carries them.
    pub fn positions(&self) -> Option<&[Point]> {
        self.positions.as_deref()
    }

    /// Geographic position of `u`, or an error if the graph has none.
    pub fn position(&self, u: NodeId) -> Result<Point> {
        self.positions
            .as_ref()
            .map(|p| p[u.index()])
            .ok_or(NetError::MissingPositions)
    }

    /// The smallest edge weight in the graph.
    pub fn min_edge_weight(&self) -> Option<f64> {
        self.edges().map(|(_, _, w)| w).fold(None, |acc, w| {
            Some(match acc {
                None => w,
                Some(m) => m.min(w),
            })
        })
    }

    /// Returns a copy of the graph with all edge weights rescaled so the
    /// shortest edge has weight exactly 1 (the paper's normalization; the
    /// cost-ratio bounds are then independent of the network's scale).
    pub fn normalized(&self) -> Graph {
        let Some(min_w) = self.min_edge_weight() else {
            return self.clone();
        };
        if (min_w - 1.0).abs() < f64::EPSILON {
            return self.clone();
        }
        let mut g = self.clone();
        for e in &mut g.edges {
            e.weight /= min_w;
        }
        g
    }

    /// Whether the graph is connected (trivially true for `n <= 1`).
    ///
    /// The paper assumes `G` is connected; generators assert this and the
    /// distance oracle rejects disconnected graphs.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(u) = stack.pop() {
            for e in self.neighbors(NodeId::from_index(u)) {
                let v = e.to.index();
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }

    /// Sum of all edge weights — handy for sanity checks in tests.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.half_edge_count(), 6);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn edge_weight_lookup_is_symmetric() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(0)), Some(0.0));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn csr_rows_are_contiguous_and_sorted() {
        let g = crate::generators::grid(4, 5).unwrap();
        let mut total = 0usize;
        for u in g.nodes() {
            let row = g.neighbors(u);
            assert_eq!(row.len(), g.degree(u));
            assert!(row.windows(2).all(|w| w[0].to < w[1].to));
            total += row.len();
        }
        assert_eq!(total, g.half_edge_count());
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn normalization_rescales_to_unit_minimum() {
        let g = triangle().normalized();
        let min = g.min_edge_weight().unwrap();
        assert!((min - 1.0).abs() < 1e-12);
        // relative proportions preserved
        assert!((g.edge_weight(NodeId(2), NodeId(0)).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(!g.is_connected());
    }

    #[test]
    fn positions_absent_by_default() {
        let g = triangle();
        assert!(g.positions().is_none());
        assert_eq!(g.position(NodeId(0)), Err(NetError::MissingPositions));
    }
}
