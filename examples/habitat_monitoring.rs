//! Habitat monitoring: animals in a random sensor deployment.
//!
//! ```text
//! cargo run --release --example habitat_monitoring
//! ```
//!
//! The classic sensor-network motivation (Mainwaring et al., cited in the
//! paper's introduction): sensors scattered over a reserve, animals
//! roaming as random walks, ranger stations issuing "where is animal X?"
//! queries. Uses load-balanced MOT (§5) over a random-geometric
//! (unit-disk) deployment and reports cost ratios and the per-node
//! storage load — memory being the scarce resource on motes.

use mot_tracking::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    // 200 sensors dropped over a 16x16 km reserve, 2.2 km radio range.
    let field = generators::random_geometric(200, 16.0, 2.2, 7).expect("deployment");
    let bed = TestBed::new(field, 11).unwrap();
    println!(
        "reserve: {} sensors, {} links, diameter {:.1}",
        bed.graph.node_count(),
        bed.graph.edge_count(),
        bed.oracle.diameter()
    );

    // 25 collared animals, each wandering 400 hand-offs.
    let herd = WorkloadSpec::new(25, 400, 3).generate(&bed.graph);
    let mut tracker = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::load_balanced());
    run_publish(&mut tracker, &herd).expect("collaring");
    let maint = replay_moves(&mut tracker, &herd, &bed.oracle).expect("tracking");
    println!(
        "tracked {} moves: maintenance cost ratio {:.2}",
        maint.operations,
        maint.ratio()
    );

    // Ranger stations sit at three fixed sensors and poll animals.
    let stations = [NodeId(0), NodeId(99), NodeId(199)];
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut queries = CostStats::default();
    for _ in 0..300 {
        let station = stations[rng.gen_range(0..stations.len())];
        let animal = ObjectId(rng.gen_range(0..25));
        let truth = tracker.proxy_of(animal).unwrap();
        let q = tracker.query(station, animal).expect("poll");
        assert_eq!(q.proxy, truth);
        let optimal = bed.oracle.dist(station, truth);
        if optimal > 0.0 {
            queries.record(q.cost, optimal);
        }
    }
    println!(
        "300 ranger queries: mean cost ratio {:.2} (O(1) per Theorem 4.11)",
        queries.mean_ratio()
    );

    // Storage load on the motes: §5's hashing keeps it flat.
    let loads = LoadStats::from_loads(&tracker.node_loads());
    println!(
        "per-mote load: max {}, mean {:.1}, nodes above 10 entries: {}, Jain {:.2}",
        loads.max, loads.mean, loads.nodes_above_10, loads.jain_index
    );
    assert!(
        loads.jain_index > 0.2,
        "load should be spread across the field"
    );
}
