//! Experiment definitions regenerating every figure of the paper's §8,
//! plus the ablations DESIGN.md calls out.
//!
//! The `experiments` binary prints the tables; the criterion benches in
//! `benches/` time the same code paths on reduced workloads. Figures:
//!
//! | id       | paper figure | metric |
//! |----------|--------------|--------|
//! | `fig4`   | Fig. 4  | maintenance cost ratio, one-by-one, 100 objects |
//! | `fig5`   | Fig. 5  | maintenance cost ratio, one-by-one, 1000 objects |
//! | `fig6`   | Fig. 6  | query cost ratio, one-by-one, 100 objects |
//! | `fig7`   | Fig. 7  | query cost ratio, one-by-one, 1000 objects |
//! | `fig8`…`fig11` | Figs. 8–11 | load/node vs STUN and Z-DAT |
//! | `fig12`/`fig13` | Figs. 12–13 | maintenance ratio, concurrent |
//! | `fig14`/`fig15` | Figs. 14–15 | query ratio, concurrent |
//! | `faults` | — | fault sweep: drop rates × crashes, MOT vs STUN, 32×32 grid |
//! | `faults-smoke` | — | fixed-seed 16×16 fault sweep (CI health check) |
//! | `service` | — | chaos soak of the long-lived service loop (DESIGN.md §15) |
//! | `service-smoke` | — | short fixed-seed service soak (CI zero-silent-loss check) |
//! | `churn` | §7 | amortized hierarchy-repair cost under seeded join/leave schedules |
//! | `churn-smoke` | §7 | per-delta divergence gate + churn service soak (CI) |
//! | `scenarios` | §8 | mobility/workload scenario suite: waypoint, Lévy, hotspot, Zipf, adversarial |
//! | `scenarios-smoke` | §8 | fixed-spec scenario sweep + gated claims + scenario service soak (CI) |
//! | `level-decomp` | — | per-level cost decomposition of an instrumented MOT run |
//! | `bench-baseline` | — | wall-clock phase timings vs the frozen builder (`BENCH_*.json`) |
//!
//! `--metrics out.json` additionally writes a machine-readable
//! [`RunReport`]; `--trace out.ndjson` dumps the fixed-seed instrumented
//! run's raw event stream as NDJSON.
//!
//! # Place in the workspace
//!
//! The top of the crate DAG — depends on everything, nothing depends
//! on it. Reproduces §8's evaluation; the table above maps each
//! experiment id to its paper figure. See DESIGN.md §4
//! (per-experiment index) and §12 (the `--jobs` determinism contract).

#![warn(missing_docs)]

pub mod baseline;
pub mod churn;
pub mod figures;
pub mod profiling;
pub mod report;
pub mod scenarios;
pub mod service;

pub use baseline::{
    run_baseline, BaselineProfile, BaselineReport, ServiceTiming, SizeSpec, SizeTiming,
    BENCH_SCHEMA, DISPATCH_TOLERANCE, REFERENCE_PHASE_NODE_LIMIT,
};
pub use churn::{churn_smoke_table, churn_table};
pub use figures::{
    ablation_table, faults_table, general_graph_table, instrumented_run, level_decomposition_table,
    load_figure, locality_table, maintenance_figure, mobility_table, publish_cost_table,
    query_figure, scale_table, state_size_table, trace_aggregates, trace_events, BenchError,
    BenchResult, Profile,
};
pub use profiling::{
    profile_fig4_phases, profile_service_phases, service_phase_timings, PhaseTimings,
};
pub use report::{FigureTable, RunReport};
pub use scenarios::{scenario_tables, scenarios_smoke_table, ScenarioProfile};
pub use service::{service_run, service_table, ServiceSpec};
