//! Reusable Dijkstra scratch space: zero allocation per shortest-path run.
//!
//! Every substrate in the suite (oracle rows, hierarchy radii, cost
//! accounting, baselines) bottoms out in repeated Dijkstra runs over the
//! same graph. A [`DijkstraWorkspace`] owns the dist/parent/visited
//! buffers and the priority queue, so a run touches no allocator at all
//! once the workspace has grown to the graph's size:
//!
//! * **Generation-stamped clearing** — instead of re-filling the `dist`
//!   array with `INFINITY` (an O(n) write per call), every slot carries a
//!   generation stamp; a slot is live only if its stamp matches the
//!   current run's generation, so "clearing" is a single counter bump.
//! * **4-ary heap** — a flat implicit d-ary heap with branching factor 4.
//!   Shallower than a binary heap (fewer cache-missing levels on
//!   `sift_down`) and, crucially, keyed on the pair `(dist, node)` with
//!   ties broken by ascending node id — the exact total order the
//!   previous `BinaryHeap` implementation used, which makes settle order,
//!   relaxation order, parents, and distances bit-identical to the seed
//!   implementation (DESIGN.md §12/§13 determinism contract).
//!
//! The classic entry points [`crate::dijkstra()`],
//! [`crate::dijkstra_targeted()`] and [`crate::shortest_path_tree()`]
//! are now thin wrappers that run a fresh workspace once; hot callers
//! (the oracle backends, the hierarchy builders) hold a workspace and
//! reuse it across thousands of runs.

use crate::graph::Graph;
use crate::node::NodeId;

/// Sentinel in the packed parent array: "no parent recorded".
const NO_PARENT: u32 = u32::MAX;

/// A flat 4-ary min-heap over `(dist, node)` pairs.
///
/// Pops strictly in ascending `(dist, node)` lexicographic order; since
/// that is a total order over the pushed entries (distances are finite
/// and non-NaN by graph construction), the sequence of popped values is
/// independent of heap arity — the property the parity suite relies on.
#[derive(Clone, Debug, Default)]
struct QuadHeap {
    slots: Vec<(f64, u32)>,
}

impl QuadHeap {
    #[inline]
    fn less(a: (f64, u32), b: (f64, u32)) -> bool {
        // Finite, non-NaN distances: `<` and `==` implement a total order.
        a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    #[inline]
    fn clear(&mut self) {
        self.slots.clear();
    }

    /// Hole insertion: walk the hole up moving losing parents down, then
    /// write the element once (the same trick std's BinaryHeap uses —
    /// one move per level instead of a three-move swap).
    #[inline]
    fn push(&mut self, dist: f64, node: u32) {
        let elem = (dist, node);
        let mut hole = self.slots.len();
        self.slots.push(elem);
        while hole > 0 {
            let p = (hole - 1) / 4;
            if Self::less(elem, self.slots[p]) {
                self.slots[hole] = self.slots[p];
                hole = p;
            } else {
                break;
            }
        }
        self.slots[hole] = elem;
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, u32)> {
        let top = *self.slots.first()?;
        let elem = self.slots.pop().expect("non-empty");
        let len = self.slots.len();
        if len == 0 {
            return Some(top);
        }
        // Sift the former last element down from the root with a hole.
        let mut hole = 0usize;
        loop {
            let first = 4 * hole + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let last = (first + 4).min(len);
            for c in (first + 1)..last {
                if Self::less(self.slots[c], self.slots[best]) {
                    best = c;
                }
            }
            if Self::less(self.slots[best], elem) {
                self.slots[hole] = self.slots[best];
                hole = best;
            } else {
                break;
            }
        }
        self.slots[hole] = elem;
        Some(top)
    }
}

/// Reusable scratch buffers for Dijkstra runs on one or more graphs.
///
/// A workspace grows to the largest graph it has seen and never shrinks;
/// after the first run on a given size, [`DijkstraWorkspace::sssp`] and
/// [`DijkstraWorkspace::bounded_ball`] perform **zero heap allocations**.
/// Results are read back through [`DijkstraWorkspace::dist`] /
/// [`DijkstraWorkspace::parent`] / [`DijkstraWorkspace::settled`] and
/// stay valid until the next run on the same workspace.
///
/// Workspaces are plain owned values: keep one per thread (they are
/// `Send`), or a small pool behind a mutex as [`crate::LazyOracle`]
/// does. Reuse is purely a performance optimization — a reused
/// workspace returns bit-identical results to a fresh one, in any
/// interleaving (covered by the `csr_parity` test suite).
///
/// # Example
///
/// ```
/// use mot_net::{generators, DijkstraWorkspace, NodeId};
///
/// let g = generators::grid(4, 4)?; // unit 4×4 grid
/// let mut ws = DijkstraWorkspace::new();
///
/// // Full single-source shortest paths; dist = Manhattan distance here.
/// ws.sssp(&g, NodeId(0));
/// assert_eq!(ws.dist(NodeId(15)), 6.0);
/// assert_eq!(ws.parent(NodeId(0)), None); // the source has no parent
///
/// // The same workspace, reused: a radius-2 ball around the far corner.
/// // `bounded_ball` settles exactly the nodes within the radius and
/// // returns them sorted by (distance, node id). Copy the slice out if
/// // you need to query distances afterwards (it borrows the workspace).
/// let ball = ws.bounded_ball(&g, NodeId(15), 2.0).to_vec();
/// assert_eq!(ball.len(), 6); // self + 2 at distance 1 + 3 at distance 2
/// assert_eq!(ball[0], NodeId(15));
/// assert!(ball.iter().all(|&v| ws.dist(v) <= 2.0));
/// # Ok::<(), mot_net::NetError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct DijkstraWorkspace {
    /// Tentative distances; live only where `stamp[v] == generation`.
    dist: Vec<f64>,
    /// Packed parent pointers (`NO_PARENT` = none); same liveness rule.
    parent: Vec<u32>,
    /// Generation stamp per node — the "visited" bitmap without clears.
    stamp: Vec<u32>,
    /// Current run's generation; bumped (not cleared) at every start.
    generation: u32,
    heap: QuadHeap,
    /// Nodes settled by the last run, in settle order = ascending
    /// `(dist, node id)`.
    settled: Vec<NodeId>,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for graphs of up to `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::default();
        ws.reserve(n);
        ws
    }

    /// Grows the buffers to hold `n` nodes without running anything.
    pub fn reserve(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_PARENT);
            self.stamp.resize(n, 0);
        }
    }

    /// Number of nodes the buffers currently hold.
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    /// Starts a new run: bumps the generation (lazily invalidating every
    /// slot) and clears the heap and settled list.
    fn begin(&mut self, n: usize) {
        self.reserve(n);
        if self.generation == u32::MAX {
            // Stamp wrap-around: do the one real clear per 2^32 runs.
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
        self.settled.clear();
    }

    #[inline]
    fn live_dist(&self, v: usize) -> f64 {
        if self.stamp[v] == self.generation {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    /// The core loop shared by all run flavors.
    ///
    /// Settles nodes in ascending `(dist, node)` order; stops early when
    /// `target` settles or the next settle distance exceeds `radius`.
    fn run(&mut self, g: &Graph, source: NodeId, radius: f64, target: Option<NodeId>) {
        self.begin(g.node_count());
        let s = source.index();
        self.dist[s] = 0.0;
        self.parent[s] = NO_PARENT;
        self.stamp[s] = self.generation;
        self.heap.push(0.0, source.0);
        while let Some((d, u)) = self.heap.pop() {
            let ui = u as usize;
            if d > self.dist[ui] {
                continue; // stale entry superseded by a later relaxation
            }
            if d > radius {
                break; // every remaining node lies outside the ball
            }
            self.settled.push(NodeId(u));
            if target == Some(NodeId(u)) {
                return;
            }
            for e in g.neighbors(NodeId(u)) {
                let nd = d + e.weight;
                let vi = e.to.index();
                if nd < self.live_dist(vi) {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.stamp[vi] = self.generation;
                    self.heap.push(nd, e.to.0);
                }
            }
        }
    }

    /// Single-source shortest paths from `source` to every reachable
    /// node. Read results via [`DijkstraWorkspace::dist`] (and
    /// [`DijkstraWorkspace::parent`] for the shortest-path tree).
    pub fn sssp(&mut self, g: &Graph, source: NodeId) {
        self.run(g, source, f64::INFINITY, None);
    }

    /// Shortest-path distance from `source` to `target`, stopping as soon
    /// as the target settles (the workspace equivalent of
    /// [`crate::dijkstra_targeted()`]).
    pub fn sssp_targeted(&mut self, g: &Graph, source: NodeId, target: NodeId) -> f64 {
        self.run(g, source, f64::INFINITY, Some(target));
        self.live_dist(target.index())
    }

    /// Dijkstra truncated at `radius`: settles exactly the nodes `v` with
    /// `d(source, v) <= radius` and returns them sorted by
    /// `(distance, node id)` — the paper's neighborhood `N(v, r)`.
    ///
    /// After this call, [`DijkstraWorkspace::dist`] is exact for the
    /// returned nodes; nodes outside the ball may hold tentative
    /// (over-)estimates or `INFINITY`.
    pub fn bounded_ball(&mut self, g: &Graph, source: NodeId, radius: f64) -> &[NodeId] {
        self.run(g, source, radius, None);
        &self.settled
    }

    /// Distance computed by the last run (`INFINITY` if `v` was never
    /// reached). Exact for settled nodes; see
    /// [`DijkstraWorkspace::bounded_ball`] for the truncated-run caveat.
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        self.live_dist(v.index())
    }

    /// Parent of `v` in the shortest-path tree of the last run (`None`
    /// for the source and for unreached nodes).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let vi = v.index();
        if self.stamp[vi] == self.generation && self.parent[vi] != NO_PARENT {
            Some(NodeId(self.parent[vi]))
        } else {
            None
        }
    }

    /// Nodes settled by the last run, in settle order (ascending
    /// `(dist, node id)`). After a full [`DijkstraWorkspace::sssp`] on a
    /// connected graph this is every node.
    pub fn settled(&self) -> &[NodeId] {
        &self.settled
    }

    /// Copies the last run's distances for nodes `0..n` into `out`
    /// (clearing it first), with `INFINITY` for unreached nodes.
    pub fn fill_dist(&self, out: &mut Vec<f64>) {
        let n = self.capacity();
        out.clear();
        out.reserve(n);
        for v in 0..n {
            out.push(self.live_dist(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn quad_heap_pops_in_total_order() {
        let mut h = QuadHeap::default();
        let items = [
            (3.0, 7u32),
            (1.0, 9),
            (1.0, 2),
            (0.5, 4),
            (3.0, 1),
            (2.0, 5),
            (0.5, 4),
        ];
        for &(d, v) in &items {
            h.push(d, v);
        }
        let mut popped = Vec::new();
        while let Some(x) = h.pop() {
            popped.push(x);
        }
        let mut expect = items.to_vec();
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(popped, expect);
    }

    #[test]
    fn sssp_matches_free_function() {
        let g = generators::grid(6, 5).unwrap();
        let mut ws = DijkstraWorkspace::new();
        for src in g.nodes() {
            ws.sssp(&g, src);
            let reference = crate::dijkstra(&g, src);
            for v in g.nodes() {
                assert_eq!(ws.dist(v), reference[v.index()]);
            }
        }
    }

    #[test]
    fn bounded_ball_matches_filtered_sssp() {
        let g = generators::torus(5, 5).unwrap();
        let mut ws = DijkstraWorkspace::new();
        let mut full = DijkstraWorkspace::new();
        for src in g.nodes() {
            for r in [0.0, 1.0, 2.5, 100.0] {
                let ball: Vec<NodeId> = ws.bounded_ball(&g, src, r).to_vec();
                full.sssp(&g, src);
                let mut expect: Vec<(f64, NodeId)> = g
                    .nodes()
                    .filter(|&v| full.dist(v) <= r)
                    .map(|v| (full.dist(v), v))
                    .collect();
                expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                let expect: Vec<NodeId> = expect.into_iter().map(|(_, v)| v).collect();
                assert_eq!(ball, expect, "src={src:?} r={r}");
                for &v in &ball {
                    assert_eq!(ws.dist(v), full.dist(v));
                }
            }
        }
    }

    #[test]
    fn targeted_early_exit_matches_full() {
        let g = generators::random_geometric(60, 10.0, 3.0, 13).unwrap();
        let mut ws = DijkstraWorkspace::new();
        let reference = crate::dijkstra(&g, NodeId(0));
        for t in g.nodes() {
            assert_eq!(ws.sssp_targeted(&g, NodeId(0), t), reference[t.index()]);
        }
    }

    #[test]
    fn generation_stamps_isolate_consecutive_runs() {
        let g = generators::line(12).unwrap();
        let mut ws = DijkstraWorkspace::new();
        // A tiny ball first, then a full run: no stale state may leak.
        ws.bounded_ball(&g, NodeId(0), 1.0);
        ws.sssp(&g, NodeId(11));
        for v in g.nodes() {
            assert_eq!(ws.dist(v), (11 - v.index()) as f64);
        }
    }

    #[test]
    fn workspace_grows_across_graph_sizes() {
        let small = generators::grid(3, 3).unwrap();
        let big = generators::grid(8, 8).unwrap();
        let mut ws = DijkstraWorkspace::new();
        ws.sssp(&small, NodeId(0));
        assert_eq!(ws.capacity(), 9);
        ws.sssp(&big, NodeId(0));
        assert_eq!(ws.capacity(), 64);
        assert_eq!(ws.dist(NodeId(63)), 14.0);
        // And back down: capacity stays, results are for the small graph.
        ws.sssp(&small, NodeId(8));
        assert_eq!(ws.dist(NodeId(0)), 4.0);
        assert_eq!(ws.settled().len(), 9);
    }
}
