//! de Bruijn overlay graphs for intra-cluster routing (paper §5, §7).
//!
//! MOT's load-balanced variant hashes each internal node's detection list
//! across its cluster. Without structure, finding the node that holds a
//! given object would require each cluster member to keep `O(|X|)`
//! routing state; embedding a `⌈log |X|⌉`-dimensional de Bruijn graph in
//! the cluster lets every member keep a *constant-size* neighbor table
//! while any lookup routes in `≤ log |X|` overlay hops.
//!
//! * [`DeBruijnGraph`] — the abstract `d`-dimensional graph and its
//!   canonical shift-in shortest-path routing,
//! * [`Embedding`] — the mapping of `2^d` virtual labels onto an
//!   arbitrary-size physical cluster (labels `≥ |X|` are emulated by the
//!   member whose label differs only in the most significant bit),
//! * [`dynamic::DynamicCluster`] — §7's join/leave maintenance with
//!   `O(1)` amortized adaptability per event.
//!
//! # Example
//!
//! ```
//! use mot_debruijn::{DeBruijnGraph, Embedding};
//! use mot_net::NodeId;
//!
//! // An 11-sensor cluster hosts a 4-dimensional de Bruijn graph.
//! let cluster: Vec<NodeId> = (0..11).map(NodeId).collect();
//! let e = Embedding::new(cluster);
//! assert_eq!(e.graph().dim(), 4);
//!
//! // Any lookup routes in at most `dim` overlay hops...
//! let hosts = e.route_hosts(0, 13);
//! assert!(hosts.len() <= 5);
//!
//! // ...while every member keeps only a constant-size neighbor table.
//! for &member in e.members() {
//!     assert!(e.neighbor_table(member).len() <= 8);
//! }
//!
//! // Canonical shift-in routing is a shortest path.
//! let g = DeBruijnGraph::new(4);
//! assert_eq!(g.distance(0b1010, 0b0101), 1); // overlap of 3 bits
//! ```
//!
//! # Place in the workspace
//!
//! Depends only on `mot-net`; consumed by `mot-core`'s load-balanced
//! tracker. Implements §5 (load balancing) and §7 (dynamics); serves
//! Figs. 8–11 and the `state-size` table. See DESIGN.md §3 and §5.

#![warn(missing_docs)]

pub mod dynamic;
pub mod embedding;
pub mod graph;

pub use dynamic::{ChurnEvent, DynamicCluster};
pub use embedding::Embedding;
pub use graph::DeBruijnGraph;
