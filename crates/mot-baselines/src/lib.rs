//! Traffic-conscious tracking baselines MOT is evaluated against (§1.3, §8).
//!
//! All three prior algorithms maintain a *message-pruning tree*: a
//! spanning structure whose internal nodes keep detection sets; an object
//! move updates the path between the old and new proxies through their
//! lowest common ancestor, and a query climbs to the first ancestor that
//! knows the object and descends. They differ in how the tree is built —
//! and all of them consume *detection rates* (a priori traffic knowledge),
//! which MOT pointedly does not:
//!
//! * [`stun`] — Kung & Vlah's STUN via Drain-And-Balance: descending
//!   rate thresholds, high-rate components merged into balanced subtrees
//!   first (so chatty sensor pairs sit close in the tree).
//! * [`dat`] — Lin et al.'s Deviation-Avoidance Tree: tree distance to
//!   the sink equals graph distance; detection rates break ties.
//! * [`zdat`] — zone-based DAT: the deployment region is carved into
//!   recursive quadrants, zones are wired internally first, then zone
//!   heads are combined upward. The `shortcuts` variant additionally lets
//!   ancestors keep enough detail to route a located query straight to
//!   the proxy (Liu et al.'s message-pruning-tree-with-shortcuts role:
//!   the query-cost floor in Figs. 6/7).
//!
//! [`traffic::DetectionRates`] extracts the empirical per-edge crossing
//! frequencies from a workload; the experiment harness hands those to the
//! baselines (traffic-consciousness) while MOT never sees them.
//!
//! # Example
//!
//! ```
//! use mot_baselines::{build_stun, DetectionRates, TreeTracker};
//! use mot_core::{ObjectId, Tracker};
//! use mot_net::{generators, DenseOracle, NodeId};
//!
//! let g = generators::grid(6, 6)?;
//! let m = DenseOracle::build(&g)?;
//!
//! // STUN consumes detection rates (here: uniform — no prior traffic).
//! let rates = DetectionRates::uniform(&g);
//! let tree = build_stun(&g, &rates);
//! // Kung & Vlah route queries through the sink.
//! let mut stun = TreeTracker::new("STUN", tree, &m, false).with_root_queries();
//!
//! stun.publish(ObjectId(0), NodeId(14))?;
//! stun.move_object(ObjectId(0), NodeId(15))?;
//! assert_eq!(stun.query(NodeId(0), ObjectId(0))?.proxy, NodeId(15));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Place in the workspace
//!
//! Depends on `mot-net` and `mot-core` (for the `Tracker` trait);
//! `mot-sim` instantiates it next to MOT. Implements the §1.3/§8
//! comparison algorithms; serves every comparative figure (4–15).
//! See DESIGN.md §3 and §7 (baseline fidelity).

#![warn(missing_docs)]

pub mod dat;
pub mod stun;
pub mod traffic;
pub mod tree;
pub mod zdat;

pub use dat::build_dat;
pub use stun::build_stun;
pub use traffic::DetectionRates;
pub use tree::{TrackingTree, TreeTracker};
pub use zdat::{build_zdat, ZdatParams};
