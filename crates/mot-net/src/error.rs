//! Error type for the graph substrate.

use crate::node::NodeId;
use std::fmt;

/// Errors raised while constructing or querying sensor-network graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange {
        /// The out-of-range id.
        node: NodeId,
        /// The graph's node count.
        n: usize,
    },
    /// An edge weight was not strictly positive and finite.
    InvalidWeight {
        /// One endpoint of the offending edge.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// A self-loop was requested (the paper fixes `w(u,u) = 0`; explicit
    /// self-loop edges are rejected instead of stored).
    SelfLoop {
        /// The node the loop was requested on.
        node: NodeId,
    },
    /// The same undirected edge was inserted twice with different weights.
    DuplicateEdge {
        /// One endpoint of the duplicated edge.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A mutation or query addressed a node that is currently inactive
    /// (removed by [`crate::Graph::remove_node`] and not yet restored).
    NodeInactive {
        /// The inactive node.
        node: NodeId,
    },
    /// A restore addressed a node that is already active.
    NodeActive {
        /// The already-active node.
        node: NodeId,
    },
    /// The operation requires a connected graph.
    Disconnected,
    /// The operation requires geographic positions but the graph has none.
    MissingPositions,
    /// A generator was asked for a degenerate size.
    EmptyGraph,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            NetError::InvalidWeight { a, b, weight } => {
                write!(f, "edge ({a}, {b}) has invalid weight {weight}")
            }
            NetError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            NetError::DuplicateEdge { a, b } => {
                write!(f, "edge ({a}, {b}) inserted twice with different weights")
            }
            NetError::NodeInactive { node } => {
                write!(f, "node {node} is inactive (removed from the topology)")
            }
            NetError::NodeActive { node } => {
                write!(f, "node {node} is already active")
            }
            NetError::Disconnected => write!(f, "graph is not connected"),
            NetError::MissingPositions => {
                write!(f, "operation requires geographic positions")
            }
            NetError::EmptyGraph => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NetError::NodeOutOfRange {
            node: NodeId(7),
            n: 4,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("4"));
        let e = NetError::InvalidWeight {
            a: NodeId(0),
            b: NodeId(1),
            weight: -1.0,
        };
        assert!(e.to_string().contains("-1"));
    }
}
