//! Graph operations: subgraph extraction and path reconstruction.
//!
//! `subgraph` backs the §7 rebuild path (after enough churn the overlay
//! is rebuilt from the surviving sensors); `path_between` materializes
//! the physical hop sequence behind a logical overlay edge when a
//! simulation needs the actual relay nodes rather than just the cost.

use crate::builder::GraphBuilder;
use crate::dijkstra::shortest_path_tree;
use crate::error::NetError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// The induced subgraph on the nodes with `keep[i] == true`, re-indexed
/// densely. Returns the subgraph and the mapping from new ids to the
/// original ids.
///
/// Fails with [`NetError::Disconnected`] when the survivors do not form
/// a connected deployment (the §7 rebuild threshold is supposed to fire
/// before that happens; callers treat the error as "rebuild impossible,
/// redeploy").
pub fn subgraph(g: &Graph, keep: &[bool]) -> Result<(Graph, Vec<NodeId>)> {
    assert_eq!(
        keep.len(),
        g.node_count(),
        "keep mask must cover every node"
    );
    let old_ids: Vec<NodeId> = g.nodes().filter(|u| keep[u.index()]).collect();
    if old_ids.is_empty() {
        return Err(NetError::EmptyGraph);
    }
    let mut new_of = vec![usize::MAX; g.node_count()];
    for (new, old) in old_ids.iter().enumerate() {
        new_of[old.index()] = new;
    }
    let mut b = GraphBuilder::new(old_ids.len());
    for (a, c, w) in g.edges() {
        if keep[a.index()] && keep[c.index()] {
            b.add_edge(
                NodeId::from_index(new_of[a.index()]),
                NodeId::from_index(new_of[c.index()]),
                w,
            )?;
        }
    }
    let positions = g
        .positions()
        .map(|ps| old_ids.iter().map(|u| ps[u.index()]).collect::<Vec<_>>());
    let sub = match positions {
        Some(ps) => b.with_positions(ps).build()?,
        None => b.build()?,
    };
    Ok((sub, old_ids))
}

/// One shortest physical path between `u` and `v` (inclusive of both
/// endpoints).
pub fn path_between(g: &Graph, u: NodeId, v: NodeId) -> Vec<NodeId> {
    let tree = shortest_path_tree(g, v);
    tree.path_to_root(u)
}

/// The `k` nodes nearest to `u` (excluding `u`), by shortest-path
/// distance, ties broken by id.
pub fn k_nearest(g: &Graph, u: NodeId, k: usize) -> Vec<NodeId> {
    let dist = crate::dijkstra::dijkstra(g, u);
    let mut order: Vec<NodeId> = g.nodes().filter(|&v| v != u).collect();
    order.sort_by(|&a, &b| {
        dist[a.index()]
            .partial_cmp(&dist[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn subgraph_reindexes_and_keeps_weights() {
        let g = generators::grid(3, 3).unwrap();
        // drop the middle column: nodes 1, 4, 7 -> disconnected
        let mut keep = vec![true; 9];
        for i in [1, 4, 7] {
            keep[i] = false;
        }
        assert!(matches!(subgraph(&g, &keep), Err(NetError::Disconnected)));

        // drop one corner instead: still connected
        let mut keep = vec![true; 9];
        keep[8] = false;
        let (sub, mapping) = subgraph(&g, &keep).unwrap();
        assert_eq!(sub.node_count(), 8);
        assert!(!mapping.contains(&NodeId(8)));
        assert!(sub.is_connected());
        // edge (0,1) survives under new ids
        let a = mapping.iter().position(|&m| m == NodeId(0)).unwrap();
        let b = mapping.iter().position(|&m| m == NodeId(1)).unwrap();
        assert_eq!(
            sub.edge_weight(NodeId::from_index(a), NodeId::from_index(b)),
            Some(1.0)
        );
        // positions carried over
        assert_eq!(
            sub.position(NodeId::from_index(b)).unwrap(),
            g.position(NodeId(1)).unwrap()
        );
    }

    #[test]
    fn subgraph_of_everything_is_identity() {
        let g = generators::ring(10).unwrap();
        let (sub, mapping) = subgraph(&g, &[true; 10]).unwrap();
        assert_eq!(sub.node_count(), 10);
        assert_eq!(sub.edge_count(), 10);
        assert_eq!(mapping, g.nodes().collect::<Vec<_>>());
    }

    #[test]
    fn empty_keep_mask_is_an_error() {
        let g = generators::line(4).unwrap();
        assert!(matches!(
            subgraph(&g, &[false; 4]),
            Err(NetError::EmptyGraph)
        ));
    }

    #[test]
    fn path_between_endpoints_is_shortest() {
        let g = generators::grid(4, 4).unwrap();
        let p = path_between(&g, NodeId(0), NodeId(15));
        assert_eq!(*p.first().unwrap(), NodeId(0));
        assert_eq!(*p.last().unwrap(), NodeId(15));
        assert_eq!(p.len(), 7); // manhattan distance 6 => 7 nodes
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn k_nearest_orders_by_distance_then_id() {
        let g = generators::grid(3, 3).unwrap();
        let near = k_nearest(&g, NodeId(4), 4);
        assert_eq!(near, vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]);
        let all = k_nearest(&g, NodeId(0), 100);
        assert_eq!(all.len(), 8);
    }
}
