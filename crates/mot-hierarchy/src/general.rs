//! Overlay construction for general networks (§6).
//!
//! The paper uses an `(O(log n), O(log n))` sparse-partition scheme
//! [Awerbuch–Peleg; Jia et al.]: `h ≤ ⌈log D⌉ + 1` levels; at level `ℓ`
//! every node belongs to `O(log n)` labelled clusters of radius
//! `O(2^ℓ log n)`, and every `2^ℓ`-ball is contained inside some cluster,
//! so detection paths of nodes at distance `≤ 2^ℓ` meet at level `ℓ`
//! (Lemma 6.1).
//!
//! We realize the scheme with `O(log n)` independent *randomly shifted
//! padded decompositions* per level (random-permutation ball carving with
//! a random radius in `[R, 2R)`, `R = Θ(2^ℓ ln n)`), which pads any fixed
//! `2^ℓ`-ball with constant probability per trial; a deterministic repair
//! pass then adds an explicit ball-cluster for any node whose ball
//! escaped padding in every trial, making the containment property
//! unconditional. DESIGN.md §6 records this substitution.

use crate::config::OverlayConfig;
use crate::overlay::{Overlay, OverlayKind};
use crate::path::DetectionPath;
use mot_net::{DijkstraWorkspace, DistanceOracle, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Relative padding for bounded-ball radii (see `doubling.rs`): f32
/// quantization can round a distance just above the radius down onto
/// it, so the bounded run over-collects by half an f32 ulp and the
/// exact quantized predicate filters the candidates.
const BALL_PAD: f64 = 1.0 + 1e-6;

/// Quantizes through `f32` exactly like the oracle backends store
/// distances, so graph-side Dijkstra and oracle reads agree bit-for-bit.
#[inline]
fn q32(d: f64) -> f64 {
    d as f32 as f64
}

/// One carved partition of the node set.
struct Partition {
    /// cluster index of each node
    assignment: Vec<usize>,
    /// leader (carving center) of each cluster
    leaders: Vec<NodeId>,
}

/// Random-permutation ball carving via radius-bounded Dijkstra: each
/// center claims the unassigned nodes of its padded ball whose
/// quantized distance passes the `<= radius` predicate — the same set a
/// full oracle-row scan would claim, at the cost of the ball, not O(n).
fn carve_partition<R: Rng>(
    g: &Graph,
    ws: &mut DijkstraWorkspace,
    radius: f64,
    rng: &mut R,
) -> Partition {
    let n = g.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut assignment = vec![usize::MAX; n];
    let mut leaders = Vec::new();
    let mut ball: Vec<NodeId> = Vec::new();
    for &c in &order {
        if assignment[c] != usize::MAX {
            continue;
        }
        let center = NodeId::from_index(c);
        let cluster_idx = leaders.len();
        leaders.push(center);
        ball.clear();
        ball.extend_from_slice(ws.bounded_ball(g, center, radius * BALL_PAD));
        for &v in &ball {
            let slot = &mut assignment[v.index()];
            if *slot == usize::MAX && q32(ws.dist(v)) <= radius {
                *slot = cluster_idx;
            }
        }
    }
    Partition {
        assignment,
        leaders,
    }
}

/// True when the ball `B(u, r)` lies inside `u`'s cluster of `p`.
fn ball_padded(m: &dyn DistanceOracle, p: &Partition, u: NodeId, r: f64) -> bool {
    let cu = p.assignment[u.index()];
    m.ball(u, r)
        .into_iter()
        .all(|v| p.assignment[v.index()] == cu)
}

/// Builds the sparse-partition overlay for an arbitrary (connected)
/// network.
pub fn build_general(g: &Graph, m: &dyn DistanceOracle, cfg: &OverlayConfig, seed: u64) -> Overlay {
    assert_eq!(
        g.node_count(),
        m.node_count(),
        "graph and oracle disagree on n"
    );
    let n = g.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut ws = DijkstraWorkspace::with_capacity(n);

    // Root: a graph center (min eccentricity) — "the sink node is often
    // the root of HS" and a center minimizes worst-case publish cost.
    // Eccentricities come from one graph-side SSSP per node (quantized
    // through f32 like every oracle read), so no oracle row warm-up is
    // ever triggered.
    let ecc: Vec<f64> = (0..n)
        .map(|u| {
            ws.sssp(g, NodeId::from_index(u));
            (0..n)
                .map(|v| q32(ws.dist(NodeId::from_index(v))))
                .fold(0.0, f64::max)
        })
        .collect();
    let root = (0..n)
        .map(NodeId::from_index)
        .min_by(|&a, &b| {
            ecc[a.index()]
                .partial_cmp(&ecc[b.index()])
                .unwrap()
                .then(a.cmp(&b))
        })
        .expect("non-empty graph");

    let height = if m.diameter() <= 1.0 {
        1
    } else {
        (m.diameter().log2().ceil() as usize) + 1
    }
    .max(1);

    let log_n = (n as f64).log2().max(1.0);
    let trials = ((cfg.general_trials_per_log_n * log_n).ceil() as usize).max(1);

    // stations[u][ℓ] accumulated below.
    let mut stations: Vec<Vec<Vec<NodeId>>> = (0..n)
        .map(|u| {
            let mut s = vec![Vec::new(); height + 1];
            s[0] = vec![NodeId::from_index(u)];
            s[height] = vec![root];
            s
        })
        .collect();
    let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); height + 1];
    levels[0] = g.nodes().collect();
    levels[height] = vec![root];

    for level in 1..height {
        let r = (1u64 << level) as f64;
        let carve_radius = (cfg.general_radius_mult * r * (n as f64).ln()).max(2.0 * r);
        let mut leaders_this_level: Vec<NodeId> = Vec::new();
        let mut padded = vec![false; n];
        for _trial in 0..trials {
            let radius = rng.gen_range(carve_radius..2.0 * carve_radius);
            let p = carve_partition(g, &mut ws, radius, &mut rng);
            for u in 0..n {
                let uid = NodeId::from_index(u);
                let leader = p.leaders[p.assignment[u]];
                stations[u][level].push(leader);
                if !padded[u] && ball_padded(m, &p, uid, r) {
                    padded[u] = true;
                }
            }
            leaders_this_level.extend(p.leaders.iter().copied());
        }
        // Repair: any node whose 2^ℓ-ball was never padded gets a
        // dedicated ball-cluster led by itself, restoring Lemma 6.1
        // deterministically.
        for (u, &ok) in padded.iter().enumerate() {
            if ok {
                continue;
            }
            let uid = NodeId::from_index(u);
            leaders_this_level.push(uid);
            for v in m.ball(uid, r) {
                stations[v.index()][level].push(uid);
            }
        }
        // Visiting order: ascending node id (cluster labels in the paper;
        // ID order preserves the §3.1 race-free discipline).
        for s in stations.iter_mut() {
            s[level].sort();
            s[level].dedup();
        }
        leaders_this_level.sort();
        leaders_this_level.dedup();
        levels[level] = leaders_this_level;
    }

    let paths = stations
        .into_iter()
        .map(|s| DetectionPath { stations: s })
        .collect();
    Overlay::new(OverlayKind::General, levels, paths, cfg.sp_gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;
    use mot_net::DenseOracle;

    fn build(g: &Graph, seed: u64) -> (Overlay, DenseOracle) {
        let m = DenseOracle::build(g).unwrap();
        let o = build_general(g, &m, &OverlayConfig::practical(), seed);
        (o, m)
    }

    #[test]
    fn stations_are_well_formed() {
        let g = generators::grid(8, 8).unwrap();
        let (o, _) = build(&g, 3);
        for u in g.nodes() {
            assert_eq!(o.station(u, 0), &[u]);
            assert_eq!(o.station(u, o.height()), &[o.root()]);
            for l in 0..=o.height() {
                let s = o.station(u, l);
                assert!(!s.is_empty(), "node {u} level {l} empty station");
                assert!(s.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn membership_is_logarithmic() {
        let g = generators::grid(10, 10).unwrap();
        let (o, _) = build(&g, 5);
        let log_n = (g.node_count() as f64).log2();
        for u in g.nodes() {
            for l in 1..o.height() {
                let s = o.station(u, l).len();
                assert!(
                    s <= (4.0 * log_n) as usize + 2,
                    "node {u} belongs to {s} clusters at level {l}"
                );
            }
        }
    }

    #[test]
    fn meet_property_lemma_6_1() {
        // Nodes within 2^ℓ of each other share a cluster leader at level
        // ℓ (padding + repair make this unconditional).
        let g = generators::grid(8, 8).unwrap();
        let (o, m) = build(&g, 11);
        for u in g.nodes() {
            for v in g.nodes() {
                if u >= v {
                    continue;
                }
                let d = m.dist(u, v);
                let bound = ((d.log2().ceil() as i64).max(0) as usize).min(o.height());
                assert!(
                    o.meet_level(u, v) <= bound.max(1),
                    "meet({u},{v}) = {} > {} (d = {d})",
                    o.meet_level(u, v),
                    bound.max(1)
                );
            }
        }
    }

    #[test]
    fn works_on_rings_and_random_geometric() {
        for g in [
            generators::ring(48).unwrap(),
            generators::random_geometric(60, 8.0, 2.0, 2).unwrap(),
        ] {
            let (o, _) = build(&g, 9);
            assert!(o.height() >= 1);
            assert_eq!(o.station(o.root(), o.height()), &[o.root()]);
        }
    }

    #[test]
    fn root_is_a_graph_center() {
        let g = generators::line(9).unwrap();
        let (o, _) = build(&g, 1);
        assert_eq!(o.root(), NodeId(4)); // middle of the line
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let a = build_general(&g, &m, &OverlayConfig::practical(), 17);
        let b = build_general(&g, &m, &OverlayConfig::practical(), 17);
        for u in g.nodes() {
            for l in 0..=a.height() {
                assert_eq!(a.station(u, l), b.station(u, l));
            }
        }
    }
}
