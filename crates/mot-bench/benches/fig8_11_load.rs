//! Bench for Figures 8–11: load snapshots of MOT+LB vs STUN / Z-DAT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_baselines::DetectionRates;
use mot_bench::{load_figure, Profile};
use mot_sim::{run_publish, Algo, LoadStats, TestBed, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut p = Profile::quick(50);
    p.grids = vec![(16, 16)];
    for (vs, after) in [
        (Algo::Stun, 0),
        (Algo::Stun, 10),
        (Algo::Zdat, 0),
        (Algo::Zdat, 10),
    ] {
        eprintln!("{}", load_figure(&p, vs, after).expect("figure").render());
    }

    let bed = TestBed::grid(16, 16, 1).unwrap();
    let w = WorkloadSpec::new(50, 1, 2).generate(&bed.graph);
    let rates = DetectionRates::uniform(&bed.graph);

    let mut group = c.benchmark_group("publish_and_load_snapshot_16x16");
    group.sample_size(20);
    for algo in [Algo::MotLb, Algo::Stun, Algo::Zdat] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    let mut t = bed.make_tracker(algo, &rates).unwrap();
                    run_publish(t.as_mut(), &w).unwrap();
                    LoadStats::from_loads(&t.node_loads())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
