//! Byte-budgeted on-demand distance backend: the default at scale.
//!
//! [`DenseOracle`](super::DenseOracle) front-loads an O(n²) all-pairs
//! solve; [`LazyOracle`](super::LazyOracle) computes a *full* row on
//! every first touch of a source, which still makes a transient query
//! (an object position billed once during a climb) cost a whole
//! Dijkstra. [`CachedOracle`] finishes the "compute only what the query
//! touches" discipline:
//!
//! * **`dist(u, v)` misses run a targeted Dijkstra** that stops the
//!   moment `v` settles — a few dozen settled nodes for the locally
//!   bounded pairs the trackers bill, never O(n) work.
//! * **`ball(u, r)` misses run a radius-bounded Dijkstra** (the same
//!   padded-ball + f32-filter discipline as the hierarchy builder), so
//!   neighborhood queries cost the neighborhood, not a row.
//! * **Hot sources get promoted to resident rows.** Every miss charges
//!   its settled-node count against the source; once a source has paid
//!   for a full SSSP's worth of work (≥ n settles), the next miss
//!   computes the complete row and parks it in a byte-budgeted LRU
//!   cache. Hierarchy stations and other structurally hot nodes promote
//!   almost immediately; transient object positions never do.
//!
//! The LRU is bounded by **bytes**, not row count
//! ([`CachedOracle::with_byte_budget`]): eviction walks
//! least-recently-touched rows until the footprint fits, always
//! retaining at least one row so a just-promoted source can be served.
//! [`CachedOracle::ledger`] exposes the hit/miss/eviction/promotion
//! counters; for a single-threaded query stream the ledger is fully
//! deterministic (same stream + same budget → same counters), which the
//! `cached_churn` test suite pins.
//!
//! Every distance this backend returns is the f32 quantization of the
//! exact Dijkstra distance from source `u` — precisely the bits the
//! dense matrix stores — so `dist`/`ball`/cost accounts are
//! bit-identical to every other backend (see `oracle_differential` and
//! the cross-crate `backend_parity`/`golden_costs` suites). Only
//! `diameter` is the documented double-sweep estimate, identical to
//! [`LazyOracle`](super::LazyOracle)'s.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::{CacheLedger, DistRow, DistanceOracle};
use crate::delta::{ChurnEvent, TopologyDelta};
use crate::error::NetError;
use crate::graph::{Edge, Graph};
use crate::node::NodeId;
use crate::workspace::DijkstraWorkspace;
use crate::Result;

/// Relative padding for bounded-ball radii: f32 quantization can round
/// a distance just above `r` down onto it, so the bounded run must
/// over-collect by at least half an f32 ulp (2⁻²⁵ relative) before the
/// exact quantized predicate filters the candidates. Identical to the
/// hierarchy builder's pad (DESIGN.md §13/§14).
const BALL_PAD: f64 = 1.0 + 1e-6;

/// Max pooled Dijkstra workspaces (one per plausibly concurrent miss).
const POOL: usize = 8;

/// Quantizes through `f32` exactly like every backend stores distances.
#[inline]
fn q32(d: f64) -> f64 {
    d as f32 as f64
}

/// Mutable cache state, all behind one lock so the ledger advances in
/// a single total order (what makes single-threaded runs replayable).
struct State {
    /// Source id → (resident row, last-touch stamp).
    rows: HashMap<u32, (Arc<DistRow>, u64)>,
    /// Sum of [`DistRow::bytes`] over resident rows.
    bytes: usize,
    /// Monotonic LRU clock; advanced on every row touch.
    clock: u64,
    /// Settled-node work accumulated by misses, per source; cleared on
    /// promotion so an evicted row has to earn its way back in.
    work: HashMap<u32, u64>,
    ledger: CacheLedger,
}

/// Distance oracle that answers misses with bounded solves and caches
/// full rows only for sources that earn them.
///
/// # Example
///
/// ```
/// use mot_net::{generators, CachedOracle, DistanceOracle, NodeId};
///
/// let g = generators::grid(4, 4)?;
/// let m = CachedOracle::new(&g)?; // O(1) construction
/// assert_eq!(m.dist(NodeId(0), NodeId(15)), 6.0); // targeted solve
/// let ledger = m.ledger();
/// assert_eq!((ledger.hits, ledger.misses), (0, 1));
/// assert_eq!(m.memory_bytes(), 0); // no row was worth caching yet
/// # Ok::<(), mot_net::NetError>(())
/// ```
pub struct CachedOracle {
    g: Graph,
    state: Mutex<State>,
    /// Pool of Dijkstra workspaces reused across misses, so a solve
    /// allocates nothing once the pool has warmed up.
    workspaces: Mutex<Vec<DijkstraWorkspace>>,
    byte_budget: usize,
    diameter: OnceLock<f64>,
}

impl std::fmt::Debug for CachedOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ledger = self.ledger();
        f.debug_struct("CachedOracle")
            .field("node_count", &self.g.node_count())
            .field("byte_budget", &self.byte_budget)
            .field("ledger", &ledger)
            .finish()
    }
}

/// What a miss should do, decided under the state lock.
enum Plan {
    Hit(Arc<DistRow>),
    Promote,
    Solve,
}

/// What [`CachedOracle::apply_delta`] did to the resident rows while
/// absorbing one [`TopologyDelta`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaInvalidation {
    /// Rows kept resident after an in-place patch (the event provably
    /// changed no distance the row reports, except entries for the
    /// departed node itself).
    pub rows_patched: u64,
    /// Rows dropped because a solve that produced them may have routed
    /// through the mutated region.
    pub rows_evicted: u64,
    /// Events absorbed.
    pub events: u64,
}

/// Conservative safety margin for quantized path comparisons: resident
/// rows hold f32-quantized distances (relative error ≤ 2⁻²⁴ per value),
/// so a strict inequality must hold by more than a couple of ulps
/// before it proves anything about the exact distances. 1e-6 relative
/// is ~8 f32 ulps — far above the quantization noise, far below any
/// meaningful path-length difference.
const Q_MARGIN: f64 = 1e-6;

impl CachedOracle {
    /// Heap bytes of one resident [`DistRow`] for an `n`-node graph.
    fn row_bytes(n: usize) -> usize {
        n * (std::mem::size_of::<f32>() + std::mem::size_of::<(f32, u32)>())
    }

    /// Default byte budget for an `n`-node graph: room for the same
    /// working set [`LazyOracle`](super::LazyOracle) would keep
    /// (`max(n/16, 128)` rows), capped at 64 MiB — the dense matrix's
    /// footprint at [`super::OracleKind::DENSE_NODE_LIMIT`] — and never
    /// below a single row.
    pub fn default_byte_budget(n: usize) -> usize {
        const CAP: usize = 64 << 20;
        let row = Self::row_bytes(n.max(1));
        let rows = (n / 16).max(128);
        rows.saturating_mul(row).min(CAP).max(row)
    }

    /// Cumulative settled-node work after which a source's next miss
    /// computes and caches its full row: one SSSP's worth (`n`). Below
    /// the threshold misses stay bounded; past it, caching the row is
    /// cheaper than continuing to re-solve.
    pub fn promote_threshold(n: usize) -> u64 {
        n as u64
    }

    /// Validates the graph (connected, non-empty) and creates an oracle
    /// with [`CachedOracle::default_byte_budget`]. No distances are
    /// computed yet.
    pub fn new(g: &Graph) -> Result<Self> {
        Self::with_byte_budget(g, Self::default_byte_budget(g.node_count()))
    }

    /// As [`CachedOracle::new`] with an explicit LRU byte budget. The
    /// budget is honored whenever it admits at least one row; one row
    /// is always retained so promotion can never thrash to empty.
    pub fn with_byte_budget(g: &Graph, bytes: usize) -> Result<Self> {
        if g.node_count() == 0 {
            return Err(NetError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(NetError::Disconnected);
        }
        Ok(CachedOracle {
            g: g.clone(),
            state: Mutex::new(State {
                rows: HashMap::new(),
                bytes: 0,
                clock: 0,
                work: HashMap::new(),
                ledger: CacheLedger::default(),
            }),
            workspaces: Mutex::new(Vec::new()),
            byte_budget: bytes,
            diameter: OnceLock::new(),
        })
    }

    /// The configured LRU byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// The underlying graph (on-demand backends own a copy).
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Snapshot of the hit/miss/eviction/promotion counters and the
    /// resident-row footprint. Deterministic for a single-threaded
    /// query stream.
    pub fn ledger(&self) -> CacheLedger {
        let s = self.state.lock().expect("cache state poisoned");
        let mut ledger = s.ledger;
        ledger.resident_rows = s.rows.len();
        ledger.resident_bytes = s.bytes;
        ledger
    }

    fn take_ws(&self) -> DijkstraWorkspace {
        let mut pool = self.workspaces.lock().expect("workspace pool poisoned");
        pool.pop().unwrap_or_default()
    }

    fn put_ws(&self, ws: DijkstraWorkspace) {
        let mut pool = self.workspaces.lock().expect("workspace pool poisoned");
        if pool.len() < POOL {
            pool.push(ws);
        }
    }

    /// Ledger-advancing lookup: a resident row is a hit; otherwise the
    /// miss is counted and the caller learns whether `u` has crossed
    /// the promotion threshold.
    fn plan(&self, u: NodeId) -> Plan {
        let mut s = self.state.lock().expect("cache state poisoned");
        let State {
            rows,
            clock,
            work,
            ledger,
            ..
        } = &mut *s;
        if let Some((row, stamp)) = rows.get_mut(&u.0) {
            *clock += 1;
            *stamp = *clock;
            ledger.hits += 1;
            return Plan::Hit(Arc::clone(row));
        }
        ledger.misses += 1;
        if work.get(&u.0).copied().unwrap_or(0) >= Self::promote_threshold(self.g.node_count()) {
            Plan::Promote
        } else {
            Plan::Solve
        }
    }

    /// Charges a bounded solve's settled-node count against `u`.
    fn charge(&self, u: NodeId, settled: usize) {
        let mut s = self.state.lock().expect("cache state poisoned");
        *s.work.entry(u.0).or_insert(0) += settled as u64;
    }

    /// Computes `u`'s full row, inserts it into the LRU (first writer
    /// wins under a race — rows are deterministic, so both are
    /// identical), and evicts least-recently-touched rows until the
    /// byte budget holds again.
    fn promote(&self, u: NodeId) -> Arc<DistRow> {
        let mut ws = self.take_ws();
        ws.sssp(&self.g, u);
        let row = Arc::new(DistRow::from_workspace(&ws, self.g.node_count()));
        self.put_ws(ws);
        let mut s = self.state.lock().expect("cache state poisoned");
        s.ledger.promotions += 1;
        s.work.remove(&u.0);
        let State {
            rows,
            bytes,
            clock,
            ledger,
            ..
        } = &mut *s;
        *clock += 1;
        let entry = rows.entry(u.0).or_insert_with(|| {
            *bytes += row.bytes();
            (Arc::clone(&row), *clock)
        });
        entry.1 = *clock;
        let out = Arc::clone(&entry.0);
        while *bytes > self.byte_budget && rows.len() > 1 {
            // The just-touched row carries the maximum stamp, so the
            // minimum is always some other (evictable) row.
            let victim = rows
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k)
                .expect("non-empty row cache");
            if let Some((gone, _)) = rows.remove(&victim) {
                *bytes -= gone.bytes();
                ledger.evictions += 1;
            }
        }
        out
    }

    /// Bounded-ball miss: padded bounded Dijkstra, exact f32 filter,
    /// re-sorted by `(f32 distance, id)` — the dense row's ball order.
    /// (The bounded run settles by *exact* distance; two distinct exact
    /// distances can quantize onto the same f32, so the re-sort is what
    /// makes the order bit-identical to a row scan.)
    fn solve_ball(&self, u: NodeId, r: f64) -> Vec<(f32, u32)> {
        let mut ws = self.take_ws();
        let padded = if r > 0.0 { r * BALL_PAD } else { r };
        ws.bounded_ball(&self.g, u, padded);
        let mut out: Vec<(f32, u32)> = ws
            .settled()
            .iter()
            .filter_map(|&v| {
                let d = ws.dist(v) as f32;
                ((d as f64) <= r).then_some((d, v.0))
            })
            .collect();
        let settled = ws.settled().len();
        self.put_ws(ws);
        self.charge(u, settled);
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Absorbs a topology delta: mutates the owned graph copy and
    /// invalidates exactly the resident rows the mutation could have
    /// stale-ed, keeping the rest (DESIGN.md §17).
    ///
    /// * **Leave(u)** — a row for source `s` survives (patched: its `u`
    ///   entry becomes `+∞`) iff for every former neighbor `w` of `u`
    ///   the row proves `d(s,w) < d(s,u) + w(u,w)` by a safe margin: no
    ///   shortest path from `s` enters and leaves `u`, so deleting `u`
    ///   changes no other distance the row stores. Rows that cannot
    ///   prove it — and the row for `u` itself — are evicted.
    /// * **Join(u)** — every resident row is evicted. A join changes
    ///   *every* row at slot `u` (from `+∞` to finite), and recomputing
    ///   that entry from already-quantized f32 neighbor distances would
    ///   double-round: the patched bits could disagree with what a
    ///   fresh Dijkstra stores. Bit-identity to a rebuilt oracle is the
    ///   contract, so joins fall back to re-solving on demand.
    ///
    /// Promotion work credits and the cached diameter estimate are
    /// reset (both were measured against the old topology). The dense
    /// backend has no incremental path at all: it stays the
    /// rebuild-only verifier the differential suites compare against.
    ///
    /// Requires exclusive access (`&mut self`) — concurrent queries
    /// observe either the old or the new topology, never a mix.
    pub fn apply_delta(&mut self, delta: &TopologyDelta) -> Result<DeltaInvalidation> {
        let mut report = DeltaInvalidation::default();
        for ev in &delta.events {
            match ev {
                ChurnEvent::Leave(u) => {
                    let star = self.g.remove_node(*u)?;
                    self.invalidate_leave(*u, &star, &mut report);
                }
                ChurnEvent::Join { node, edges } => {
                    self.g.restore_node(*node, edges)?;
                    self.invalidate_join(&mut report);
                }
            }
            report.events += 1;
        }
        let s = self.state.get_mut().expect("cache state poisoned");
        // Work credits were earned against the old topology; promotion
        // decisions must not carry them across the mutation.
        s.work.clear();
        self.diameter = OnceLock::new();
        Ok(report)
    }

    /// Leave-event invalidation: patch provably-safe rows, evict the
    /// rest. `star` is the removed node's pre-removal edge star.
    fn invalidate_leave(&mut self, u: NodeId, star: &[Edge], report: &mut DeltaInvalidation) {
        let s = self.state.get_mut().expect("cache state poisoned");
        let mut evict: Vec<u32> = Vec::new();
        let mut patch: Vec<u32> = Vec::new();
        for (&src, (row, _)) in s.rows.iter() {
            if src == u.0 {
                evict.push(src);
                continue;
            }
            let vals = row.values();
            let du = vals[u.index()] as f64;
            // Any shortest path from `src` through `u` extends `src→u`
            // by one incident edge; if every such extension is beaten
            // outright, no stored distance routed through `u`.
            let safe = star.iter().all(|e| {
                let dw = vals[e.to.index()] as f64;
                dw < (du + e.weight) * (1.0 - Q_MARGIN)
            });
            if safe {
                patch.push(src);
            } else {
                evict.push(src);
            }
        }
        for src in evict {
            if let Some((gone, _)) = s.rows.remove(&src) {
                s.bytes -= gone.bytes();
                s.ledger.evictions += 1;
                report.rows_evicted += 1;
            }
        }
        for src in patch {
            if let Some((row, _)) = s.rows.get_mut(&src) {
                let mut vals = row.values().to_vec();
                vals[u.index()] = f32::INFINITY;
                *row = Arc::new(DistRow::from_f32(vals));
                report.rows_patched += 1;
            }
        }
    }

    /// Join-event invalidation: drop every resident row (see
    /// [`CachedOracle::apply_delta`] for why joins cannot patch).
    fn invalidate_join(&mut self, report: &mut DeltaInvalidation) {
        let s = self.state.get_mut().expect("cache state poisoned");
        let dropped = s.rows.len() as u64;
        s.ledger.evictions += dropped;
        report.rows_evicted += dropped;
        s.rows.clear();
        s.bytes = 0;
    }

    /// Double-sweep diameter estimate, computed exactly like
    /// [`LazyOracle`](super::LazyOracle)'s (same f32 quantization, same
    /// farthest-node tie-break) so the two backends report identical
    /// estimates. Runs through pooled workspaces without caching rows.
    fn double_sweep(&self) -> f64 {
        let n = self.g.node_count();
        // First active node is NodeId(0) on a never-mutated graph, so
        // the estimate stays bit-identical to LazyOracle's there; on a
        // churned graph the sweep ranges over the active component.
        let start = self.g.active_nodes().next().unwrap_or(NodeId(0));
        let mut ws = self.take_ws();
        ws.sssp(&self.g, start);
        let mut far = (0.0f32, start.0);
        for v in 0..n {
            let d = ws.dist(NodeId::from_index(v)) as f32;
            if d.is_finite() && (d > far.0 || (d == far.0 && v as u32 > far.1)) {
                far = (d, v as u32);
            }
        }
        ws.sssp(&self.g, NodeId(far.1));
        let mut max = 0.0f32;
        for v in 0..n {
            let d = ws.dist(NodeId::from_index(v)) as f32;
            if d.is_finite() {
                max = max.max(d);
            }
        }
        self.put_ws(ws);
        max as f64
    }
}

impl DistanceOracle for CachedOracle {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        match self.plan(u) {
            Plan::Hit(row) => row.dist(v),
            Plan::Promote => self.promote(u).dist(v),
            Plan::Solve => {
                let mut ws = self.take_ws();
                let d = ws.sssp_targeted(&self.g, u, v);
                let settled = ws.settled().len();
                self.put_ws(ws);
                self.charge(u, settled);
                q32(d)
            }
        }
    }

    fn diameter(&self) -> f64 {
        *self.diameter.get_or_init(|| self.double_sweep())
    }

    fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        match self.plan(u) {
            Plan::Hit(row) => row.ball(r),
            Plan::Promote => self.promote(u).ball(r),
            Plan::Solve => self
                .solve_ball(u, r)
                .into_iter()
                .map(|(_, i)| NodeId(i))
                .collect(),
        }
    }

    fn ball_size(&self, u: NodeId, r: f64) -> usize {
        match self.plan(u) {
            Plan::Hit(row) => row.ball_size(r),
            Plan::Promote => self.promote(u).ball_size(r),
            Plan::Solve => self.solve_ball(u, r).len(),
        }
    }

    fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        out.clear();
        match self.plan(u) {
            Plan::Hit(row) => row.ball_into(r, out),
            Plan::Promote => self.promote(u).ball_into(r, out),
            Plan::Solve => out.extend(self.solve_ball(u, r).into_iter().map(|(_, i)| NodeId(i))),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.state.lock().expect("cache state poisoned").bytes
    }

    fn cache_stats(&self) -> Option<CacheLedger> {
        Some(self.ledger())
    }
}

#[cfg(test)]
mod tests {
    use super::super::DenseOracle;
    use super::*;
    use crate::generators;

    #[test]
    fn dist_matches_dense() {
        let g = generators::random_geometric(50, 8.0, 2.5, 17).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let cached = CachedOracle::new(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(cached.dist(u, v), dense.dist(u, v), "({u},{v})");
            }
        }
        let ledger = cached.ledger();
        assert!(ledger.promotions > 0, "50 queries/source must promote");
        assert!(ledger.hits > 0 && ledger.misses > 0);
    }

    #[test]
    fn ball_matches_dense_exactly() {
        let g = generators::grid(7, 6).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let cached = CachedOracle::new(&g).unwrap();
        for u in g.nodes() {
            for r in [-1.0, 0.0, 1.0, 2.0, 3.5, 20.0] {
                assert_eq!(cached.ball(u, r), dense.ball(u, r), "u = {u}, r = {r}");
                assert_eq!(
                    cached.ball_size(u, r),
                    dense.ball_size(u, r),
                    "u = {u}, r = {r}"
                );
            }
        }
    }

    #[test]
    fn ball_order_matches_dense_on_weighted_graphs() {
        // Weighted topologies are where exact-f64 settle order and
        // f32-quantized row order can disagree on ties.
        for seed in 0..6 {
            let g = generators::random_geometric(60, 9.0, 2.5, seed).unwrap();
            let dense = DenseOracle::build(&g).unwrap();
            let cached = CachedOracle::new(&g).unwrap();
            let d = dense.diameter();
            for u in g.nodes().step_by(3) {
                for r in [1.0, 2.5, d / 2.0, d] {
                    assert_eq!(
                        cached.ball(u, r),
                        dense.ball(u, r),
                        "seed {seed} u {u} r {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn transient_sources_stay_row_free() {
        let g = generators::grid(10, 10).unwrap();
        let cached = CachedOracle::new(&g).unwrap();
        // One locally-bounded query per source: nobody earns a row.
        for u in g.nodes() {
            let v = NodeId::from_index((u.index() + 1) % 100);
            cached.dist(u, v);
        }
        let ledger = cached.ledger();
        assert_eq!(ledger.promotions, 0);
        assert_eq!(ledger.resident_rows, 0);
        assert_eq!(cached.memory_bytes(), 0);
    }

    #[test]
    fn hot_sources_promote_and_then_hit() {
        let g = generators::grid(10, 10).unwrap();
        let cached = CachedOracle::new(&g).unwrap();
        // Far targeted solves settle ~n nodes each: the second miss
        // crosses the threshold and promotes.
        cached.dist(NodeId(0), NodeId(99));
        cached.dist(NodeId(0), NodeId(98));
        let ledger = cached.ledger();
        assert_eq!(ledger.promotions, 1);
        assert_eq!(ledger.resident_rows, 1);
        cached.dist(NodeId(0), NodeId(55));
        assert_eq!(cached.ledger().hits, 1, "resident row must serve hits");
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let g = generators::grid(10, 10).unwrap();
        let budget = 2 * CachedOracle::row_bytes(100);
        let cached = CachedOracle::with_byte_budget(&g, budget).unwrap();
        for u in [0u32, 13, 37, 55, 99] {
            // Two far solves promote each source in turn.
            cached.dist(NodeId(u), NodeId(99 - u));
            cached.dist(NodeId(u), NodeId((u + 50) % 100));
            cached.dist(NodeId(u), NodeId((u + 1) % 100));
        }
        let ledger = cached.ledger();
        assert!(ledger.evictions > 0, "{ledger:?}");
        assert!(ledger.resident_rows <= 2, "{ledger:?}");
        assert!(cached.memory_bytes() <= budget, "{ledger:?}");
        // Evicted rows recompute transparently and exactly.
        assert_eq!(cached.dist(NodeId(0), NodeId(99)), 18.0);
    }

    #[test]
    fn diameter_matches_lazy_estimate() {
        for seed in 0..6 {
            let g = generators::random_geometric(40, 8.0, 2.5, seed).unwrap();
            let exact = DenseOracle::build(&g).unwrap().diameter();
            let lazy = super::super::LazyOracle::new(&g).unwrap().diameter();
            let est = CachedOracle::new(&g).unwrap().diameter();
            assert_eq!(est, lazy, "seed {seed}: cached and lazy sweeps differ");
            assert!(
                est <= exact + 1e-6 && est >= exact / 2.0 - 1e-6,
                "seed {seed}: est {est} vs exact {exact}"
            );
        }
        let g = generators::grid(8, 8).unwrap();
        assert_eq!(CachedOracle::new(&g).unwrap().diameter(), 14.0);
    }

    #[test]
    fn concurrent_queries_agree() {
        let g = generators::grid(12, 12).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let cached = CachedOracle::with_byte_budget(&g, CachedOracle::row_bytes(144) * 3).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let (cached, dense, g) = (&cached, &dense, &g);
                s.spawn(move || {
                    for u in g.nodes().skip(t).step_by(4) {
                        for v in g.nodes().step_by(7) {
                            assert_eq!(cached.dist(u, v), dense.dist(u, v));
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn rejects_bad_graphs() {
        let mut b = crate::builder::GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(matches!(CachedOracle::new(&g), Err(NetError::Disconnected)));
    }

    #[test]
    fn default_budget_is_bounded_and_row_sized() {
        assert!(CachedOracle::default_byte_budget(4096) <= 64 << 20);
        assert!(CachedOracle::default_byte_budget(1 << 20) >= CachedOracle::row_bytes(1 << 20));
        assert!(CachedOracle::default_byte_budget(1) >= CachedOracle::row_bytes(1));
    }
}
