//! Detection paths (Definition 1).
//!
//! A detection message from a bottom node `u` climbs the overlay visiting,
//! at every level, the members of `u`'s parent set *in increasing ID
//! order* (the visiting discipline of §3.1 that prevents the Fig. 3 race).
//! Connecting consecutive visits by shortest physical paths yields
//! `DPath(u)`.

use mot_net::{DistanceOracle, NodeId};

/// The per-level stations of one bottom node's detection path.
#[derive(Clone, Debug)]
pub struct DetectionPath {
    /// `stations[ℓ]` = level-ℓ parent set, sorted by node id (the visiting
    /// order). `stations[0] = [u]`; `stations[h] = [root]`.
    pub stations: Vec<Vec<NodeId>>,
}

impl DetectionPath {
    /// Top level index `h`.
    pub fn height(&self) -> usize {
        self.stations.len() - 1
    }

    /// The station visited at `level`.
    pub fn station(&self, level: usize) -> &[NodeId] {
        &self.stations[level]
    }

    /// The bottom node this path belongs to.
    pub fn origin(&self) -> NodeId {
        self.stations[0][0]
    }

    /// Flattened visiting sequence from the origin up to and including
    /// `up_to_level`.
    pub fn walk(&self, up_to_level: usize) -> Vec<NodeId> {
        self.stations[..=up_to_level.min(self.height())]
            .iter()
            .flatten()
            .copied()
            .collect()
    }

    /// `length(DPath_j(u))` — total shortest-path distance of the visiting
    /// walk up to level `j` (Lemma 2.2's quantity).
    pub fn length_up_to(&self, level: usize, m: &dyn DistanceOracle) -> f64 {
        m.walk_length(&self.walk(level))
    }

    /// Lowest level at which this path and `other` share a station member
    /// (guaranteed to exist: both top stations are the root).
    pub fn meet_level(&self, other: &DetectionPath) -> usize {
        debug_assert_eq!(self.height(), other.height());
        for level in 0..=self.height() {
            let a = self.station(level);
            let b = other.station(level);
            // stations are sorted: linear merge intersection
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return level,
                }
            }
        }
        unreachable!("paths always share the root station")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;
    use mot_net::DenseOracle;

    fn path(stations: Vec<Vec<u32>>) -> DetectionPath {
        DetectionPath {
            stations: stations
                .into_iter()
                .map(|s| s.into_iter().map(NodeId).collect())
                .collect(),
        }
    }

    #[test]
    fn walk_flattens_in_level_order() {
        let p = path(vec![vec![3], vec![1, 5], vec![9]]);
        assert_eq!(p.origin(), NodeId(3));
        assert_eq!(p.height(), 2);
        assert_eq!(p.walk(2), vec![NodeId(3), NodeId(1), NodeId(5), NodeId(9)]);
        assert_eq!(p.walk(0), vec![NodeId(3)]);
        // clamped above height
        assert_eq!(p.walk(99).len(), 4);
    }

    #[test]
    fn meet_level_finds_lowest_shared_station() {
        let a = path(vec![vec![0], vec![2, 4], vec![9]]);
        let b = path(vec![vec![1], vec![4, 6], vec![9]]);
        assert_eq!(a.meet_level(&b), 1);
        let c = path(vec![vec![1], vec![6, 7], vec![9]]);
        assert_eq!(a.meet_level(&c), 2);
        assert_eq!(a.meet_level(&a), 0);
    }

    #[test]
    fn length_accumulates_walk_distance() {
        let g = generators::line(10).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let p = path(vec![vec![0], vec![2], vec![6]]);
        assert_eq!(p.length_up_to(0, &m), 0.0);
        assert_eq!(p.length_up_to(1, &m), 2.0);
        assert_eq!(p.length_up_to(2, &m), 6.0);
    }
}
