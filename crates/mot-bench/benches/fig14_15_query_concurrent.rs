//! Bench for Figures 14 & 15: queries overlapping concurrent maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_baselines::DetectionRates;
use mot_bench::{query_figure, Profile};
use mot_sim::{run_publish, Algo, ConcurrentConfig, ConcurrentEngine, TestBed, WorkloadSpec};

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        query_figure(&Profile::quick(20), true)
            .expect("figure")
            .render()
    );

    let bed = TestBed::grid(12, 12, 1).unwrap();
    let w = WorkloadSpec::new(8, 80, 2).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let cfg = ConcurrentConfig {
        max_inflight_per_object: 10,
        queries_per_batch: 2,
        seed: 5,
    };

    let mut group = c.benchmark_group("query_overlapping_concurrent_12x12");
    group.sample_size(20);
    for algo in Algo::paper_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    let mut t = bed.make_tracker(algo, &rates).unwrap();
                    run_publish(t.as_mut(), &w).unwrap();
                    let out = ConcurrentEngine::run(t.as_mut(), &w, &bed.oracle, &cfg).unwrap();
                    assert_eq!(out.queries_correct, out.queries_issued);
                    out
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
