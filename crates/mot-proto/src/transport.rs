//! Deterministic message transport with a distance-based cost ledger.
//!
//! The one-by-one case needs no timing model — a single operation's
//! messages are causally chained — so delivery is FIFO. Every delivered
//! message is billed its shortest-path distance under its payload kind;
//! the ledger separates charged protocol traffic from uncharged
//! bookkeeping (special-parent updates, repoints) and from query replies.

use crate::faults::FaultModel;
use crate::message::{Message, Payload, KIND_COUNT, KIND_LABELS};
use mot_core::{LedgerKind, OpId, OpKind, OpLedger, TraceEvent, TracePhase, TraceSink};
use mot_net::DistanceOracle;
use std::collections::VecDeque;
use std::rc::Rc;

/// Emits one transport-level trace event for a billed transmission
/// (free when no sink is attached). `retry` bills the hop to the retry
/// ledger with a `Retransmit` phase regardless of the payload.
fn emit_msg(sink: &Option<Rc<dyn TraceSink>>, msg: &Message, dist: f64, retry: bool) {
    if let Some(s) = sink {
        s.event(&TraceEvent {
            op: OpKind::Transport,
            phase: if retry {
                TracePhase::Retransmit
            } else {
                TracePhase::Deliver
            },
            ledger: if retry {
                LedgerKind::Retry
            } else {
                msg.payload.trace_ledger()
            },
            object: msg.payload.object(),
            src: msg.src,
            dst: msg.dst,
            level: msg.payload.trace_level() as u32,
            distance: dist,
        });
    }
}

/// Capped exponential backoff schedule for retry scheduling.
///
/// The delay before retry `attempt` is `base · 2^attempt`, saturated
/// against both 64-bit overflow and the configured `cap` — unbounded
/// doubling would overflow (and effectively park a message forever) past
/// attempt 63, and even below that an uncapped delay explodes far beyond
/// any useful retry horizon. Time units are whatever the caller ticks
/// in: queue slots for [`LossyTransport`]'s implicit timeout, service
/// batches for the mot-sim service loop.
///
/// ```
/// use mot_proto::Backoff;
///
/// let b = Backoff::new(2, 100);
/// assert_eq!(b.delay(0), 2);
/// assert_eq!(b.delay(3), 16);
/// assert_eq!(b.delay(9), 100); // capped, not 1024
/// assert_eq!(b.delay(200), 100); // no overflow at absurd attempts
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Delay of the first retry (must be ≥ 1).
    pub base: u64,
    /// Hard ceiling every delay saturates to (must be ≥ `base`).
    pub cap: u64,
}

impl Backoff {
    /// A schedule doubling from `base` up to `cap`.
    pub fn new(base: u64, cap: u64) -> Self {
        assert!(base >= 1, "zero base would retry without waiting");
        assert!(cap >= base, "cap below base would invert the schedule");
        Backoff { base, cap }
    }

    /// The delay before retry number `attempt` (0-based), capped and
    /// overflow-guarded.
    pub fn delay(&self, attempt: u32) -> u64 {
        if attempt >= u64::BITS {
            return self.cap;
        }
        self.base.saturating_mul(1u64 << attempt).min(self.cap)
    }
}

impl Default for Backoff {
    /// Doubling from 1, capped at 64 — a horizon past any realistic
    /// `max_attempts` budget while staying far from overflow.
    fn default() -> Self {
        Backoff { base: 1, cap: 64 }
    }
}

/// Ledger kind under which fault overhead is billed: lost transmissions,
/// retransmissions, and redundant duplicate arrivals. Never charged —
/// each operation's charged cost stays "one bill per effective delivery"
/// so zero-fault runs are bit-identical to the reliable transport.
pub const RETRIES_KIND: &str = "retries";

/// Per-kind accumulated message distance. Kinds live in a flat array
/// indexed by [`Payload::kind_index`] — billing happens once per
/// delivered message on the replay hot path, so it must not hash.
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    by_kind: [f64; KIND_COUNT],
    /// Total distance of charged messages since the last reset.
    pub charged: f64,
    /// Number of messages delivered since the last reset.
    pub messages: usize,
    /// Messages whose retry budget was exhausted since the last reset —
    /// recorded loss, never silent. Every message a lossy transport
    /// accepts ends as a delivery or here.
    pub lost_messages: usize,
    /// Distance of the undeliverable hop of each lost message (the
    /// wasted attempts themselves accrue under [`RETRIES_KIND`]).
    pub lost_distance: f64,
}

impl CostLedger {
    /// Distance accumulated under a payload kind (an unknown label
    /// reads as zero, matching the old map-backed behavior).
    pub fn of_kind(&self, kind: &str) -> f64 {
        KIND_LABELS
            .iter()
            .position(|&l| l == kind)
            .map_or(0.0, |i| self.by_kind[i])
    }

    fn bill(&mut self, payload: &Payload, dist: f64) {
        self.by_kind[payload.kind_index()] += dist;
        if payload.charged() {
            self.charged += dist;
        }
        self.messages += 1;
    }

    /// Bills a wasted transmission (drop, retransmission, or duplicate
    /// arrival) to the [`RETRIES_KIND`] account without charging it.
    fn bill_retry(&mut self, dist: f64) {
        self.by_kind[KIND_COUNT - 1] += dist;
        self.messages += 1;
    }

    /// Records a message that exhausted its retry budget.
    fn record_lost(&mut self, dist: f64) {
        self.lost_messages += 1;
        self.lost_distance += dist;
    }

    /// Total fault overhead (lost + duplicate transmission distance)
    /// since the last reset.
    pub fn retries(&self) -> f64 {
        self.of_kind(RETRIES_KIND)
    }

    /// Clears the per-operation counters.
    pub fn reset(&mut self) {
        self.by_kind = [0.0; KIND_COUNT];
        self.charged = 0.0;
        self.messages = 0;
        self.lost_messages = 0;
        self.lost_distance = 0.0;
    }
}

/// FIFO message queue between sensor nodes.
#[derive(Default)]
pub struct Transport {
    queue: VecDeque<Message>,
    /// Cost accounting for every delivery.
    pub ledger: CostLedger,
    sink: Option<Rc<dyn TraceSink>>,
}

impl Transport {
    /// An empty reliable transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a structured-trace sink: every billed delivery emits a
    /// transport-level [`TraceEvent`]. Without one nothing is built.
    pub fn set_sink(&mut self, sink: Rc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Enqueues a message.
    pub fn send(&mut self, msg: Message) {
        self.queue.push_back(msg);
    }

    /// Enqueues a batch.
    pub fn send_all(&mut self, msgs: impl IntoIterator<Item = Message>) {
        for m in msgs {
            self.send(m);
        }
    }

    /// Pops the next message, billing its travel distance.
    pub fn deliver(&mut self, oracle: &dyn DistanceOracle) -> Option<Message> {
        let msg = self.queue.pop_front()?;
        let dist = oracle.dist(msg.src, msg.dst);
        self.ledger.bill(&msg.payload, dist);
        emit_msg(&self.sink, &msg, dist, false);
        Some(msg)
    }

    /// True when no messages remain in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// What a [`LossyTransport::deliver`] call produced.
#[derive(Debug)]
pub enum Delivery {
    /// First successful arrival of this message: apply its effects.
    Apply(Message),
    /// A redundant duplicate of an already-applied message; billed as
    /// retry overhead. The handler must NOT run again.
    Duplicate(Message),
    /// The retry budget is exhausted; the operation cannot complete.
    Failed {
        /// The undeliverable message.
        msg: Message,
        /// Transmission attempts consumed.
        attempts: u32,
    },
}

/// A message with its ack/retry bookkeeping.
#[derive(Debug)]
struct InFlight {
    /// Per-message sequence number: the dedup key that makes redelivery
    /// idempotent (effects are applied exactly once per sequence number).
    seq: u64,
    /// Transmission attempts made so far.
    attempt: u32,
    msg: Message,
}

/// A lossy FIFO transport: every transmission consults a [`FaultModel`]
/// (drop? duplicate? receiver crashed?) and charged traffic is protected
/// by an ack/retry protocol — a lost transmission is retransmitted from
/// the back of the queue (the implicit ack timeout is one queue pass;
/// drivers that schedule retries in real or simulated time use the
/// explicit capped [`Backoff`] schedule instead) until `max_attempts`
/// is reached, at which point delivery fails *loudly*: the sequence
/// number is recorded in [`LossyTransport::ops`], the cost ledger's
/// `lost_messages` counter, and a [`TracePhase::Exhausted`] event.
///
/// Billing: each effective delivery is billed once, exactly like the
/// reliable [`Transport`]; all wasted distance (drops, retransmissions
/// that were themselves dropped, duplicate arrivals) accrues under the
/// uncharged [`RETRIES_KIND`]. Over a clean fault model the ledger is
/// therefore bit-identical to the reliable transport's.
pub struct LossyTransport {
    queue: VecDeque<InFlight>,
    /// Cost accounting; wasted distance accrues under [`RETRIES_KIND`].
    pub ledger: CostLedger,
    faults: Box<dyn FaultModel>,
    /// Transmission attempts per message before giving up.
    pub max_attempts: u32,
    next_seq: u64,
    /// Exactly-once admission: sequence numbers whose effects were
    /// already applied (redeliveries fenced), plus the recorded-lost ids
    /// of every message that exhausted its budget.
    pub ops: OpLedger,
    sink: Option<Rc<dyn TraceSink>>,
}

impl LossyTransport {
    /// Wraps a fault model; `max_attempts` bounds the retry budget
    /// (must be ≥ 1).
    pub fn new(faults: Box<dyn FaultModel>, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        LossyTransport {
            queue: VecDeque::new(),
            ledger: CostLedger::default(),
            faults,
            max_attempts,
            next_seq: 0,
            ops: OpLedger::new(),
            sink: None,
        }
    }

    /// Attaches a structured-trace sink. Wasted transmissions (drops,
    /// duplicates) emit `Retransmit` events under the retry ledger.
    pub fn set_sink(&mut self, sink: Rc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Enqueues a message with a fresh sequence number.
    pub fn send(&mut self, msg: Message) {
        self.queue.push_back(InFlight {
            seq: self.next_seq,
            attempt: 0,
            msg,
        });
        self.next_seq += 1;
    }

    /// Enqueues a batch.
    pub fn send_all(&mut self, msgs: impl IntoIterator<Item = Message>) {
        for m in msgs {
            self.send(m);
        }
    }

    /// Runs the loss process until a message arrives (or the queue
    /// drains): dropped attempts are billed as retries and retransmitted;
    /// arrivals are deduplicated by sequence number.
    pub fn deliver(&mut self, oracle: &dyn DistanceOracle) -> Option<Delivery> {
        while let Some(mut inflight) = self.queue.pop_front() {
            if self
                .faults
                .delay_message(inflight.msg.src, inflight.msg.dst)
            {
                // Timeout-induced reordering: the message falls behind the
                // rest of the queue at no cost and with no attempt spent.
                self.queue.push_back(inflight);
                continue;
            }
            let dist = oracle.dist(inflight.msg.src, inflight.msg.dst);
            inflight.attempt += 1;
            let lost = self.faults.node_down(inflight.msg.dst)
                || self.faults.drop_message(inflight.msg.src, inflight.msg.dst);
            if lost {
                self.ledger.bill_retry(dist);
                emit_msg(&self.sink, &inflight.msg, dist, true);
                if inflight.attempt >= self.max_attempts {
                    // Exhaustion is recorded, never silent: the seq lands
                    // in the op ledger's lost list, the cost ledger
                    // counts it, and a zero-distance marker event (the
                    // attempts were already billed above) flags it to any
                    // attached sink.
                    self.ops.record_lost(OpId(inflight.seq));
                    self.ledger.record_lost(dist);
                    if let Some(s) = &self.sink {
                        s.event(&TraceEvent {
                            op: OpKind::Transport,
                            phase: TracePhase::Exhausted,
                            ledger: LedgerKind::Retry,
                            object: inflight.msg.payload.object(),
                            src: inflight.msg.src,
                            dst: inflight.msg.dst,
                            level: inflight.msg.payload.trace_level() as u32,
                            distance: 0.0,
                        });
                    }
                    return Some(Delivery::Failed {
                        attempts: inflight.attempt,
                        msg: inflight.msg,
                    });
                }
                self.queue.push_back(inflight);
                continue;
            }
            if !self.ops.admit(OpId(inflight.seq), inflight.attempt) {
                self.ledger.bill_retry(dist);
                emit_msg(&self.sink, &inflight.msg, dist, true);
                return Some(Delivery::Duplicate(inflight.msg));
            }
            self.ledger.bill(&inflight.msg.payload, dist);
            emit_msg(&self.sink, &inflight.msg, dist, false);
            if self
                .faults
                .duplicate_message(inflight.msg.src, inflight.msg.dst)
            {
                // A lost ack: the sender will retransmit even though the
                // message arrived. Same sequence number, fresh budget.
                self.queue.push_back(InFlight {
                    seq: inflight.seq,
                    attempt: 0,
                    msg: inflight.msg.clone(),
                });
            }
            return Some(Delivery::Apply(inflight.msg));
        }
        None
    }

    /// True when no messages remain in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A message scheduled for timed delivery.
#[derive(Debug)]
struct Scheduled {
    deliver_at: f64,
    seq: u64,
    msg: Message,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap on (time, seq)
        other
            .deliver_at
            .partial_cmp(&self.deliver_at)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Timed message transport for concurrent (batched) executions: message
/// latency equals message distance, and a climb/query entering level `i`
/// waits for the end of the current period `Φ(i) = period_base · 2^i`
/// (§4.1.2's forwarding discipline; `period_base = 0` disables gating).
pub struct TimedTransport {
    heap: std::collections::BinaryHeap<Scheduled>,
    seq: u64,
    /// Simulation clock: the delivery time of the last popped message.
    pub now: f64,
    /// Base period of the §4.1.2 level gate (`0` disables gating).
    pub period_base: f64,
    /// Cost accounting for every delivery.
    pub ledger: CostLedger,
    sink: Option<Rc<dyn TraceSink>>,
}

impl TimedTransport {
    /// An empty timed transport with the given gating period base.
    pub fn new(period_base: f64) -> Self {
        TimedTransport {
            // Sized for the typical in-flight window (a few messages per
            // hop across a handful of concurrent climbs) so steady-state
            // delivery never regrows the heap.
            heap: std::collections::BinaryHeap::with_capacity(64),
            seq: 0,
            now: 0.0,
            period_base,
            ledger: CostLedger::default(),
            sink: None,
        }
    }

    /// Attaches a structured-trace sink for billed deliveries.
    pub fn set_sink(&mut self, sink: Rc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Schedules `msg` sent at time `sent_at`.
    pub fn send_at(&mut self, msg: Message, sent_at: f64, oracle: &dyn DistanceOracle) {
        let mut deliver_at = sent_at + oracle.dist(msg.src, msg.dst);
        if self.period_base > 0.0 {
            if let Some(level) = msg.payload.level_entry() {
                let phi = self.period_base * (1u64 << level) as f64;
                deliver_at = (deliver_at / phi).ceil() * phi;
            }
        }
        self.heap.push(Scheduled {
            deliver_at,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }

    /// Pops the earliest message, advancing the clock and billing its
    /// distance.
    pub fn deliver(&mut self, oracle: &dyn DistanceOracle) -> Option<Message> {
        let Scheduled {
            deliver_at, msg, ..
        } = self.heap.pop()?;
        debug_assert!(deliver_at >= self.now - 1e-9, "time ran backwards");
        self.now = self.now.max(deliver_at);
        let dist = oracle.dist(msg.src, msg.dst);
        self.ledger.bill(&msg.payload, dist);
        emit_msg(&self.sink, &msg, dist, false);
        Some(msg)
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_core::ObjectId;
    use mot_net::DenseOracle;
    use mot_net::{generators, NodeId};

    fn msg(src: u32, dst: u32, payload: Payload) -> Message {
        Message {
            src: NodeId(src),
            dst: NodeId(dst),
            payload,
        }
    }

    #[test]
    fn deliveries_are_fifo_and_billed_by_distance() {
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mut t = Transport::new();
        t.send(msg(
            0,
            4,
            Payload::Delete {
                object: ObjectId(0),
                level: 1,
                members_remaining: vec![],
                continue_down: true,
            },
        ));
        t.send(msg(
            4,
            2,
            Payload::Reply {
                object: ObjectId(0),
                proxy: NodeId(2),
            },
        ));
        let first = t.deliver(&m).unwrap();
        assert_eq!(first.dst, NodeId(4));
        assert_eq!(t.ledger.charged, 4.0); // delete is charged
        let _second = t.deliver(&m).unwrap();
        assert_eq!(t.ledger.charged, 4.0); // reply is not
        assert_eq!(t.ledger.of_kind("reply"), 2.0);
        assert_eq!(t.ledger.messages, 2);
        assert!(t.is_idle());
        assert!(t.deliver(&m).is_none());
    }

    #[test]
    fn timed_transport_orders_by_arrival() {
        let g = generators::line(6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mut t = TimedTransport::new(0.0);
        // sent simultaneously: the shorter hop arrives first
        t.send_at(
            msg(
                0,
                5,
                Payload::Reply {
                    object: ObjectId(0),
                    proxy: NodeId(5),
                },
            ),
            0.0,
            &m,
        );
        t.send_at(
            msg(
                0,
                1,
                Payload::Reply {
                    object: ObjectId(1),
                    proxy: NodeId(1),
                },
            ),
            0.0,
            &m,
        );
        let first = t.deliver(&m).unwrap();
        assert_eq!(first.payload.object(), ObjectId(1));
        assert!((t.now - 1.0).abs() < 1e-12);
        let second = t.deliver(&m).unwrap();
        assert_eq!(second.payload.object(), ObjectId(0));
        assert!((t.now - 5.0).abs() < 1e-12);
        assert!(t.is_idle());
    }

    #[test]
    fn period_gate_delays_level_entries() {
        let g = generators::line(8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let climb_into_level_2 = Payload::Climb {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 2,
            index: 0,
            prev_members: vec![],
            added: vec![],
            publish: false,
        };
        assert_eq!(climb_into_level_2.level_entry(), Some(2));

        let mut gated = TimedTransport::new(1.0); // Φ(2) = 4
        gated.send_at(msg(0, 1, climb_into_level_2.clone()), 0.0, &m);
        gated.deliver(&m).unwrap();
        assert!(
            (gated.now - 4.0).abs() < 1e-12,
            "arrival gated to the period end"
        );

        let mut free = TimedTransport::new(0.0);
        free.send_at(msg(0, 1, climb_into_level_2), 0.0, &m);
        free.deliver(&m).unwrap();
        assert!((free.now - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mid_level_hops_are_not_gated() {
        let p = Payload::Climb {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 2,
            index: 1,
            prev_members: vec![],
            added: vec![],
            publish: false,
        };
        assert_eq!(p.level_entry(), None);
        let q = Payload::Query {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 0,
            index: 0,
        };
        assert_eq!(q.level_entry(), None, "level-0 start is not a level entry");
    }

    #[test]
    fn lossy_over_no_faults_matches_reliable_billing() {
        use crate::faults::NoFaults;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mk = || {
            msg(
                0,
                4,
                Payload::Query {
                    object: ObjectId(0),
                    origin: NodeId(0),
                    level: 0,
                    index: 0,
                },
            )
        };
        let mut reliable = Transport::new();
        reliable.send(mk());
        reliable.deliver(&m).unwrap();
        let mut lossy = LossyTransport::new(Box::new(NoFaults), 8);
        lossy.send(mk());
        assert!(matches!(lossy.deliver(&m), Some(Delivery::Apply(_))));
        assert_eq!(lossy.ledger.charged, reliable.ledger.charged);
        assert_eq!(lossy.ledger.messages, reliable.ledger.messages);
        assert_eq!(lossy.ledger.retries(), 0.0);
        assert!(lossy.is_idle());
    }

    #[test]
    fn dropped_transmissions_are_retried_and_billed_as_retries() {
        use crate::faults::ScriptedFaults;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        // first two attempts drop, third succeeds
        let faults = ScriptedFaults::dropping([true, true, false]);
        let mut t = LossyTransport::new(Box::new(faults), 8);
        t.send(msg(
            0,
            4,
            Payload::Query {
                object: ObjectId(0),
                origin: NodeId(0),
                level: 0,
                index: 0,
            },
        ));
        let d = t.deliver(&m);
        assert!(matches!(d, Some(Delivery::Apply(_))), "got {d:?}");
        assert_eq!(t.ledger.charged, 4.0, "charged once per delivery");
        assert_eq!(t.ledger.retries(), 8.0, "two wasted 4-distance attempts");
        assert_eq!(t.ledger.messages, 3);
    }

    #[test]
    fn retry_budget_exhaustion_fails_instead_of_hanging() {
        use crate::faults::ScriptedFaults;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        // the receiver is crashed forever: every attempt is lost
        let faults = ScriptedFaults::nodes_down([NodeId(4)]);
        let mut t = LossyTransport::new(Box::new(faults), 5);
        t.send(msg(
            0,
            4,
            Payload::Query {
                object: ObjectId(7),
                origin: NodeId(0),
                level: 0,
                index: 0,
            },
        ));
        match t.deliver(&m) {
            Some(Delivery::Failed { msg, attempts }) => {
                assert_eq!(attempts, 5);
                assert_eq!(msg.payload.object(), ObjectId(7));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(t.ledger.charged, 0.0, "nothing was delivered");
        assert_eq!(t.ledger.retries(), 20.0, "five wasted attempts");
    }

    #[test]
    fn duplicates_arrive_but_apply_once() {
        use crate::faults::ScriptedFaults;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let faults = ScriptedFaults::duplicating([true]);
        let mut t = LossyTransport::new(Box::new(faults), 8);
        t.send(msg(
            0,
            4,
            Payload::Query {
                object: ObjectId(0),
                origin: NodeId(0),
                level: 0,
                index: 0,
            },
        ));
        assert!(matches!(t.deliver(&m), Some(Delivery::Apply(_))));
        assert!(
            matches!(t.deliver(&m), Some(Delivery::Duplicate(_))),
            "the redundant copy surfaces as Duplicate, never Apply"
        );
        assert!(t.deliver(&m).is_none());
        assert_eq!(t.ledger.charged, 4.0, "charged once despite two arrivals");
        assert_eq!(t.ledger.retries(), 4.0, "the duplicate is fault overhead");
    }

    #[test]
    fn delayed_messages_reorder_without_cost() {
        use crate::faults::ScriptedFaults;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        // first pop is delayed: the second message overtakes the first
        let faults = ScriptedFaults::delaying([true]);
        let mut t = LossyTransport::new(Box::new(faults), 8);
        for object in [ObjectId(0), ObjectId(1)] {
            t.send(msg(
                0,
                4,
                Payload::Query {
                    object,
                    origin: NodeId(0),
                    level: 0,
                    index: 0,
                },
            ));
        }
        let first = match t.deliver(&m) {
            Some(Delivery::Apply(m)) => m,
            other => panic!("expected Apply, got {other:?}"),
        };
        assert_eq!(first.payload.object(), ObjectId(1), "overtaken");
        let second = match t.deliver(&m) {
            Some(Delivery::Apply(m)) => m,
            other => panic!("expected Apply, got {other:?}"),
        };
        assert_eq!(second.payload.object(), ObjectId(0));
        assert_eq!(t.ledger.charged, 8.0, "both still billed exactly once");
        assert_eq!(t.ledger.retries(), 0.0, "delay is free");
    }

    #[test]
    fn sinks_see_deliveries_and_retries_with_the_right_ledgers() {
        use crate::faults::ScriptedFaults;
        use mot_core::MemorySink;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let sink = Rc::new(MemorySink::new());
        let faults = ScriptedFaults::dropping([true, false]);
        let mut t = LossyTransport::new(Box::new(faults), 8);
        t.set_sink(sink.clone());
        t.send(msg(
            0,
            4,
            Payload::Query {
                object: ObjectId(3),
                origin: NodeId(0),
                level: 1,
                index: 0,
            },
        ));
        assert!(matches!(t.deliver(&m), Some(Delivery::Apply(_))));
        let evs = sink.events();
        assert_eq!(evs.len(), 2, "one wasted attempt + one delivery");
        assert_eq!(evs[0].phase, TracePhase::Retransmit);
        assert_eq!(evs[0].ledger, LedgerKind::Retry);
        assert_eq!(evs[1].phase, TracePhase::Deliver);
        assert_eq!(evs[1].ledger, LedgerKind::Query);
        assert_eq!(evs[1].op, OpKind::Transport);
        assert_eq!(evs[1].level, 1);
        assert_eq!(sink.ledger_total(LedgerKind::Retry), t.ledger.retries());
        assert_eq!(sink.ledger_total(LedgerKind::Query), t.ledger.charged);
    }

    #[test]
    fn reliable_transport_sink_mirrors_the_ledger() {
        use mot_core::MemorySink;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let sink = Rc::new(MemorySink::new());
        let mut t = Transport::new();
        t.set_sink(sink.clone());
        t.send(msg(
            0,
            4,
            Payload::Reply {
                object: ObjectId(0),
                proxy: NodeId(4),
            },
        ));
        t.deliver(&m).unwrap();
        assert_eq!(
            sink.ledger_total(LedgerKind::Bookkeeping),
            t.ledger.of_kind("reply")
        );
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        let b = Backoff::new(1, 16);
        let delays: Vec<u64> = (0..8).map(|a| b.delay(a)).collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 16, 16, 16, 16]);
    }

    #[test]
    fn backoff_never_overflows_at_high_attempt_counts() {
        // Unbounded doubling overflows u64 past attempt 63; the schedule
        // must saturate to the cap instead of wrapping to tiny delays.
        let b = Backoff::new(u64::MAX / 2, u64::MAX);
        assert_eq!(b.delay(1), u64::MAX - 1);
        assert_eq!(b.delay(2), u64::MAX, "saturates, does not wrap");
        assert_eq!(b.delay(63), u64::MAX);
        assert_eq!(b.delay(64), u64::MAX, "shift ≥ 64 is guarded");
        assert_eq!(b.delay(u32::MAX), u64::MAX);
        let capped = Backoff::new(3, 1000);
        assert_eq!(capped.delay(200), 1000);
    }

    #[test]
    #[should_panic(expected = "cap below base")]
    fn backoff_rejects_inverted_bounds() {
        let _ = Backoff::new(8, 4);
    }

    /// The zero-silent-loss audit: under a fault plan that exhausts some
    /// retry budgets, every message the transport accepted is accounted
    /// for — `sent == applied + recorded-lost` — and the lost ones are
    /// visible in the op ledger, the cost ledger, and the trace stream.
    #[test]
    fn exhausted_messages_are_recorded_in_ledgers_and_trace() {
        use crate::faults::ScriptedFaults;
        use mot_core::MemorySink;
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        // msg 0 burns its whole 2-attempt budget; msg 1 delivers; msg 2
        // drops once, then delivers on its retry.
        let faults = ScriptedFaults::dropping([true, false, true, true, false]);
        let mut t = LossyTransport::new(Box::new(faults), 2);
        let sink = Rc::new(MemorySink::new());
        t.set_sink(sink.clone());
        let sent = 3usize;
        for object in 0..sent as u32 {
            t.send(msg(
                0,
                4,
                Payload::Query {
                    object: ObjectId(object),
                    origin: NodeId(0),
                    level: 0,
                    index: 0,
                },
            ));
        }
        let mut applied = 0usize;
        let mut failed = Vec::new();
        while let Some(d) = t.deliver(&m) {
            match d {
                Delivery::Apply(_) => applied += 1,
                Delivery::Duplicate(_) => {}
                Delivery::Failed { msg, attempts } => {
                    assert_eq!(attempts, 2);
                    failed.push(msg.payload.object());
                }
            }
        }
        assert!(t.is_idle());
        assert_eq!(applied, 2);
        assert_eq!(failed, vec![ObjectId(0)]);
        // every sent message is accounted: delivered or recorded-lost
        assert_eq!(sent, applied + t.ops.lost().len());
        assert_eq!(t.ops.lost(), &[0], "seq 0 is the exhausted message");
        assert_eq!(t.ledger.lost_messages, 1);
        assert_eq!(t.ledger.lost_distance, 4.0);
        let exhausted: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| e.phase == TracePhase::Exhausted)
            .cloned()
            .collect();
        assert_eq!(exhausted.len(), 1, "loss surfaces as a trace event");
        assert_eq!(exhausted[0].object, ObjectId(0));
        assert_eq!(exhausted[0].distance, 0.0, "marker only, already billed");
    }

    #[test]
    fn reset_clears_operation_counters() {
        let g = generators::line(3).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mut t = Transport::new();
        t.send(msg(
            0,
            2,
            Payload::Query {
                object: ObjectId(1),
                origin: NodeId(0),
                level: 0,
                index: 0,
            },
        ));
        t.deliver(&m).unwrap();
        assert!(t.ledger.charged > 0.0);
        t.ledger.reset();
        assert_eq!(t.ledger.charged, 0.0);
        assert_eq!(t.ledger.messages, 0);
        assert_eq!(t.ledger.of_kind("query"), 0.0);
    }
}
