//! Substrate micro-benches: the building blocks under the tracking
//! algorithms — APSP oracle, overlay construction, de Bruijn routing,
//! MIS rounds, workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
use mot_debruijn::DeBruijnGraph;
use mot_hierarchy::{build_doubling, build_general, OverlayConfig};
use mot_net::{generators, DenseOracle, DistanceOracle, LazyOracle, NodeId};
use mot_proto::ProtoTracker;
use mot_sim::WorkloadSpec;

fn bench(c: &mut Criterion) {
    // APSP oracle build (parallel Dijkstra).
    let mut group = c.benchmark_group("apsp_build");
    group.sample_size(10);
    for n in [8usize, 16, 23] {
        let g = generators::grid(n, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &g, |b, g| {
            b.iter(|| DenseOracle::build(g).unwrap())
        });
    }
    group.finish();

    // Dense vs lazy distance backends at the grid sizes where the
    // choice starts to matter (1024 and 4096 nodes — the latter is the
    // Auto cutoff). "Build" is what you pay up front: the full APSP
    // matrix for dense, constructor plus a 64-row working set for lazy.
    // "Query" is a warm mix of point distances and radius-4 balls.
    let mut group = c.benchmark_group("oracle_backend");
    group.sample_size(10);
    for n in [32usize, 64] {
        let g = generators::grid(n, n).unwrap();
        let nodes = n * n;
        group.bench_with_input(BenchmarkId::new("dense_build", nodes), &g, |b, g| {
            b.iter(|| DenseOracle::build(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lazy_build_warm64", nodes), &g, |b, g| {
            b.iter(|| {
                let o = LazyOracle::new(g).unwrap();
                for u in 0..64 {
                    o.dist(NodeId::from_index(u * nodes / 64), NodeId(0));
                }
                o
            })
        });
        let query_mix = |o: &dyn DistanceOracle| {
            let mut acc = 0.0;
            for u in (0..nodes).step_by(17) {
                let u = NodeId::from_index(u);
                acc += o.dist(u, NodeId(0));
                acc += o.ball_size(u, 4.0) as f64;
            }
            acc
        };
        let dense = DenseOracle::build(&g).unwrap();
        group.bench_with_input(
            BenchmarkId::new("dense_query_mix", nodes),
            &dense,
            |b, o| b.iter(|| query_mix(o)),
        );
        let lazy = LazyOracle::new(&g).unwrap();
        query_mix(&lazy); // warm the row cache once
        group.bench_with_input(BenchmarkId::new("lazy_query_mix", nodes), &lazy, |b, o| {
            b.iter(|| query_mix(o))
        });
    }
    group.finish();

    // Overlay constructions.
    let g = generators::grid(16, 16).unwrap();
    let m = DenseOracle::build(&g).unwrap();
    let mut group = c.benchmark_group("overlay_build_16x16");
    group.sample_size(10);
    group.bench_function("doubling", |b| {
        b.iter(|| build_doubling(&g, &m, &OverlayConfig::practical(), 3))
    });
    group.bench_function("general_sparse_partition", |b| {
        b.iter(|| build_general(&g, &m, &OverlayConfig::practical(), 3))
    });
    group.finish();

    // de Bruijn canonical routing.
    let db = DeBruijnGraph::new(10);
    c.bench_function("debruijn_route_dim10", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = i.wrapping_mul(2654435761) & 1023;
            let dst = i.wrapping_mul(40503) & 1023;
            i = i.wrapping_add(1);
            db.route(src, dst)
        })
    });

    // Direct vs message-passing rendering: per-operation overhead of the
    // protocol machinery (they compute identical results and costs).
    let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 7);
    let w = WorkloadSpec::new(5, 200, 3).generate(&g);
    let mut group = c.benchmark_group("rendering_overhead_16x16");
    group.sample_size(20);
    group.bench_function("direct_mot", |b| {
        b.iter(|| {
            let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
            for (oi, &p) in w.initial.iter().enumerate() {
                t.publish(ObjectId(oi as u32), p).unwrap();
            }
            for mv in &w.moves {
                t.move_object(mv.object, mv.to).unwrap();
            }
            t.query(NodeId(0), ObjectId(0)).unwrap()
        })
    });
    group.bench_function("message_passing_mot", |b| {
        b.iter(|| {
            let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
            for (oi, &p) in w.initial.iter().enumerate() {
                t.publish(ObjectId(oi as u32), p).unwrap();
            }
            for mv in &w.moves {
                t.move_object(mv.object, mv.to).unwrap();
            }
            t.query(NodeId(0), ObjectId(0)).unwrap()
        })
    });
    group.finish();

    // Workload generation (random walk + waypoint).
    let mut group = c.benchmark_group("workload_generation_16x16");
    group.bench_function("random_walk", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            WorkloadSpec::new(20, 100, seed).generate(&g)
        })
    });
    group.bench_function("waypoint", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            WorkloadSpec {
                objects: 20,
                moves_per_object: 100,
                model: mot_sim::MobilityModel::Waypoint,
                seed,
            }
            .generate(&g)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
