//! Dynamic cluster membership (paper §7).
//!
//! When sensors join or leave, the embedded de Bruijn graph must track the
//! cluster. The paper's scheme (borrowed from Rajaraman et al. \[28\]):
//!
//! * **join:** the newcomer takes label `|X|`. If `|X|+1` becomes a power
//!   of two the dimension grows by one and every member splits its
//!   emulated label — `|X|` updates; otherwise only the member that was
//!   emulating label `|X|` and its de Bruijn neighbors update — `O(1)`.
//! * **leave:** if the departing label is `|X|−1` and `|X|−1` is a power
//!   of two, the dimension shrinks and all members merge labels — `|X|`
//!   updates; otherwise the member with the top label takes over the
//!   vacated label — `O(1)`. A departing leader additionally hands
//!   leadership to the relabelled member.
//!
//! Doubling events happen every `Θ(|X|)` operations, so the *amortized*
//! adaptability is `O(1)` per event — the property the `churn` experiment
//! measures.

use crate::embedding::Embedding;
use mot_net::NodeId;

/// Record of one membership change and the work it caused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Members whose state (labels, neighbor tables, stored objects) had
    /// to be touched — the paper's *adaptability* measure.
    pub nodes_updated: usize,
    /// Whether the embedded graph changed dimension.
    pub dimension_changed: bool,
    /// Whether cluster leadership moved.
    pub leader_changed: bool,
}

/// A cluster whose de Bruijn embedding is maintained under churn.
#[derive(Clone, Debug)]
pub struct DynamicCluster {
    members: Vec<NodeId>,
    leader: NodeId,
    /// Cumulative adaptability statistics.
    pub events: Vec<ChurnEvent>,
}

impl DynamicCluster {
    /// Starts a cluster with the given members; the first member leads.
    ///
    /// # Panics
    /// Panics on an empty member list.
    pub fn new(members: Vec<NodeId>) -> Self {
        assert!(!members.is_empty(), "cluster cannot start empty");
        let leader = members[0];
        DynamicCluster {
            members,
            leader,
            events: Vec::new(),
        }
    }

    /// Current members in label order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The current cluster leader.
    pub fn leader(&self) -> NodeId {
        self.leader
    }

    /// Current embedding snapshot.
    pub fn embedding(&self) -> Embedding {
        Embedding::new(self.members.clone())
    }

    fn is_power_of_two(x: usize) -> bool {
        x != 0 && x & (x - 1) == 0
    }

    /// A node joins the cluster; returns the churn record.
    pub fn join(&mut self, node: NodeId) -> ChurnEvent {
        debug_assert!(!self.members.contains(&node), "{node} already a member");
        self.members.push(node);
        let new_size = self.members.len();
        let dimension_changed = Self::is_power_of_two(new_size) && new_size > 1;
        let nodes_updated = if dimension_changed {
            // |X| reached a power of two: every member previously emulated
            // two labels and now owns one — dimension grew.
            new_size
        } else {
            // newcomer + the member that was emulating its label + the
            // O(1) de Bruijn neighbors of that label
            3
        };
        let ev = ChurnEvent {
            nodes_updated,
            dimension_changed,
            leader_changed: false,
        };
        self.events.push(ev);
        ev
    }

    /// A node leaves the cluster; returns the churn record.
    ///
    /// # Panics
    /// Panics when `node` is not a member or is the last member.
    pub fn leave(&mut self, node: NodeId) -> ChurnEvent {
        let pos = self
            .members
            .iter()
            .position(|&m| m == node)
            .expect("departing node must be a member");
        assert!(self.members.len() > 1, "cannot empty the cluster");
        let was_leader = node == self.leader;
        // The member holding the top label takes over the vacated slot
        // (for the top label itself this is a plain pop).
        let top = self.members.pop().unwrap();
        if pos < self.members.len() {
            self.members[pos] = top;
        }
        let new_size = self.members.len();
        let dimension_changed = Self::is_power_of_two(new_size);
        let nodes_updated = if dimension_changed {
            // |X| fell back to a power of two: dimension shrinks, every
            // member re-merges an emulated label.
            new_size
        } else {
            // relabelled member + its O(1) de Bruijn neighbors
            3
        };
        if was_leader {
            self.leader = self.members[0];
        }
        let ev = ChurnEvent {
            nodes_updated,
            dimension_changed,
            leader_changed: was_leader,
        };
        self.events.push(ev);
        ev
    }

    /// Average nodes updated per event so far — the amortized
    /// adaptability, which §7 argues is `O(1)` per cluster.
    pub fn amortized_adaptability(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events
            .iter()
            .map(|e| e.nodes_updated as f64)
            .sum::<f64>()
            / self.events.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    #[test]
    fn join_grows_membership_and_embedding() {
        let mut c = DynamicCluster::new(ids(0..3));
        let ev = c.join(NodeId(10));
        assert_eq!(c.members().len(), 4);
        assert!(ev.dimension_changed); // 4 is a power of two
        assert_eq!(ev.nodes_updated, 4);
        let ev = c.join(NodeId(11));
        assert!(!ev.dimension_changed);
        assert_eq!(ev.nodes_updated, 3);
        assert_eq!(c.embedding().graph().dim(), 3);
    }

    #[test]
    fn leave_relabels_top_member() {
        let mut c = DynamicCluster::new(ids(0..5));
        c.leave(NodeId(1));
        // member 4 took label 1
        assert_eq!(c.members(), &[NodeId(0), NodeId(4), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn leader_handoff_on_leader_departure() {
        let mut c = DynamicCluster::new(ids(0..4));
        assert_eq!(c.leader(), NodeId(0));
        let ev = c.leave(NodeId(0));
        assert!(ev.leader_changed);
        assert_ne!(c.leader(), NodeId(0));
        assert!(c.members().contains(&c.leader()));
    }

    #[test]
    fn dimension_shrinks_at_power_of_two() {
        let mut c = DynamicCluster::new(ids(0..5)); // dim 3
        let ev = c.leave(NodeId(4)); // size 4 -> dim 2
        assert!(ev.dimension_changed);
        assert_eq!(ev.nodes_updated, 4);
        assert_eq!(c.embedding().graph().dim(), 2);
    }

    #[test]
    fn amortized_adaptability_is_constant() {
        // A long alternating churn sequence: expensive (dimension-change)
        // events are 1-in-Θ(|X|), so the running average stays small.
        let mut c = DynamicCluster::new(ids(0..2));
        let mut next = 100u32;
        for round in 0..500 {
            if round % 3 == 2 {
                let victim = c.members()[c.members().len() / 2];
                c.leave(victim);
            } else {
                c.join(NodeId(next));
                next += 1;
            }
        }
        let amortized = c.amortized_adaptability();
        assert!(
            amortized < 6.0,
            "amortized adaptability {amortized} not O(1)"
        );
    }

    #[test]
    #[should_panic(expected = "cannot empty the cluster")]
    fn cannot_remove_last_member() {
        let mut c = DynamicCluster::new(ids(0..1));
        c.leave(NodeId(0));
    }
}
