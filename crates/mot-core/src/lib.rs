//! MOT — Mobile Object Tracking using sensors (the paper's Algorithm 1).
//!
//! The tracker maintains, for every mobile object, *detection lists* (DL)
//! along the object's detection path in a hierarchical overlay, plus
//! *special detection lists* (SDL) at special parents that cap query cost
//! despite detection-path fragmentation:
//!
//! * `publish(o, v)` seeds the lists from proxy `v` to the root (one-time),
//! * `move_object(o, y)` climbs `DPath(y)` inserting `o` until it finds a
//!   node already holding `o` (the meet), then deletes the stale trail
//!   below the meet down to the old proxy,
//! * `query(x, o)` climbs `DPath(x)` probing DLs and SDLs, then descends
//!   holder-to-holder to the proxy.
//!
//! The [`Tracker`] trait is the uniform interface the simulator drives —
//! MOT, its load-balanced variant (§5), and every baseline in
//! `mot-baselines` implement it. Costs are message distances; optimal
//! costs are plain graph distances, so cost *ratios* come straight out of
//! a workload run.
//!
//! # Example
//!
//! ```
//! use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
//! use mot_hierarchy::{build_doubling, OverlayConfig};
//! use mot_net::{generators, DenseOracle, NodeId};
//!
//! let g = generators::grid(8, 8)?;
//! let oracle = DenseOracle::build(&g)?;
//! let overlay = build_doubling(&g, &oracle, &OverlayConfig::practical(), 42);
//! let mut tracker = MotTracker::new(&overlay, &oracle, MotConfig::plain());
//!
//! // One-time publish, then hand-offs as the object moves.
//! let tiger = ObjectId(0);
//! tracker.publish(tiger, NodeId(0))?;
//! let mv = tracker.move_object(tiger, NodeId(1))?;
//! assert_eq!(mv.from, NodeId(0));
//!
//! // Any sensor can locate it; the cost is O(distance) (Thm 4.11).
//! let q = tracker.query(NodeId(63), tiger)?;
//! assert_eq!(q.proxy, NodeId(1));
//! assert!(q.cost >= oracle.dist(NodeId(63), NodeId(1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Place in the workspace
//!
//! The algorithmic heart of the DAG: builds on `mot-net`,
//! `mot-hierarchy`, and `mot-debruijn`; the baselines, simulator, and
//! bench crates all drive it through the [`Tracker`] trait. Implements
//! §4 (MOT, Algorithm 1), §5 (load balancing), §7 (dynamics); serves
//! every figure. See DESIGN.md §3 and §5.

#![warn(missing_docs)]

pub mod config;
pub mod dynamics;
pub mod error;
pub mod lb;
pub mod mot;
pub mod object;
pub mod op;
pub mod state;
pub mod trace;
pub mod tracker;

pub use config::MotConfig;
pub use error::CoreError;
pub use mot::MotTracker;
/// Distance-backend selector, re-exported for experiment configuration.
pub use mot_net::OracleKind;
pub use object::ObjectId;
pub use op::{OpId, OpLedger};
pub use trace::{fmt_f64, LedgerKind, MemorySink, OpKind, TraceEvent, TracePhase, TraceSink};
pub use tracker::{MoveOutcome, QueryResult, Tracker};

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
