//! Service mode: a long-lived, sharded, fault-hardened event loop.
//!
//! Batch experiments replay a fixed workload and exit; a deployed
//! tracking service instead ingests an open-ended stream of
//! publish/move/query operations while links drop, duplicate, and delay
//! messages and whole shards crash. [`run_service`] is that loop
//! (DESIGN.md §15): it drives a seeded [`crate::OpStream`] through a
//! pool of shard-affine workers and guarantees **zero silent loss** —
//! at the end of every run each emitted op is accounted exactly once:
//!
//! ```text
//! sent == applied (incl. superseded + degraded) + shed + recorded-lost
//! ```
//!
//! and the run is rejected with [`SimError::Service`] if not.
//!
//! # Operational invariants
//!
//! * **Exactly-once effects.** Every envelope carries a global
//!   [`mot_core::OpId`] and every delivery an attempt number; each
//!   shard admits an op through its durable [`mot_core::OpLedger`]
//!   before touching the tracker, so retries and duplicate deliveries
//!   are fenced, never re-applied.
//! * **Attempt fencing / staleness.** Move targets are absolute and
//!   each shard keeps a per-object high-water mark over `obj_seq`; a
//!   late or re-ordered state op at or below the mark is *superseded*
//!   (counted, no effect) — a stale retry can never clobber newer
//!   state.
//! * **Crash re-adoption with bounded replay.** A shard crash destroys
//!   its tracker and in-flight queue. The durable ledger (checkpointed
//!   position snapshot + the op tail since) rebuilds a fresh tracker
//!   with replay bounded by the checkpoint interval; queued ops lost in
//!   the crash are redelivered by the coordinator.
//! * **Measured backlog with degrade-before-shed.** Per-shard queue
//!   depth and oldest-op age are recorded into [`Histogram`]s every
//!   tick. Past `degrade_depth` queries are answered from the shard
//!   ledger (cheap, still counted); past `shed_depth` queries are shed
//!   (counted, terminal). State ops are **never** shed.
//!
//! # Determinism
//!
//! Fault coins are stateless hashes of `(seed, op, attempt, salt)` —
//! never of delivery order — shard count is fixed independent of the
//! worker count, and per-shard results merge in canonical shard order,
//! so the deterministic report and the final object→location map are
//! byte-identical for `--jobs 1` and `--jobs N`. Wall-clock throughput
//! lives in a separate `"wall"` JSON trailer that parity comparisons
//! strip.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

use mot_baselines::DetectionRates;
use mot_core::{fmt_f64, ObjectId, OpLedger};
use mot_hierarchy::{OverlayConfig, RepairableHierarchy};
use mot_net::{CacheLedger, NodeId};
use mot_proto::Backoff;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::concurrent::ClimbStructure;
use crate::error::SimError;
use crate::faults::FaultConfig;
use crate::metrics::Histogram;
use crate::stream::{OpEnvelope, OpStream, ServiceOp, StreamSpec};
use crate::testbed::{Algo, TestBed};

/// Backlog policy: the queue depths at which a shard stops giving
/// queries the full tracker treatment. Degradation always precedes
/// shedding, and state ops (publish/move) are exempt from both.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShedPolicy {
    /// Queue depth at which arriving queries are answered immediately
    /// from the shard ledger instead of climbing the tracker.
    pub degrade_depth: usize,
    /// Queue depth at which arriving queries are shed outright
    /// (counted, terminal — never silent).
    pub shed_depth: usize,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            degrade_depth: 512,
            shed_depth: 2048,
        }
    }
}

/// Configuration of one service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The generated op stream (also the fault-free oracle).
    pub stream: StreamSpec,
    /// Number of state shards (objects map to shard `id % shards`).
    /// Fixed independently of `jobs` — the determinism anchor.
    pub shards: usize,
    /// Worker threads; `0` means one per available hardware thread
    /// (capped at the shard count).
    pub jobs: usize,
    /// Stream ops injected per tick.
    pub batch: usize,
    /// Ops a shard may process per tick (`0` = unbounded). A bounded
    /// budget is what makes backlog — and the shed policy — real.
    pub shard_budget: usize,
    /// Transport + crash fault plan (crash count is interpreted as
    /// shard crashes scheduled across the run).
    pub faults: FaultConfig,
    /// Retry schedule for dropped transmissions.
    pub backoff: Backoff,
    /// Ticks between durable position checkpoints (`0` = never: crash
    /// replay then walks the full tail).
    pub checkpoint_every: u64,
    /// Backlog degrade/shed thresholds.
    pub policy: ShedPolicy,
}

impl ServiceConfig {
    /// A fault-free single-threaded service over `stream` with default
    /// sharding, batching, and policy.
    pub fn new(stream: StreamSpec) -> Self {
        ServiceConfig {
            stream,
            shards: 8,
            jobs: 1,
            batch: 256,
            shard_budget: 0,
            faults: FaultConfig::default(),
            backoff: Backoff::default(),
            checkpoint_every: 16,
            policy: ShedPolicy::default(),
        }
    }
}

/// The deterministic ledger of one service run plus a wall-clock
/// trailer. Everything except `wall_secs`, `workers`, and `cache` is
/// byte-identical across worker counts.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Ops emitted by the stream.
    pub sent: u64,
    /// Ops that reached a terminal *applied* state: full application,
    /// superseded no-ops, and degraded query answers.
    pub applied: u64,
    /// Queries shed under backlog pressure (terminal, counted).
    pub shed: u64,
    /// Ops whose retry budget was exhausted: recorded lost, never
    /// silent.
    pub lost: u64,
    /// Publishes applied through a tracker (upserting moves included).
    pub publishes: u64,
    /// Moves applied through a tracker.
    pub moves: u64,
    /// Queries given the full tracker treatment.
    pub queries: u64,
    /// State ops fenced by a newer `obj_seq` (stale retries/reorders).
    pub superseded: u64,
    /// Queries answered from the shard ledger: backlog degradation
    /// plus queries arriving before their object was adopted.
    pub degraded: u64,
    /// Full-path queries whose tracker answer matched the shard ledger.
    pub queries_correct: u64,
    /// Full-path queries whose tracker answer disagreed — always 0 in
    /// a healthy run.
    pub queries_wrong: u64,
    /// Duplicate deliveries refused by shard admission ledgers.
    pub fenced: u64,
    /// Transmission attempts the transport dropped.
    pub dropped_attempts: u64,
    /// Retries scheduled for dropped attempts.
    pub retries: u64,
    /// Redundant duplicate deliveries the transport spawned.
    pub dup_deliveries: u64,
    /// Deliveries deferred by one tick.
    pub delayed: u64,
    /// Shard crash events injected.
    pub crash_events: u64,
    /// Ops replayed from durable ledgers while re-adopting crashed
    /// shards (bounded by the checkpoint interval).
    pub replayed_ops: u64,
    /// Queued ops destroyed by crashes and redelivered.
    pub redelivered: u64,
    /// Message distance spent rebuilding crashed shards.
    pub recovery_cost: f64,
    /// Topology deltas absorbed by the coordinator's hierarchy mirror
    /// (0 on a static-topology run).
    pub topology_ops: u64,
    /// Topology deltas the mirror absorbed by localized repair.
    pub hier_repairs: u64,
    /// Topology deltas the mirror's ledger sent to a full rebuild.
    pub hier_rebuilds: u64,
    /// Structural units the mirror spent absorbing churn (membership
    /// decisions + parent recomputes + station rebuilds).
    pub hier_repair_units: u64,
    /// Quiescence check: 1 if the repaired mirror diverged from a
    /// from-scratch rebuild on the final topology. A healthy run is
    /// always 0 — divergence is also a hard [`SimError::Service`].
    pub hier_divergence: u64,
    /// Per-tick shard queue depths.
    pub backlog_depth: Histogram,
    /// Per-tick oldest-queued-op ages (in ticks).
    pub backlog_age: Histogram,
    /// Deepest queue observed.
    pub max_depth: u64,
    /// Oldest queued op observed (ticks).
    pub max_age: u64,
    /// Cost per applied publish.
    pub publish_cost: Histogram,
    /// Cost per applied move.
    pub move_cost: Histogram,
    /// Cost per full-path query.
    pub query_cost: Histogram,
    /// Ticks until quiescence.
    pub ticks: u64,
    /// Shard count (fixed, part of the deterministic contract).
    pub shards: usize,
    /// FNV-1a hash of the final object→location map.
    pub final_map_fnv: u64,
    /// Worker threads actually used (wall trailer only).
    pub workers: usize,
    /// Wall-clock seconds (wall trailer only).
    pub wall_secs: f64,
    /// Distance-oracle cache counters, when the bed's oracle keeps them
    /// (wall trailer only: interleaving across workers makes them
    /// timing-dependent).
    pub cache: Option<CacheLedger>,
}

impl ServiceReport {
    /// The zero-silent-loss identity: every emitted op reached exactly
    /// one terminal account.
    pub fn accounted(&self) -> bool {
        self.sent == self.applied + self.shed + self.lost
    }

    /// The jobs-independent slice of the report as JSON — what parity
    /// tests compare byte-for-byte.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"sent\":{},\"applied\":{},\"shed\":{},\"lost\":{},\
             \"publishes\":{},\"moves\":{},\"queries\":{},\
             \"superseded\":{},\"degraded\":{},\
             \"queries_correct\":{},\"queries_wrong\":{},\"fenced\":{},\
             \"dropped_attempts\":{},\"retries\":{},\"dup_deliveries\":{},\
             \"delayed\":{},\"crash_events\":{},\"replayed_ops\":{},\
             \"redelivered\":{},\"recovery_cost\":{},\
             \"topology\":{{\"ops\":{},\"repairs\":{},\"rebuilds\":{},\
             \"repair_units\":{},\"divergence\":{}}},\
             \"ticks\":{},\"shards\":{},\"final_map_fnv\":{},\
             \"backlog\":{{\"depth\":{},\"age\":{},\"max_depth\":{},\
             \"max_age\":{},\"depth_p50\":{},\"depth_p99\":{},\"age_p99\":{}}},\
             \"costs\":{{\"publish\":{},\"move\":{},\"query\":{},\
             \"move_p50\":{},\"move_p99\":{},\"query_p50\":{},\"query_p99\":{}}}}}",
            self.sent,
            self.applied,
            self.shed,
            self.lost,
            self.publishes,
            self.moves,
            self.queries,
            self.superseded,
            self.degraded,
            self.queries_correct,
            self.queries_wrong,
            self.fenced,
            self.dropped_attempts,
            self.retries,
            self.dup_deliveries,
            self.delayed,
            self.crash_events,
            self.replayed_ops,
            self.redelivered,
            fmt_f64(self.recovery_cost),
            self.topology_ops,
            self.hier_repairs,
            self.hier_rebuilds,
            self.hier_repair_units,
            self.hier_divergence,
            self.ticks,
            self.shards,
            self.final_map_fnv,
            self.backlog_depth.to_json(),
            self.backlog_age.to_json(),
            self.max_depth,
            self.max_age,
            fmt_f64(self.backlog_depth.quantile(0.5)),
            fmt_f64(self.backlog_depth.quantile(0.99)),
            fmt_f64(self.backlog_age.quantile(0.99)),
            self.publish_cost.to_json(),
            self.move_cost.to_json(),
            self.query_cost.to_json(),
            fmt_f64(self.move_cost.quantile(0.5)),
            fmt_f64(self.move_cost.quantile(0.99)),
            fmt_f64(self.query_cost.quantile(0.5)),
            fmt_f64(self.query_cost.quantile(0.99)),
        )
    }

    /// Full JSON: the deterministic slice plus the `"wall"` trailer
    /// (throughput, worker count, oracle cache counters). Strip from
    /// `"wall"` onward — or compare [`Self::deterministic_json`] — for
    /// byte-level parity checks.
    pub fn to_json(&self) -> String {
        let mut s = self.deterministic_json();
        s.pop();
        let ops_per_sec = if self.wall_secs > 0.0 {
            self.sent as f64 / self.wall_secs
        } else {
            0.0
        };
        s.push_str(&format!(
            ",\"wall\":{{\"secs\":{},\"ops_per_sec\":{},\"workers\":{}}}",
            fmt_f64(self.wall_secs),
            fmt_f64(ops_per_sec),
            self.workers
        ));
        match &self.cache {
            None => s.push_str(",\"cache\":null"),
            Some(c) => s.push_str(&format!(
                ",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
                 \"promotions\":{},\"resident_rows\":{},\"resident_bytes\":{}}}",
                c.hits, c.misses, c.evictions, c.promotions, c.resident_rows, c.resident_bytes
            )),
        }
        s.push('}');
        s
    }
}

/// What a service run produces: the report and the final map.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Counters, histograms, and the wall trailer.
    pub report: ServiceReport,
    /// Final object→location map assembled from the shard ledgers in
    /// canonical object order (`None` = never published).
    pub final_positions: Vec<Option<NodeId>>,
}

// ---- deterministic fault coins -------------------------------------

const SALT_DROP: u64 = 0xD809;
const SALT_DUP: u64 = 0xD0B1;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_LINK: u64 = 0x11F4;
const CRASH_STREAM: u64 = 0xC4A5_11DE;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform coin in `[0, 1)` keyed on identity, never on order.
fn coin(seed: u64, a: u64, b: u64, salt: u64) -> f64 {
    let z = splitmix(seed ^ splitmix(a ^ splitmix(b ^ splitmix(salt))));
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn fnv1a_map(positions: &[Option<NodeId>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: u64, v: u32| -> u64 {
        let mut h = h;
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    };
    for (i, p) in positions.iter().enumerate() {
        h = eat(h, i as u32);
        h = eat(h, p.map_or(u32::MAX, |n| n.0));
    }
    h
}

// ---- coordinator ↔ worker wire types -------------------------------

#[derive(Clone, Copy)]
struct Sched {
    env: OpEnvelope,
    attempt: u32,
    dup: bool,
}

#[derive(Clone, Copy)]
struct Delivered {
    env: OpEnvelope,
    attempt: u32,
}

struct ShardTickMsg {
    shard: usize,
    crash: bool,
    deliveries: Vec<Delivered>,
}

enum ToWorker {
    Tick {
        tick: u64,
        shards: Vec<ShardTickMsg>,
    },
    Finish,
}

struct TickOut {
    shard: usize,
    depth: usize,
    redeliver: Vec<Delivered>,
    /// The tick's drained delivery buffer, riding back to the
    /// coordinator so its capacity is reused next tick (values never
    /// survive the round-trip; DESIGN.md §16).
    spent: Vec<Delivered>,
}

struct ShardFinal {
    shard: usize,
    stats: ShardStats,
    positions: Vec<(u32, NodeId)>,
    integrity_mismatches: usize,
}

enum FromWorker {
    Ticked(Vec<TickOut>),
    Finished(Vec<ShardFinal>),
    Error(String),
}

#[derive(Default)]
struct ShardStats {
    applied: u64,
    publishes: u64,
    moves: u64,
    queries: u64,
    superseded: u64,
    degraded: u64,
    shed: u64,
    queries_correct: u64,
    queries_wrong: u64,
    fenced: u64,
    crashes: u64,
    replayed: u64,
    recovery_cost: f64,
    publish_cost: Histogram,
    move_cost: Histogram,
    query_cost: Histogram,
    depth_hist: Histogram,
    age_hist: Histogram,
    max_depth: u64,
    max_age: u64,
}

// ---- shard state ----------------------------------------------------

struct Queued {
    arrival: u64,
    attempt: u32,
    env: OpEnvelope,
}

/// The durable part of a shard: survives crashes, rebuilds the tracker.
#[derive(Default)]
struct ShardLedger {
    ops: OpLedger,
    positions: HashMap<u32, NodeId>,
    hw: HashMap<u32, u32>,
    checkpoint: Vec<(u32, NodeId)>,
    tail: Vec<(u32, NodeId)>,
}

struct ShardState<'a> {
    shard: usize,
    tracker: Box<dyn ClimbStructure + 'a>,
    ledger: ShardLedger,
    queue: VecDeque<Queued>,
    stats: ShardStats,
}

impl<'a> ShardState<'a> {
    fn new(bed: &'a TestBed, rates: &DetectionRates, shard: usize) -> Result<Self, SimError> {
        Ok(ShardState {
            shard,
            tracker: bed.make_tracker(Algo::Mot, rates)?,
            ledger: ShardLedger::default(),
            queue: VecDeque::new(),
            stats: ShardStats::default(),
        })
    }

    fn run_tick(
        &mut self,
        tick: u64,
        msg: ShardTickMsg,
        bed: &'a TestBed,
        rates: &DetectionRates,
        cfg: &ServiceConfig,
    ) -> Result<TickOut, SimError> {
        let ShardTickMsg {
            crash,
            mut deliveries,
            ..
        } = msg;
        let redeliver = if crash {
            self.crash_recover(bed, rates)?
        } else {
            Vec::new()
        };
        for d in deliveries.drain(..) {
            self.enqueue(tick, d, cfg);
        }
        let budget = if cfg.shard_budget == 0 {
            usize::MAX
        } else {
            cfg.shard_budget
        };
        let mut done = 0usize;
        while done < budget {
            match self.queue.pop_front() {
                Some(q) => self.process(q)?,
                None => break,
            }
            done += 1;
        }
        if cfg.checkpoint_every > 0 && tick > 0 && tick.is_multiple_of(cfg.checkpoint_every) {
            let mut snap: Vec<(u32, NodeId)> = self
                .ledger
                .positions
                .iter()
                .map(|(&o, &n)| (o, n))
                .collect();
            snap.sort_unstable_by_key(|&(o, _)| o);
            self.ledger.checkpoint = snap;
            self.ledger.tail.clear();
        }
        let depth = self.queue.len();
        self.stats.depth_hist.record(depth as f64);
        self.stats.max_depth = self.stats.max_depth.max(depth as u64);
        let age = self.queue.front().map_or(0, |q| tick - q.arrival);
        self.stats.age_hist.record(age as f64);
        self.stats.max_age = self.stats.max_age.max(age);
        Ok(TickOut {
            shard: self.shard,
            depth,
            redeliver,
            spent: deliveries,
        })
    }

    /// Destroys the tracker and queue, then re-adopts the shard from
    /// its durable ledger: checkpoint snapshot + tail replay. Returns
    /// the queued ops lost in the crash (the sender's unacked window)
    /// for redelivery.
    fn crash_recover(
        &mut self,
        bed: &'a TestBed,
        rates: &DetectionRates,
    ) -> Result<Vec<Delivered>, SimError> {
        self.stats.crashes += 1;
        let lost: Vec<Delivered> = self
            .queue
            .drain(..)
            .map(|q| Delivered {
                env: q.env,
                attempt: q.attempt,
            })
            .collect();
        self.tracker = bed.make_tracker(Algo::Mot, rates)?;
        let mut rebuilt: HashSet<u32> = HashSet::new();
        for &(o, at) in &self.ledger.checkpoint {
            self.stats.recovery_cost += self.tracker.publish(ObjectId(o), at)?;
            rebuilt.insert(o);
            self.stats.replayed += 1;
        }
        for &(o, to) in &self.ledger.tail {
            if rebuilt.insert(o) {
                self.stats.recovery_cost += self.tracker.publish(ObjectId(o), to)?;
            } else {
                self.stats.recovery_cost += self.tracker.move_object(ObjectId(o), to)?.cost;
            }
            self.stats.replayed += 1;
        }
        Ok(lost)
    }

    /// Admission with backlog policy: state ops always queue; queries
    /// degrade past `degrade_depth` and shed past `shed_depth`. Both
    /// short-circuits still pass the op through the admission ledger so
    /// a later duplicate can't resurrect it into a second account.
    fn enqueue(&mut self, tick: u64, d: Delivered, cfg: &ServiceConfig) {
        let is_query = matches!(d.env.op, ServiceOp::Query { .. });
        let depth = self.queue.len();
        if is_query && depth >= cfg.policy.shed_depth {
            if self.ledger.ops.admit(d.env.id, d.attempt) {
                self.stats.shed += 1;
            }
            return;
        }
        if is_query && depth >= cfg.policy.degrade_depth {
            if self.ledger.ops.admit(d.env.id, d.attempt) {
                // Answered from the ledger's committed position — no
                // tracker climb, zero cost, still a terminal answer.
                self.stats.degraded += 1;
                self.stats.applied += 1;
            }
            return;
        }
        self.queue.push_back(Queued {
            arrival: tick,
            attempt: d.attempt,
            env: d.env,
        });
    }

    fn process(&mut self, q: Queued) -> Result<(), SimError> {
        if !self.ledger.ops.admit(q.env.id, q.attempt) {
            return Ok(()); // duplicate delivery: fenced by the ledger
        }
        let o = q.env.object;
        match q.env.op {
            ServiceOp::Publish { at } => self.apply_state(q.env.obj_seq, o, at)?,
            ServiceOp::Move { to } => self.apply_state(q.env.obj_seq, o, to)?,
            ServiceOp::Query { from } => {
                self.stats.applied += 1;
                match self.ledger.positions.get(&o.0).copied() {
                    // The object hasn't been adopted here yet (its
                    // publish is still in flight): a degraded "not yet
                    // tracked" answer, not an error.
                    None => self.stats.degraded += 1,
                    Some(truth) => {
                        let r = self.tracker.query(from, o)?;
                        self.stats.queries += 1;
                        self.stats.query_cost.record(r.cost);
                        if r.proxy == truth {
                            self.stats.queries_correct += 1;
                        } else {
                            self.stats.queries_wrong += 1;
                        }
                    }
                }
            }
            // Control-plane ops never reach a shard: the coordinator
            // intercepts them before transport (no fault coins).
            ServiceOp::Topology { .. } => {
                unreachable!("topology ops are coordinator-intercepted")
            }
        }
        Ok(())
    }

    /// Applies a state op under the staleness fence: only an `obj_seq`
    /// above the object's high-water mark may rebind its position.
    /// Moves upsert (a move racing ahead of its publish adopts the
    /// object), so out-of-order delivery converges on the newest state.
    fn apply_state(&mut self, obj_seq: u32, o: ObjectId, target: NodeId) -> Result<(), SimError> {
        self.stats.applied += 1;
        if self.ledger.hw.get(&o.0).is_some_and(|&h| obj_seq <= h) {
            self.stats.superseded += 1;
            return Ok(());
        }
        self.ledger.hw.insert(o.0, obj_seq);
        if self.ledger.positions.contains_key(&o.0) {
            let out = self.tracker.move_object(o, target)?;
            self.stats.moves += 1;
            self.stats.move_cost.record(out.cost);
        } else {
            let c = self.tracker.publish(o, target)?;
            self.stats.publishes += 1;
            self.stats.publish_cost.record(c);
        }
        self.ledger.positions.insert(o.0, target);
        self.ledger.tail.push((o.0, target));
        Ok(())
    }

    fn finish(mut self) -> ShardFinal {
        self.stats.fenced = self.ledger.ops.fenced;
        let mut positions: Vec<(u32, NodeId)> = self
            .ledger
            .positions
            .iter()
            .map(|(&o, &n)| (o, n))
            .collect();
        positions.sort_unstable_by_key(|&(o, _)| o);
        let integrity_mismatches = positions
            .iter()
            .filter(|&&(o, n)| self.tracker.proxy_of(ObjectId(o)) != Some(n))
            .count();
        ShardFinal {
            shard: self.shard,
            stats: self.stats,
            positions,
            integrity_mismatches,
        }
    }
}

// ---- worker ---------------------------------------------------------

fn worker_main<'a>(
    bed: &'a TestBed,
    cfg: &ServiceConfig,
    rates: &DetectionRates,
    owned: Vec<usize>,
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker>,
) {
    let mut states: Vec<ShardState<'a>> = Vec::with_capacity(owned.len());
    for &s in &owned {
        match ShardState::new(bed, rates, s) {
            Ok(st) => states.push(st),
            Err(e) => {
                let _ = tx.send(FromWorker::Error(e.to_string()));
                return;
            }
        }
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Tick { tick, shards } => {
                let mut outs = Vec::with_capacity(shards.len());
                for (state, m) in states.iter_mut().zip(shards) {
                    debug_assert_eq!(state.shard, m.shard, "shard routing out of order");
                    match state.run_tick(tick, m, bed, rates, cfg) {
                        Ok(out) => outs.push(out),
                        Err(e) => {
                            let _ = tx.send(FromWorker::Error(e.to_string()));
                            return;
                        }
                    }
                }
                if tx.send(FromWorker::Ticked(outs)).is_err() {
                    return;
                }
            }
            ToWorker::Finish => {
                let finals = states.drain(..).map(ShardState::finish).collect();
                let _ = tx.send(FromWorker::Finished(finals));
                return;
            }
        }
    }
}

// ---- coordinator ----------------------------------------------------

/// Runs the service loop to quiescence and verifies its operational
/// invariants. See the module docs for the guarantees; any violation —
/// unaccounted ops, ledger/tracker disagreement, a dead worker, a loop
/// that never drains — is a [`SimError::Service`], not a report.
pub fn run_service(bed: &TestBed, cfg: &ServiceConfig) -> Result<ServiceOutcome, SimError> {
    assert!(cfg.shards > 0, "a service needs at least one shard");
    assert!(cfg.batch > 0, "a zero batch would never make progress");
    assert!(
        cfg.policy.degrade_depth <= cfg.policy.shed_depth,
        "degradation must engage before shedding"
    );
    let shards = cfg.shards;
    let workers = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.jobs
    }
    .min(shards)
    .max(1);
    let seed = cfg.faults.seed;
    let max_attempts = cfg.faults.max_attempts.max(1);
    let est_ticks = cfg.stream.ops / cfg.batch as u64 + 1;
    let tick_limit =
        est_ticks + (max_attempts as u64 + 2) * (cfg.backoff.cap + 2) + cfg.stream.ops + 64;

    // Crash schedule: (tick, shard) pairs from the fault seed, fixed
    // before the loop starts so it is independent of worker count.
    let mut crash_at: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    if cfg.faults.crashes > 0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ CRASH_STREAM);
        let span = est_ticks.max(2);
        let mut seen: HashSet<(u64, usize)> = HashSet::new();
        for _ in 0..cfg.faults.crashes {
            let t = rng.gen_range(1..span);
            let s = rng.gen_range(0..shards);
            if seen.insert((t, s)) {
                crash_at.entry(t).or_default().push(s);
            }
        }
        for v in crash_at.values_mut() {
            v.sort_unstable();
        }
    }

    let rates = DetectionRates::uniform(&bed.graph);
    let start = Instant::now();

    struct LoopOut {
        ticks: u64,
        sent: u64,
        dropped: u64,
        retries: u64,
        dups: u64,
        delayed: u64,
        redelivered: u64,
        crash_events: u64,
        topology_ops: u64,
        lost: OpLedger,
        finals: Vec<ShardFinal>,
        /// The coordinator's incrementally repaired hierarchy, when the
        /// stream carries churn (verified against a rebuild below).
        mirror: Option<RepairableHierarchy>,
    }

    let out: LoopOut = std::thread::scope(|scope| -> Result<LoopOut, SimError> {
        let (from_tx, from_rx) = std::sync::mpsc::channel::<FromWorker>();
        let mut to_workers: Vec<Sender<ToWorker>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel::<ToWorker>();
            to_workers.push(tx);
            let from_tx = from_tx.clone();
            let owned: Vec<usize> = (w..shards).step_by(workers).collect();
            let rates = &rates;
            scope.spawn(move || worker_main(bed, cfg, rates, owned, rx, from_tx));
        }
        drop(from_tx);

        let recv = |rx: &Receiver<FromWorker>| -> Result<FromWorker, SimError> {
            rx.recv()
                .map_err(|_| SimError::Service("a worker exited mid-run".into()))
        };

        let mut stream = OpStream::new(&bed.graph, cfg.stream);
        // Control plane: with churn in the stream, the coordinator
        // keeps a repairable hierarchy mirror of the live topology —
        // absorbing each delta in place, never stop-the-world.
        let mut mirror = if cfg.stream.churn_every > 0 {
            Some(
                RepairableHierarchy::build(
                    &bed.graph,
                    &OverlayConfig::practical(),
                    cfg.stream.seed,
                )
                .map_err(|e| SimError::Service(format!("hierarchy mirror: {e}")))?,
            )
        } else {
            None
        };
        let mut topology_ops = 0u64;
        let mut scheduled: BTreeMap<u64, Vec<Sched>> = BTreeMap::new();
        let mut lost = OpLedger::new();
        let (mut sent, mut dropped, mut retries, mut dups) = (0u64, 0u64, 0u64, 0u64);
        let (mut delayed, mut redelivered, mut crash_events) = (0u64, 0u64, 0u64);
        let mut tick = 0u64;
        // Per-shard delivery buffers, reused across ticks: workers drain
        // them and ship the empties back in each `TickOut`.
        let mut per_shard: Vec<Vec<Delivered>> = vec![Vec::new(); shards];

        loop {
            // 1. This tick's deliveries: carried retries/delays/dups
            //    first, then a fresh batch off the stream.
            let mut due = scheduled.remove(&tick).unwrap_or_default();
            for _ in 0..cfg.batch {
                match stream.next_op() {
                    Some(env) => {
                        if let ServiceOp::Topology { delta } = env.op {
                            // Intercepted control plane: no transport
                            // coins, no shard routing, no data-plane
                            // account — the mirror repairs in place.
                            topology_ops += 1;
                            let sched = stream
                                .churn_schedule()
                                .expect("topology op implies a schedule");
                            let m = mirror.as_mut().expect("topology op implies a mirror");
                            m.repair(&sched.deltas()[delta as usize])
                                .map_err(|e| SimError::Service(format!("mirror repair: {e}")))?;
                            continue;
                        }
                        sent += 1;
                        due.push(Sched {
                            env,
                            attempt: 0,
                            dup: false,
                        });
                    }
                    None => break,
                }
            }

            // 2. Transport coins — keyed on (op, attempt), never on
            //    order — route survivors to their shards.
            for s in due {
                let op = s.env.id.0;
                if !s.dup {
                    let dead_link = s.attempt == 0
                        && coin(seed, s.env.object.0 as u64, 0, SALT_LINK)
                            < cfg.faults.link_failure_rate;
                    if dead_link
                        || coin(seed, op, s.attempt as u64, SALT_DROP) < cfg.faults.drop_rate
                    {
                        dropped += 1;
                        let next = s.attempt + 1;
                        if next >= max_attempts {
                            lost.record_lost(s.env.id);
                        } else {
                            retries += 1;
                            let wait = cfg.backoff.delay(s.attempt);
                            scheduled
                                .entry(tick + 1 + wait)
                                .or_default()
                                .push(Sched { attempt: next, ..s });
                        }
                        continue;
                    }
                }
                let delay_key = tick.wrapping_mul(0x9E37).wrapping_add(s.attempt as u64);
                if coin(seed, op, delay_key, SALT_DELAY) < cfg.faults.delay_rate {
                    delayed += 1;
                    scheduled.entry(tick + 1).or_default().push(s);
                    continue;
                }
                if !s.dup && coin(seed, op, s.attempt as u64, SALT_DUP) < cfg.faults.duplicate_rate
                {
                    dups += 1;
                    scheduled
                        .entry(tick + 1)
                        .or_default()
                        .push(Sched { dup: true, ..s });
                }
                per_shard[s.env.object.index() % shards].push(Delivered {
                    env: s.env,
                    attempt: s.attempt,
                });
            }

            // 3. Crashes due this tick, then dispatch in shard order.
            let crashing = crash_at.remove(&tick).unwrap_or_default();
            crash_events += crashing.len() as u64;
            for (w, to) in to_workers.iter().enumerate() {
                let msgs: Vec<ShardTickMsg> = (w..shards)
                    .step_by(workers)
                    .map(|s| ShardTickMsg {
                        shard: s,
                        crash: crashing.contains(&s),
                        deliveries: std::mem::take(&mut per_shard[s]),
                    })
                    .collect();
                to.send(ToWorker::Tick { tick, shards: msgs })
                    .map_err(|_| SimError::Service("a worker exited mid-run".into()))?;
            }

            // 4. Barrier: collect every worker, merge in shard order.
            let mut outs: Vec<TickOut> = Vec::with_capacity(shards);
            for _ in 0..workers {
                match recv(&from_rx)? {
                    FromWorker::Ticked(v) => outs.extend(v),
                    FromWorker::Error(e) => return Err(SimError::Service(e)),
                    FromWorker::Finished(_) => {
                        return Err(SimError::Service("worker finished early".into()))
                    }
                }
            }
            outs.sort_unstable_by_key(|o| o.shard);
            let mut backlog_total = 0usize;
            for o in outs {
                backlog_total += o.depth;
                debug_assert!(o.spent.is_empty(), "spent buffers must come back drained");
                per_shard[o.shard] = o.spent;
                for d in o.redeliver {
                    redelivered += 1;
                    scheduled.entry(tick + 1).or_default().push(Sched {
                        env: d.env,
                        attempt: d.attempt,
                        dup: false,
                    });
                }
            }

            tick += 1;
            let stream_done = stream.emitted() >= stream.total();
            if stream_done && scheduled.is_empty() && backlog_total == 0 && crash_at.is_empty() {
                break;
            }
            if tick > tick_limit {
                return Err(SimError::Service(format!(
                    "failed to quiesce within {tick_limit} ticks \
                     ({backlog_total} queued, {} scheduled)",
                    scheduled.len()
                )));
            }
        }

        for to in &to_workers {
            to.send(ToWorker::Finish)
                .map_err(|_| SimError::Service("a worker exited before finish".into()))?;
        }
        let mut finals: Vec<ShardFinal> = Vec::with_capacity(shards);
        for _ in 0..workers {
            match recv(&from_rx)? {
                FromWorker::Finished(v) => finals.extend(v),
                FromWorker::Error(e) => return Err(SimError::Service(e)),
                FromWorker::Ticked(_) => {
                    return Err(SimError::Service("stray tick after finish".into()))
                }
            }
        }
        finals.sort_unstable_by_key(|f| f.shard);
        Ok(LoopOut {
            ticks: tick,
            sent,
            dropped,
            retries,
            dups,
            delayed,
            redelivered,
            crash_events,
            topology_ops,
            lost,
            finals,
            mirror,
        })
    })?;

    // Quiescence divergence gate: the incrementally repaired mirror
    // must be bit-identical to a from-scratch build on the final
    // topology (the §7 correctness contract, DESIGN.md §17).
    let mut hier = (0u64, 0u64, 0u64, 0u64); // repairs, rebuilds, units, divergence
    if let Some(m) = &out.mirror {
        let fresh =
            RepairableHierarchy::build(m.graph(), &OverlayConfig::practical(), cfg.stream.seed)
                .map_err(|e| SimError::Service(format!("mirror verification rebuild: {e}")))?;
        let diverged = m.snapshot() != fresh.snapshot();
        let ledger = m.ledger();
        hier = (
            ledger.repairs,
            ledger.rebuilds,
            ledger.repaired_units + ledger.rebuild_units,
            diverged as u64,
        );
        if diverged {
            return Err(SimError::Service(
                "repaired hierarchy mirror diverged from a from-scratch rebuild".into(),
            ));
        }
    }

    // ---- merge (canonical shard order) and verify -------------------
    let mut report = ServiceReport {
        sent: out.sent,
        applied: 0,
        shed: 0,
        lost: out.lost.lost().len() as u64,
        publishes: 0,
        moves: 0,
        queries: 0,
        superseded: 0,
        degraded: 0,
        queries_correct: 0,
        queries_wrong: 0,
        fenced: 0,
        dropped_attempts: out.dropped,
        retries: out.retries,
        dup_deliveries: out.dups,
        delayed: out.delayed,
        crash_events: out.crash_events,
        replayed_ops: 0,
        redelivered: out.redelivered,
        recovery_cost: 0.0,
        topology_ops: out.topology_ops,
        hier_repairs: hier.0,
        hier_rebuilds: hier.1,
        hier_repair_units: hier.2,
        hier_divergence: hier.3,
        backlog_depth: Histogram::new(),
        backlog_age: Histogram::new(),
        max_depth: 0,
        max_age: 0,
        publish_cost: Histogram::new(),
        move_cost: Histogram::new(),
        query_cost: Histogram::new(),
        ticks: out.ticks,
        shards,
        final_map_fnv: 0,
        workers,
        wall_secs: 0.0,
        cache: None,
    };
    let mut final_positions: Vec<Option<NodeId>> = vec![None; cfg.stream.objects];
    let mut integrity = 0usize;
    for f in &out.finals {
        let s = &f.stats;
        report.applied += s.applied;
        report.shed += s.shed;
        report.publishes += s.publishes;
        report.moves += s.moves;
        report.queries += s.queries;
        report.superseded += s.superseded;
        report.degraded += s.degraded;
        report.queries_correct += s.queries_correct;
        report.queries_wrong += s.queries_wrong;
        report.fenced += s.fenced;
        report.replayed_ops += s.replayed;
        report.recovery_cost += s.recovery_cost;
        report.backlog_depth.merge(&s.depth_hist);
        report.backlog_age.merge(&s.age_hist);
        report.max_depth = report.max_depth.max(s.max_depth);
        report.max_age = report.max_age.max(s.max_age);
        report.publish_cost.merge(&s.publish_cost);
        report.move_cost.merge(&s.move_cost);
        report.query_cost.merge(&s.query_cost);
        integrity += f.integrity_mismatches;
        for &(o, n) in &f.positions {
            final_positions[o as usize] = Some(n);
        }
    }
    report.final_map_fnv = fnv1a_map(&final_positions);
    report.wall_secs = start.elapsed().as_secs_f64();
    report.cache = bed.oracle.cache_stats();

    if integrity > 0 {
        return Err(SimError::Service(format!(
            "{integrity} ledger positions disagree with their trackers"
        )));
    }
    if !report.accounted() {
        return Err(SimError::Service(format!(
            "silent loss: sent {} != applied {} + shed {} + lost {}",
            report.sent, report.applied, report.shed, report.lost
        )));
    }
    Ok(ServiceOutcome {
        report,
        final_positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bed() -> TestBed {
        TestBed::grid(6, 6, 42).unwrap()
    }

    fn truth(bed: &TestBed, spec: StreamSpec) -> Vec<Option<NodeId>> {
        let mut s = OpStream::new(&bed.graph, spec);
        while s.next_op().is_some() {}
        s.positions().to_vec()
    }

    fn composed_faults(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_rate: 0.2,
            duplicate_rate: 0.1,
            delay_rate: 0.1,
            link_failure_rate: 0.05,
            crashes: 2,
            max_attempts: 8,
        }
    }

    #[test]
    fn clean_run_applies_every_op_and_matches_the_generator() {
        let bed = bed();
        let mut cfg = ServiceConfig::new(StreamSpec::new(10, 400, 7));
        cfg.shards = 4;
        cfg.jobs = 2;
        cfg.batch = 64;
        let out = run_service(&bed, &cfg).unwrap();
        let r = &out.report;
        assert!(r.accounted());
        assert_eq!(r.sent, 400);
        assert_eq!((r.lost, r.shed, r.fenced, r.superseded), (0, 0, 0, 0));
        assert_eq!(r.queries_wrong, 0);
        assert_eq!(out.final_positions, truth(&bed, cfg.stream));
    }

    #[test]
    fn composed_faults_end_bit_identical_to_fault_free() {
        let bed = bed();
        let mut cfg = ServiceConfig::new(StreamSpec::new(10, 600, 3));
        cfg.shards = 4;
        cfg.jobs = 2;
        cfg.batch = 64;
        cfg.faults = composed_faults(11);
        let out = run_service(&bed, &cfg).unwrap();
        let r = &out.report;
        assert!(r.accounted());
        assert_eq!(r.lost, 0, "retry budget absorbs this fault plan");
        assert!(r.dropped_attempts > 0 && r.dup_deliveries > 0 && r.delayed > 0);
        assert!(r.crash_events > 0 && r.redelivered + r.replayed_ops > 0);
        assert_eq!(r.queries_wrong, 0);
        assert_eq!(out.final_positions, truth(&bed, cfg.stream));
    }

    #[test]
    fn report_is_bit_identical_across_worker_counts() {
        let bed = bed();
        let mut cfg = ServiceConfig::new(StreamSpec::new(12, 500, 5));
        cfg.shards = 6;
        cfg.batch = 50;
        cfg.faults = composed_faults(21);
        cfg.jobs = 1;
        let one = run_service(&bed, &cfg).unwrap();
        cfg.jobs = 4;
        let four = run_service(&bed, &cfg).unwrap();
        assert_eq!(
            one.report.deterministic_json(),
            four.report.deterministic_json()
        );
        assert_eq!(one.final_positions, four.final_positions);
    }

    #[test]
    fn overload_degrades_queries_before_shedding_and_never_drops_state() {
        let bed = bed();
        let mut cfg = ServiceConfig::new(StreamSpec {
            query_fraction: 0.6,
            ..StreamSpec::new(6, 600, 9)
        });
        cfg.shards = 1;
        cfg.batch = 60;
        cfg.shard_budget = 4;
        cfg.policy = ShedPolicy {
            degrade_depth: 6,
            shed_depth: 12,
        };
        let out = run_service(&bed, &cfg).unwrap();
        let r = &out.report;
        assert!(r.accounted());
        assert!(r.degraded > 0, "pressure must degrade queries first");
        assert!(r.shed > 0, "this overload is past the shed threshold");
        assert!(r.max_depth > 0 && r.max_age > 0);
        assert_eq!(r.lost, 0);
        assert_eq!(
            out.final_positions,
            truth(&bed, cfg.stream),
            "state ops are never shed, so the map still converges"
        );
    }

    #[test]
    fn retry_exhaustion_is_recorded_never_silent() {
        let bed = bed();
        let mut cfg = ServiceConfig::new(StreamSpec::new(8, 300, 13));
        cfg.shards = 4;
        cfg.jobs = 2;
        cfg.faults = FaultConfig {
            seed: 17,
            drop_rate: 0.9,
            max_attempts: 2,
            ..FaultConfig::default()
        };
        let out = run_service(&bed, &cfg).unwrap();
        let r = &out.report;
        assert!(r.lost > 0, "a 90% drop rate defeats a 2-attempt budget");
        assert!(r.accounted(), "every lost op is in a ledger, not silent");
    }

    #[test]
    fn churn_run_absorbs_topology_deltas_without_divergence() {
        let bed = bed();
        let mut spec = StreamSpec::new(8, 400, 19);
        spec.churn_every = 40;
        let mut cfg = ServiceConfig::new(spec);
        cfg.shards = 4;
        cfg.jobs = 2;
        cfg.batch = 64;
        let out = run_service(&bed, &cfg).unwrap();
        let r = &out.report;
        assert!(r.accounted());
        assert!(r.topology_ops > 0, "the stream must carry churn");
        assert_eq!(r.hier_repairs + r.hier_rebuilds, r.topology_ops);
        assert!(r.hier_repair_units > 0);
        assert_eq!(r.hier_divergence, 0, "repair must match rebuild");
        assert_eq!(r.queries_wrong, 0);
        // Topology ops are control plane: data-plane accounting is
        // complete without them.
        assert_eq!(r.sent + r.topology_ops, cfg.stream.ops);
        assert_eq!(out.final_positions, truth(&bed, cfg.stream));
    }

    #[test]
    fn churn_report_is_bit_identical_across_worker_counts() {
        let bed = bed();
        let mut spec = StreamSpec::new(10, 500, 23);
        spec.churn_every = 50;
        let mut cfg = ServiceConfig::new(spec);
        cfg.shards = 6;
        cfg.batch = 50;
        cfg.faults = composed_faults(29);
        cfg.jobs = 1;
        let one = run_service(&bed, &cfg).unwrap();
        cfg.jobs = 4;
        let four = run_service(&bed, &cfg).unwrap();
        assert_eq!(
            one.report.deterministic_json(),
            four.report.deterministic_json()
        );
        assert_eq!(one.final_positions, four.final_positions);
        assert!(one.report.topology_ops > 0);
    }

    #[test]
    fn report_json_has_deterministic_body_and_wall_trailer() {
        let bed = bed();
        let cfg = ServiceConfig::new(StreamSpec::new(5, 100, 1));
        let out = run_service(&bed, &cfg).unwrap();
        let det = out.report.deterministic_json();
        let full = out.report.to_json();
        assert!(!det.contains("\"wall\""));
        assert!(full.contains("\"wall\"") && full.contains("\"ops_per_sec\""));
        assert!(full.starts_with(&det[..det.len() - 1]));
    }
}
