//! The abstract `d`-dimensional de Bruijn graph.
//!
//! Vertices are the `2^d` binary strings of length `d`; vertex
//! `u₁u₂…u_d` has directed edges to `u₂…u_d·0` and `u₂…u_d·1`. In- and
//! out-degree are 2, the diameter is `d`, and between any two vertices
//! the canonical *shift-in* walk (append the destination's bits after the
//! longest suffix/prefix overlap) is a shortest path.

/// A `d`-dimensional de Bruijn graph over labels `0..2^d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeBruijnGraph {
    dim: u32,
}

impl DeBruijnGraph {
    /// Creates the `d`-dimensional graph. `d = 0` is the single-vertex
    /// graph (used by one-member clusters).
    ///
    /// # Panics
    /// Panics if `dim > 31` (labels are `u32`).
    pub fn new(dim: u32) -> Self {
        assert!(dim <= 31, "de Bruijn dimension {dim} too large");
        DeBruijnGraph { dim }
    }

    /// The smallest graph that can host `size` distinct labels
    /// (`d = ⌈log₂ size⌉`).
    pub fn for_cluster_size(size: usize) -> Self {
        assert!(size >= 1, "cluster must have at least one member");
        let dim = (usize::BITS - (size - 1).leading_zeros()).min(31);
        DeBruijnGraph::new(if size == 1 { 0 } else { dim })
    }

    /// Dimension `d`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of vertices `2^d`.
    pub fn vertex_count(&self) -> u32 {
        1 << self.dim
    }

    fn mask(&self) -> u32 {
        (1u32 << self.dim) - 1
    }

    /// The two out-neighbors of `label` (one when `d = 0`).
    pub fn successors(&self, label: u32) -> Vec<u32> {
        debug_assert!(label < self.vertex_count());
        if self.dim == 0 {
            return vec![0];
        }
        let base = (label << 1) & self.mask();
        if base == base | 1 {
            vec![base]
        } else {
            vec![base, base | 1]
        }
    }

    /// The two in-neighbors of `label`.
    pub fn predecessors(&self, label: u32) -> Vec<u32> {
        debug_assert!(label < self.vertex_count());
        if self.dim == 0 {
            return vec![0];
        }
        let shifted = label >> 1;
        let high = 1u32 << (self.dim - 1);
        let a = shifted;
        let b = shifted | high;
        if a == b {
            vec![a]
        } else {
            vec![a, b]
        }
    }

    /// Length of the longest `k` such that the last `k` bits of `src`
    /// equal the first `k` bits of `dst`.
    fn overlap(&self, src: u32, dst: u32) -> u32 {
        let d = self.dim;
        for k in (0..=d).rev() {
            if k == 0 {
                return 0;
            }
            // last k bits of src
            let suffix = src & ((1u32 << k) - 1);
            // first k bits of dst
            let prefix = dst >> (d - k);
            if suffix == prefix {
                return k;
            }
        }
        0
    }

    /// Number of hops of the canonical route from `src` to `dst`
    /// (`d − overlap`), which is a shortest path.
    pub fn distance(&self, src: u32, dst: u32) -> u32 {
        if src == dst {
            return 0;
        }
        self.dim - self.overlap(src, dst)
    }

    /// The canonical shift-in route `src → … → dst` (inclusive of both
    /// endpoints). Every consecutive pair is a directed edge.
    pub fn route(&self, src: u32, dst: u32) -> Vec<u32> {
        debug_assert!(src < self.vertex_count() && dst < self.vertex_count());
        if src == dst {
            return vec![src];
        }
        let k = self.overlap(src, dst);
        let steps = self.dim - k;
        let mut path = Vec::with_capacity(steps as usize + 1);
        let mut cur = src;
        path.push(cur);
        for i in (0..steps).rev() {
            let bit = (dst >> i) & 1;
            cur = ((cur << 1) | bit) & self.mask();
            path.push(cur);
        }
        debug_assert_eq!(*path.last().unwrap(), dst);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// BFS ground truth for shortest directed distance.
    fn bfs_distance(g: &DeBruijnGraph, src: u32, dst: u32) -> u32 {
        let n = g.vertex_count();
        let mut dist = vec![u32::MAX; n as usize];
        let mut q = VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for v in g.successors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist[dst as usize]
    }

    #[test]
    fn dimension_for_cluster_sizes() {
        assert_eq!(DeBruijnGraph::for_cluster_size(1).dim(), 0);
        assert_eq!(DeBruijnGraph::for_cluster_size(2).dim(), 1);
        assert_eq!(DeBruijnGraph::for_cluster_size(3).dim(), 2);
        assert_eq!(DeBruijnGraph::for_cluster_size(4).dim(), 2);
        assert_eq!(DeBruijnGraph::for_cluster_size(5).dim(), 3);
        assert_eq!(DeBruijnGraph::for_cluster_size(1024).dim(), 10);
    }

    #[test]
    fn degrees_are_at_most_two() {
        let g = DeBruijnGraph::new(4);
        for v in 0..g.vertex_count() {
            assert!(g.successors(v).len() <= 2);
            assert!(g.predecessors(v).len() <= 2);
        }
    }

    #[test]
    fn successors_and_predecessors_are_inverse() {
        let g = DeBruijnGraph::new(5);
        for u in 0..g.vertex_count() {
            for v in g.successors(u) {
                assert!(g.predecessors(v).contains(&u), "{u} -> {v}");
            }
        }
    }

    #[test]
    fn route_follows_edges_and_reaches_destination() {
        let g = DeBruijnGraph::new(6);
        for src in (0..64).step_by(5) {
            for dst in (0..64).step_by(7) {
                let path = g.route(src, dst);
                assert_eq!(*path.first().unwrap(), src);
                assert_eq!(*path.last().unwrap(), dst);
                for w in path.windows(2) {
                    assert!(g.successors(w[0]).contains(&w[1]), "bad hop {w:?}");
                }
                assert_eq!(path.len() as u32 - 1, g.distance(src, dst));
            }
        }
    }

    #[test]
    fn canonical_distance_is_shortest() {
        let g = DeBruijnGraph::new(5);
        for src in 0..g.vertex_count() {
            for dst in 0..g.vertex_count() {
                assert_eq!(
                    g.distance(src, dst),
                    bfs_distance(&g, src, dst),
                    "src={src:05b} dst={dst:05b}"
                );
            }
        }
    }

    #[test]
    fn diameter_is_dimension() {
        let g = DeBruijnGraph::new(4);
        let worst = (0..16)
            .flat_map(|s| (0..16).map(move |t| (s, t)))
            .map(|(s, t)| g.distance(s, t))
            .max()
            .unwrap();
        assert_eq!(worst, 4);
    }

    #[test]
    fn zero_dimension_is_trivial() {
        let g = DeBruijnGraph::new(0);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.distance(0, 0), 0);
        assert_eq!(g.route(0, 0), vec![0]);
    }
}
