//! CSR/workspace vs seed-implementation parity.
//!
//! The flat-CSR graph and the reusable [`DijkstraWorkspace`] replaced
//! an adjacency-list graph and a per-call `BinaryHeap` Dijkstra. The
//! replacement claims *bit-identical* behaviour, not merely equal-up-to
//! -epsilon: distances, parents, and ball memberships drive every
//! downstream tie-break (MIS priorities, default parents, station
//! sets), so any drift cascades into different published figures.
//!
//! These tests re-implement the seed's exact `BinaryHeap` solver inline
//! and compare it against the workspace across every topology
//! generator, plus exercise the one behaviour the seed never had to
//! prove: that a *reused* workspace (stale buffers, grown capacity,
//! interleaved with other workspaces in shuffled call order) returns
//! exactly what a fresh one does.

use mot_net::{generators, DijkstraWorkspace, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The seed repo's heap entry, verbatim: min-heap on distance via
/// reversed comparison, ties broken toward the smaller node id.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed repo's Dijkstra, verbatim: distances, parents, and the
/// settle order (first pop of each node).
fn seed_dijkstra(g: &Graph, source: NodeId) -> (Vec<f64>, Vec<Option<NodeId>>, Vec<NodeId>) {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = Vec::new();
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        settled.push(u);
        for e in g.neighbors(u) {
            let nd = d + e.weight;
            let vi = e.to.index();
            if nd < dist[vi] {
                dist[vi] = nd;
                parent[vi] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    node: e.to,
                });
            }
        }
    }
    (dist, parent, settled)
}

fn suite() -> Vec<(Graph, &'static str)> {
    vec![
        (generators::grid(7, 9).unwrap(), "grid"),
        (generators::torus(6, 6).unwrap(), "torus"),
        (generators::ring(30).unwrap(), "ring"),
        (generators::line(25).unwrap(), "line"),
        (generators::random_tree(60, 5).unwrap(), "tree"),
        (
            generators::random_geometric(70, 9.0, 2.5, 5).unwrap(),
            "geometric",
        ),
        (
            generators::perturbed_grid(7, 7, 0.3, 5).unwrap(),
            "perturbed",
        ),
        (
            generators::clustered(50, 4, 12.0, 3.0, 5).unwrap(),
            "clustered",
        ),
    ]
}

#[test]
fn workspace_matches_seed_solver_on_every_generator() {
    let mut ws = DijkstraWorkspace::new();
    for (g, name) in suite() {
        for src in [0usize, 1, g.node_count() / 2, g.node_count() - 1] {
            let src = NodeId::from_index(src);
            let (dist, parent, settled) = seed_dijkstra(&g, src);
            ws.sssp(&g, src);
            for v in g.nodes() {
                assert_eq!(
                    ws.dist(v).to_bits(),
                    dist[v.index()].to_bits(),
                    "{name}: dist({src} -> {v})"
                );
                assert_eq!(ws.parent(v), parent[v.index()], "{name}: parent({v})");
            }
            assert_eq!(
                ws.settled(),
                &settled[..],
                "{name}: settle order from {src}"
            );
        }
    }
}

#[test]
fn bounded_ball_matches_seed_solver_cut() {
    let mut ws = DijkstraWorkspace::new();
    for (g, name) in suite() {
        let src = NodeId(0);
        let (dist, _, _) = seed_dijkstra(&g, src);
        for radius in [0.0, 1.0, 2.5, 4.0] {
            // The ball is exactly the seed-solver nodes within the
            // radius, sorted by (dist, id) — the settle order.
            let mut expect: Vec<NodeId> = g.nodes().filter(|v| dist[v.index()] <= radius).collect();
            expect.sort_by(|a, b| {
                dist[a.index()]
                    .partial_cmp(&dist[b.index()])
                    .unwrap()
                    .then(a.cmp(b))
            });
            let ball = ws.bounded_ball(&g, src, radius).to_vec();
            assert_eq!(ball, expect, "{name}: ball({src}, {radius})");
        }
    }
}

#[test]
fn interleaved_reused_workspaces_stay_deterministic() {
    // Two workspaces, many graphs, shuffled call order: a reused
    // workspace must never leak state from whatever it ran before.
    let graphs = suite();
    let mut calls: Vec<(usize, usize, usize)> = Vec::new(); // (graph, source, ws)
    for (gi, (g, _)) in graphs.iter().enumerate() {
        for si in [0usize, g.node_count() - 1] {
            calls.push((gi, si, 0));
            calls.push((gi, si, 1));
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    calls.shuffle(&mut rng);

    let mut pool = [DijkstraWorkspace::new(), DijkstraWorkspace::new()];
    for (gi, si, wi) in calls {
        let (g, name) = &graphs[gi];
        let src = NodeId::from_index(si);
        let (dist, parent, _) = seed_dijkstra(g, src);
        let ws = &mut pool[wi];
        ws.sssp(g, src);
        for v in g.nodes() {
            assert_eq!(
                ws.dist(v).to_bits(),
                dist[v.index()].to_bits(),
                "{name}: ws{wi} dist({src} -> {v})"
            );
            assert_eq!(
                ws.parent(v),
                parent[v.index()],
                "{name}: ws{wi} parent({v})"
            );
        }
    }
}
