//! Lazy backend with a pinned hot set.
//!
//! Hierarchy overlays concentrate their distance queries on a small
//! set of structural nodes — cluster leaders, parent-set members,
//! detection-list hosts — that every publish/move/query touches again
//! and again. [`HybridOracle`] keeps [`LazyOracle`]'s on-demand rows
//! for the long tail but lets the overlay [`pin`](HybridOracle::pin)
//! its internal nodes after construction, so the hot rows are computed
//! once and never churn out of the LRU cache regardless of query
//! pattern. Row solves (both pinned and on-demand) go through the
//! inner lazy backend's pooled
//! [`DijkstraWorkspace`](crate::DijkstraWorkspace)s, so warming the pin
//! set allocates nothing beyond the rows themselves.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use super::{DistRow, DistanceOracle, LazyOracle};
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// [`LazyOracle`] plus an explicitly pinned row set.
///
/// # Example
///
/// ```
/// use mot_net::{generators, DistanceOracle, HybridOracle, NodeId};
///
/// let g = generators::grid(4, 4)?;
/// let m = HybridOracle::new(&g)?;
/// m.pin(&[NodeId(0)]); // hot row held outside the LRU forever
/// assert_eq!(m.pinned_rows(), 1);
/// assert_eq!(m.dist(NodeId(0), NodeId(15)), 6.0); // served pinned
/// # Ok::<(), mot_net::NetError>(())
/// ```
pub struct HybridOracle {
    lazy: LazyOracle,
    /// Rows held forever, outside the LRU: source id → row.
    pinned: RwLock<HashMap<u32, Arc<DistRow>>>,
}

impl std::fmt::Debug for HybridOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridOracle")
            .field("node_count", &self.lazy.node_count())
            .field("pinned_rows", &self.pinned_rows())
            .field("cached_rows", &self.lazy.cached_rows())
            .finish()
    }
}

impl HybridOracle {
    /// Validates the graph and creates an oracle with nothing pinned
    /// and the default LRU capacity.
    pub fn new(g: &Graph) -> Result<Self> {
        Ok(HybridOracle {
            lazy: LazyOracle::new(g)?,
            pinned: RwLock::new(HashMap::new()),
        })
    }

    /// As [`HybridOracle::new`] with an explicit LRU row capacity for
    /// the unpinned tail.
    pub fn with_row_capacity(g: &Graph, rows: usize) -> Result<Self> {
        Ok(HybridOracle {
            lazy: LazyOracle::with_row_capacity(g, rows)?,
            pinned: RwLock::new(HashMap::new()),
        })
    }

    /// Pins `nodes`' rows: computes any that are missing and holds them
    /// outside the LRU until the oracle is dropped. Idempotent; callers
    /// typically pass the overlay's internal-node set right after
    /// construction. Takes `&self` — pinning is a cache annotation, not
    /// a logical mutation.
    pub fn pin(&self, nodes: &[NodeId]) {
        // Compute outside the write lock so readers aren't blocked
        // behind Dijkstra runs.
        let missing: Vec<NodeId> = {
            let pinned = self.pinned.read().expect("pinned map poisoned");
            nodes
                .iter()
                .copied()
                .filter(|u| !pinned.contains_key(&u.0))
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let rows: Vec<(u32, Arc<DistRow>)> = missing
            .into_iter()
            .map(|u| (u.0, self.lazy.row(u)))
            .collect();
        let mut pinned = self.pinned.write().expect("pinned map poisoned");
        for (id, row) in rows {
            pinned.entry(id).or_insert(row);
        }
    }

    /// Number of pinned rows.
    pub fn pinned_rows(&self) -> usize {
        self.pinned.read().expect("pinned map poisoned").len()
    }

    /// Heap footprint of pinned plus LRU-cached rows, in bytes. Rows
    /// present in both are counted once per store (the `Arc` shares the
    /// allocation, so this slightly overstates).
    pub fn memory_bytes(&self) -> usize {
        let pinned: usize = self
            .pinned
            .read()
            .expect("pinned map poisoned")
            .values()
            .map(|row| row.bytes())
            .sum();
        pinned + self.lazy.memory_bytes()
    }

    fn row(&self, u: NodeId) -> Arc<DistRow> {
        if let Some(row) = self.pinned.read().expect("pinned map poisoned").get(&u.0) {
            return Arc::clone(row);
        }
        self.lazy.row(u)
    }
}

impl DistanceOracle for HybridOracle {
    fn node_count(&self) -> usize {
        self.lazy.node_count()
    }

    fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        self.row(u).dist(v)
    }

    fn diameter(&self) -> f64 {
        self.lazy.diameter()
    }

    fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        self.row(u).ball(r)
    }

    fn ball_size(&self, u: NodeId, r: f64) -> usize {
        self.row(u).ball_size(r)
    }

    fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        self.row(u).ball_into(r, out)
    }

    fn memory_bytes(&self) -> usize {
        HybridOracle::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::DenseOracle;
    use super::*;
    use crate::generators;

    #[test]
    fn agrees_with_dense_pinned_or_not() {
        let g = generators::random_geometric(45, 8.0, 2.5, 23).unwrap();
        let dense = DenseOracle::build(&g).unwrap();
        let hybrid = HybridOracle::new(&g).unwrap();
        let pins: Vec<NodeId> = g.nodes().step_by(5).collect();
        hybrid.pin(&pins);
        for u in g.nodes() {
            for v in g.nodes().step_by(3) {
                assert_eq!(hybrid.dist(u, v), dense.dist(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn pinned_rows_survive_cache_churn() {
        let g = generators::grid(10, 10).unwrap();
        let hybrid = HybridOracle::with_row_capacity(&g, 1).unwrap();
        hybrid.pin(&[NodeId(0), NodeId(99)]);
        assert_eq!(hybrid.pinned_rows(), 2);
        // Churn the tiny LRU with every other source.
        for u in g.nodes() {
            hybrid.dist(u, NodeId(50));
        }
        // Pinned rows still answer without being recomputed (observable
        // as: pinned set unchanged, distances exact).
        assert_eq!(hybrid.pinned_rows(), 2);
        assert_eq!(hybrid.dist(NodeId(0), NodeId(99)), 18.0);
    }

    #[test]
    fn pin_is_idempotent() {
        let g = generators::grid(5, 5).unwrap();
        let hybrid = HybridOracle::new(&g).unwrap();
        hybrid.pin(&[NodeId(3), NodeId(4)]);
        hybrid.pin(&[NodeId(4), NodeId(3), NodeId(4)]);
        assert_eq!(hybrid.pinned_rows(), 2);
    }

    #[test]
    fn memory_accounts_for_pins() {
        let g = generators::grid(6, 6).unwrap();
        let hybrid = HybridOracle::new(&g).unwrap();
        assert_eq!(hybrid.memory_bytes(), 0);
        hybrid.pin(&[NodeId(0)]);
        assert!(hybrid.memory_bytes() > 0);
    }
}
