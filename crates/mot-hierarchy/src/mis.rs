//! Luby's randomized maximal independent set.
//!
//! The overlay coarsens each level with an MIS (§2.2 cites Luby \[24\]): in
//! every round each undecided node draws a random priority; a node joins
//! the MIS when its priority beats every undecided neighbor's, and then it
//! and its neighbors leave the contest. Expected `O(log n)` rounds. We run
//! the same round structure sequentially (the distributed algorithm's
//! message behaviour is what the paper charges to the *construction* cost,
//! which is a one-time cost outside all cost ratios).

use mot_net::NodeId;
use rand::Rng;

/// Computes a maximal independent set of the graph induced by `nodes` and
/// the symmetric `neighbors` adjacency (indices into `nodes`).
///
/// Returns the selected members of `nodes`. Ties on priority are broken by
/// node id so runs are reproducible for a seeded `rng`.
pub fn luby_mis<R: Rng>(nodes: &[NodeId], neighbors: &[Vec<usize>], rng: &mut R) -> Vec<NodeId> {
    assert_eq!(
        nodes.len(),
        neighbors.len(),
        "adjacency must cover every node"
    );
    let n = nodes.len();
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Undecided,
        InMis,
        Out,
    }
    let mut state = vec![State::Undecided; n];
    let mut undecided = n;
    let mut priority = vec![0u64; n];
    // Hoisted across rounds so the round loop stays allocation-free.
    let mut winners: Vec<usize> = Vec::new();
    while undecided > 0 {
        for i in 0..n {
            if state[i] == State::Undecided {
                priority[i] = rng.gen();
            }
        }
        // A node wins its round when (priority, id) is the local maximum
        // among undecided neighbors.
        winners.clear();
        for i in 0..n {
            if state[i] != State::Undecided {
                continue;
            }
            let key = (priority[i], nodes[i]);
            let beaten = neighbors[i]
                .iter()
                .filter(|&&j| state[j] == State::Undecided)
                .any(|&j| (priority[j], nodes[j]) > key);
            if !beaten {
                winners.push(i);
            }
        }
        debug_assert!(!winners.is_empty(), "Luby round must make progress");
        for &w in &winners {
            if state[w] != State::Undecided {
                continue; // already knocked out by an earlier winner's closure
            }
            state[w] = State::InMis;
            undecided -= 1;
            for &j in &neighbors[w] {
                if state[j] == State::Undecided {
                    state[j] = State::Out;
                    undecided -= 1;
                }
            }
        }
    }
    let mut mis: Vec<NodeId> = (0..n)
        .filter(|&i| state[i] == State::InMis)
        .map(|i| nodes[i])
        .collect();
    mis.sort();
    mis
}

/// Verifies independence and maximality of `mis` within (`nodes`,
/// `neighbors`); used by tests and the overlay validator.
pub fn is_valid_mis(nodes: &[NodeId], neighbors: &[Vec<usize>], mis: &[NodeId]) -> bool {
    let in_mis: std::collections::HashSet<NodeId> = mis.iter().copied().collect();
    for (i, &u) in nodes.iter().enumerate() {
        let u_in = in_mis.contains(&u);
        let neighbor_in = neighbors[i].iter().any(|&j| in_mis.contains(&nodes[j]));
        if u_in && neighbor_in {
            return false; // not independent
        }
        if !u_in && !neighbor_in {
            return false; // not maximal
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_adjacency(n: usize) -> (Vec<NodeId>, Vec<Vec<usize>>) {
        let nodes: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let neighbors = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        (nodes, neighbors)
    }

    #[test]
    fn mis_on_path_is_valid() {
        let (nodes, adj) = path_adjacency(17);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mis = luby_mis(&nodes, &adj, &mut rng);
        assert!(is_valid_mis(&nodes, &adj, &mis));
        // a path MIS has between ceil(n/3) and ceil(n/2) members
        assert!(mis.len() >= 6 && mis.len() <= 9, "|MIS| = {}", mis.len());
    }

    #[test]
    fn mis_on_complete_graph_is_single_node() {
        let n = 12;
        let nodes: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mis = luby_mis(&nodes, &adj, &mut rng);
        assert_eq!(mis.len(), 1);
    }

    #[test]
    fn mis_on_edgeless_graph_is_everything() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId::from_index).collect();
        let adj = vec![Vec::new(); 8];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mis = luby_mis(&nodes, &adj, &mut rng);
        assert_eq!(mis.len(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let (nodes, adj) = path_adjacency(40);
        let a = luby_mis(&nodes, &adj, &mut ChaCha8Rng::seed_from_u64(3));
        let b = luby_mis(&nodes, &adj, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn validator_rejects_bad_sets() {
        let (nodes, adj) = path_adjacency(5);
        // adjacent pair: not independent
        assert!(!is_valid_mis(&nodes, &adj, &[NodeId(0), NodeId(1)]));
        // non-maximal: node 4 uncovered
        assert!(!is_valid_mis(&nodes, &adj, &[NodeId(0)]));
        // valid
        assert!(is_valid_mis(
            &nodes,
            &adj,
            &[NodeId(0), NodeId(2), NodeId(4)]
        ));
    }

    #[test]
    fn empty_input_is_fine() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mis = luby_mis(&[], &[], &mut rng);
        assert!(mis.is_empty());
    }
}
