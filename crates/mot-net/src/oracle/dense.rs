//! Dense all-pairs backend.
//!
//! Hierarchy construction repeatedly asks "which nodes lie within `2^ℓ`
//! of `u`?" and every cost account is a sum of `dist_G(·,·)` terms, so
//! this backend precomputes the full distance matrix once per topology.
//! Sources are solved with Dijkstra in parallel across
//! `std::thread::scope` workers; entries are stored as `f32` (1024² ⇒
//! 4 MiB, 4096² ⇒ 64 MiB) which is far more precision than the
//! unit-normalized weights require.
//!
//! Since the on-demand backends took over past
//! [`OracleKind::DENSE_NODE_LIMIT`](super::OracleKind::DENSE_NODE_LIMIT),
//! this backend's main role is the **opt-in parity verifier**: every
//! other backend quantizes through the same `f32` pipeline, and the
//! differential suites (`--oracle dense` on the CLI,
//! `oracle_differential` / `backend_parity` / `golden_costs` in the
//! tree) pin them bit-identical to the matrix computed here.
//!
//! `ball` queries go through a per-source sorted-by-distance index,
//! built lazily on first touch and cached, so each query is a binary
//! search + slice instead of an O(n) scan.

use std::sync::OnceLock;

use super::DistanceOracle;
use crate::error::NetError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::workspace::DijkstraWorkspace;
use crate::Result;

/// Symmetric all-pairs shortest-path distance matrix.
#[derive(Debug)]
/// # Example
///
/// ```
/// use mot_net::{generators, DenseOracle, DistanceOracle, NodeId};
///
/// let g = generators::grid(4, 4)?;
/// let m = DenseOracle::build(&g)?;
/// // Exact everything: distances, diameter, memory = n² f32 entries.
/// assert_eq!(m.diameter(), 6.0);
/// assert_eq!(m.memory_bytes(), 16 * 16 * 4);
/// # Ok::<(), mot_net::NetError>(())
/// ```
pub struct DenseOracle {
    n: usize,
    data: Vec<f32>,
    diameter: f64,
    /// [`Graph::generation`] at build time. The dense matrix has no
    /// incremental repair path (every row is a function of the whole
    /// topology): under churn it is the **rebuild-only verifier** — the
    /// differential suites rebuild it on the final topology and compare
    /// the incremental backends against it bit for bit (DESIGN.md §17).
    built_generation: u64,
    /// Per-source `(dist, node)` pairs sorted ascending, built lazily:
    /// most sources never serve a `ball` query, and hierarchy
    /// construction only probes a subset per level.
    index: Vec<OnceLock<Vec<(f32, u32)>>>,
}

impl Clone for DenseOracle {
    fn clone(&self) -> Self {
        // OnceLock is not Clone through shared state we want to carry;
        // the sorted indexes rebuild lazily, so a clone starts cold.
        DenseOracle {
            n: self.n,
            data: self.data.clone(),
            diameter: self.diameter,
            built_generation: self.built_generation,
            index: std::iter::repeat_with(OnceLock::new).take(self.n).collect(),
        }
    }
}

impl DenseOracle {
    /// Computes all-pairs shortest paths for a connected graph, in
    /// parallel. Fails with [`NetError::Disconnected`] otherwise.
    pub fn build(g: &Graph) -> Result<Self> {
        if g.node_count() == 0 {
            return Err(NetError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(NetError::Disconnected);
        }
        let n = g.node_count();
        let mut data = vec![0f32; n * n];
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (chunk_idx, chunk) in data.chunks_mut(rows_per * n).enumerate() {
                let start = chunk_idx * rows_per;
                s.spawn(move || {
                    // One workspace per worker: after the first row, each
                    // source solve reuses the same dist/heap buffers.
                    let mut ws = DijkstraWorkspace::with_capacity(n);
                    for (row_off, row) in chunk.chunks_mut(n).enumerate() {
                        let src = NodeId::from_index(start + row_off);
                        ws.sssp(g, src);
                        for (v, cell) in row.iter_mut().enumerate() {
                            *cell = ws.dist(NodeId::from_index(v)) as f32;
                        }
                    }
                });
            }
        });
        // Mutated graphs carry +∞ entries for inactive pairs; the
        // diameter ranges over the reachable (active) pairs.
        let diameter = data
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0f32, f32::max) as f64;
        let index = std::iter::repeat_with(OnceLock::new).take(n).collect();
        Ok(DenseOracle {
            n,
            data,
            diameter,
            built_generation: g.generation(),
            index,
        })
    }

    /// The graph mutation generation this matrix was computed at.
    /// There is deliberately no `apply_delta` here: a fresh
    /// [`DenseOracle::build`] on the mutated topology is the ground
    /// truth the incremental paths are verified against.
    #[inline]
    pub fn built_generation(&self) -> u64 {
        self.built_generation
    }

    #[inline]
    fn row(&self, u: NodeId) -> &[f32] {
        &self.data[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// The sorted-by-(distance, id) view of `u`'s row, built on first
    /// use.
    fn sorted_row(&self, u: NodeId) -> &[(f32, u32)] {
        self.index[u.index()].get_or_init(|| {
            let mut sorted: Vec<(f32, u32)> = self
                .row(u)
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u32))
                .collect();
            sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            sorted
        })
    }

    /// Number of nodes covered by the matrix.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shortest-path distance between `u` and `v`.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        self.data[u.index() * self.n + v.index()] as f64
    }

    /// Network diameter `D = max_{u,v} dist(u, v)` (exact).
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// All nodes within distance `r` of `u` (inclusive; includes `u`) —
    /// the paper's `k`-neighborhood `N(u, r)` — sorted by distance,
    /// ties by node id.
    pub fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        let sorted = self.sorted_row(u);
        let cut = sorted.partition_point(|&(d, _)| (d as f64) <= r);
        sorted[..cut].iter().map(|&(_, i)| NodeId(i)).collect()
    }

    /// See [`DistanceOracle::ball_into`]: the ball prefix copied into a
    /// reused buffer.
    pub fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        let sorted = self.sorted_row(u);
        let cut = sorted.partition_point(|&(d, _)| (d as f64) <= r);
        out.clear();
        out.extend(sorted[..cut].iter().map(|&(_, i)| NodeId(i)));
    }

    /// Number of nodes within distance `r` of `u` (inclusive).
    pub fn ball_size(&self, u: NodeId, r: f64) -> usize {
        self.sorted_row(u)
            .partition_point(|&(d, _)| (d as f64) <= r)
    }

    /// See [`DistanceOracle::nearest_in`].
    pub fn nearest_in(&self, u: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        DistanceOracle::nearest_in(self, u, candidates)
    }

    /// See [`DistanceOracle::walk_length`].
    pub fn walk_length(&self, walk: &[NodeId]) -> f64 {
        DistanceOracle::walk_length(self, walk)
    }

    /// Heap footprint of the matrix plus any built index rows, in
    /// bytes — the number the lazy backends are competing against.
    pub fn memory_bytes(&self) -> usize {
        let matrix = self.data.len() * std::mem::size_of::<f32>();
        let built: usize = self
            .index
            .iter()
            .filter_map(|l| l.get())
            .map(|v| v.len() * std::mem::size_of::<(f32, u32)>())
            .sum();
        matrix + built
    }
}

impl DistanceOracle for DenseOracle {
    fn node_count(&self) -> usize {
        DenseOracle::node_count(self)
    }

    fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        DenseOracle::dist(self, u, v)
    }

    fn diameter(&self) -> f64 {
        DenseOracle::diameter(self)
    }

    fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        DenseOracle::ball(self, u, r)
    }

    fn ball_size(&self, u: NodeId, r: f64) -> usize {
        DenseOracle::ball_size(self, u, r)
    }

    fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        DenseOracle::ball_into(self, u, r, out)
    }

    fn rows_precomputed(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        DenseOracle::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::generators;

    #[test]
    fn matrix_matches_per_source_dijkstra() {
        let g = generators::grid(6, 5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        for s in g.nodes() {
            let d = dijkstra(&g, s);
            for t in g.nodes() {
                assert!(
                    (m.dist(s, t) - d[t.index()]).abs() < 1e-5,
                    "({s},{t}): {} vs {}",
                    m.dist(s, t),
                    d[t.index()]
                );
            }
        }
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let g = generators::random_geometric(60, 8.0, 2.0, 3).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        for u in g.nodes() {
            assert_eq!(m.dist(u, u), 0.0);
            for v in g.nodes() {
                assert!((m.dist(u, v) - m.dist(v, u)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn grid_diameter_is_manhattan_extent() {
        let g = generators::grid(8, 8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        assert_eq!(m.diameter(), 14.0);
    }

    #[test]
    fn ball_queries() {
        let g = generators::grid(5, 5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let center = NodeId(12); // (2,2)
        let b1 = m.ball(center, 1.0);
        assert_eq!(b1.len(), 5); // self + 4 neighbors
        assert!(b1.contains(&center));
        assert_eq!(m.ball_size(center, 0.0), 1);
        assert_eq!(m.ball_size(center, 100.0), 25);
    }

    #[test]
    fn ball_is_sorted_by_distance_then_id() {
        let g = generators::grid(5, 5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let b = m.ball(NodeId(12), 2.0);
        assert_eq!(b[0], NodeId(12)); // distance 0 first
        for w in b.windows(2) {
            let (da, db) = (m.dist(NodeId(12), w[0]), m.dist(NodeId(12), w[1]));
            assert!(da < db || (da == db && w[0] < w[1]), "{w:?} out of order");
        }
    }

    #[test]
    fn ball_index_agrees_with_linear_scan() {
        let g = generators::random_geometric(40, 8.0, 2.5, 11).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        for u in g.nodes() {
            for r in [0.0, 0.5, 1.0, 2.5, 7.0, m.diameter()] {
                let via_index: std::collections::HashSet<_> = m.ball(u, r).into_iter().collect();
                let via_scan: std::collections::HashSet<_> =
                    g.nodes().filter(|&v| m.dist(u, v) <= r).collect();
                assert_eq!(via_index, via_scan, "u = {u}, r = {r}");
                assert_eq!(m.ball_size(u, r), via_scan.len(), "u = {u}, r = {r}");
            }
        }
    }

    #[test]
    fn nearest_in_breaks_ties_by_id() {
        let g = generators::grid(3, 3).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        // nodes 1 and 3 are both at distance 1 from node 0
        let got = m.nearest_in(NodeId(0), &[NodeId(3), NodeId(1)]);
        assert_eq!(got, Some(NodeId(1)));
        assert_eq!(m.nearest_in(NodeId(0), &[]), None);
    }

    #[test]
    fn walk_length_sums_hops() {
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let walk = [NodeId(0), NodeId(4), NodeId(2)];
        assert_eq!(m.walk_length(&walk), 4.0 + 2.0);
        assert_eq!(m.walk_length(&[NodeId(3)]), 0.0);
        assert_eq!(m.walk_length(&[]), 0.0);
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = crate::builder::GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(matches!(
            DenseOracle::build(&g),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn memory_accounting_counts_matrix_and_index() {
        let g = generators::grid(4, 4).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let base = m.memory_bytes();
        assert_eq!(base, 16 * 16 * 4);
        m.ball(NodeId(0), 2.0); // builds one index row
        assert_eq!(m.memory_bytes(), base + 16 * 8);
    }
}
