//! The fault-model interface consulted by [`crate::LossyTransport`].
//!
//! The transport asks the model one question per transmission attempt
//! (lost or not?), one per successful delivery (duplicated or not?), and
//! checks receiver liveness. Implementations must be deterministic for a
//! fixed construction (seeded RNG or script) so every faulty run is
//! replayable; `mot-sim`'s `FaultPlan` is the seeded rate-based
//! implementation, while [`ScriptedFaults`] here drives unit tests.

use mot_net::NodeId;
use std::collections::{HashSet, VecDeque};

/// Decides the fate of individual transmissions. Consulted by the lossy
/// transport in delivery order, so implementations may use a sequential
/// RNG and stay deterministic.
pub trait FaultModel {
    /// Whether this transmission attempt from `src` to `dst` vanishes
    /// (link loss). Consulted once per attempt, retransmissions included.
    fn drop_message(&mut self, src: NodeId, dst: NodeId) -> bool;

    /// Whether a successful delivery spawns one redundant duplicate
    /// (e.g. a lost ack making the sender retransmit anyway).
    fn duplicate_message(&mut self, src: NodeId, dst: NodeId) -> bool;

    /// Whether this delivery is deferred behind the rest of the queue
    /// (timeout-induced reordering). Costs nothing — the message simply
    /// arrives later. Implementations must not answer `true` forever for
    /// the same message or delivery livelocks.
    fn delay_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        false
    }

    /// Whether `u` is currently crashed — its inbox is gone, so every
    /// transmission to it is lost without consulting [`Self::drop_message`].
    fn node_down(&self, _u: NodeId) -> bool {
        false
    }
}

/// The always-clean model: no drops, no duplicates, no crashes. A lossy
/// transport over `NoFaults` bills exactly what the reliable one does.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn drop_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        false
    }
    fn duplicate_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        false
    }
}

/// A scripted model for unit tests: each consultation pops the next
/// decision from its queue, defaulting to "no fault" when the script
/// runs dry. Nodes in `down` are crashed until removed.
#[derive(Debug, Default)]
pub struct ScriptedFaults {
    /// Scripted answers for `drop_message`.
    pub drops: VecDeque<bool>,
    /// Scripted answers for `duplicate_message`.
    pub dups: VecDeque<bool>,
    /// Scripted answers for delay decisions.
    pub delays: VecDeque<bool>,
    /// Nodes currently crashed.
    pub down: HashSet<NodeId>,
}

impl ScriptedFaults {
    /// A script that answers `drop_message` from `script`, never
    /// duplicates, and has no crashed nodes.
    pub fn dropping(script: impl IntoIterator<Item = bool>) -> Self {
        ScriptedFaults {
            drops: script.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A script that answers `duplicate_message` from `script`.
    pub fn duplicating(script: impl IntoIterator<Item = bool>) -> Self {
        ScriptedFaults {
            dups: script.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A script that answers `delay_message` from `script`.
    pub fn delaying(script: impl IntoIterator<Item = bool>) -> Self {
        ScriptedFaults {
            delays: script.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A model where every node in `down` is crashed forever.
    pub fn nodes_down(down: impl IntoIterator<Item = NodeId>) -> Self {
        ScriptedFaults {
            down: down.into_iter().collect(),
            ..Self::default()
        }
    }
}

impl FaultModel for ScriptedFaults {
    fn drop_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        self.drops.pop_front().unwrap_or(false)
    }
    fn duplicate_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        self.dups.pop_front().unwrap_or(false)
    }
    fn delay_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        self.delays.pop_front().unwrap_or(false)
    }
    fn node_down(&self, u: NodeId) -> bool {
        self.down.contains(&u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_model_replays_and_runs_dry_clean() {
        let mut f = ScriptedFaults::dropping([true, false]);
        assert!(f.drop_message(NodeId(0), NodeId(1)));
        assert!(!f.drop_message(NodeId(0), NodeId(1)));
        assert!(!f.drop_message(NodeId(0), NodeId(1)), "dry script is clean");
        assert!(!f.duplicate_message(NodeId(0), NodeId(1)));
        assert!(!f.node_down(NodeId(0)));
        let g = ScriptedFaults::nodes_down([NodeId(3)]);
        assert!(g.node_down(NodeId(3)));
        assert!(!g.node_down(NodeId(2)));
    }

    #[test]
    fn no_faults_is_clean() {
        let mut f = NoFaults;
        assert!(!f.drop_message(NodeId(0), NodeId(1)));
        assert!(!f.duplicate_message(NodeId(0), NodeId(1)));
        assert!(!f.node_down(NodeId(0)));
    }
}
