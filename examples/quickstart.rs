//! Quickstart: track one object on a small sensor grid.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an 8×8 sensor grid, constructs the MOT overlay hierarchy,
//! publishes an object, moves it around, and issues queries — printing
//! the message cost of every operation next to the optimal cost.

use mot_tracking::prelude::*;

fn main() {
    // 1. A sensor deployment: an 8x8 grid (64 sensors, unit spacing).
    let bed = TestBed::grid(8, 8, 42).unwrap();
    println!(
        "network: {} sensors, diameter {}",
        bed.graph.node_count(),
        bed.oracle.diameter()
    );
    println!(
        "overlay: {} levels, root at sensor {}\n",
        bed.overlay.height() + 1,
        bed.overlay.root()
    );

    // 2. The MOT tracker over that overlay.
    let mut tracker = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());

    // 3. A wild object appears at the north-west corner.
    let tiger = ObjectId(0);
    let cost = tracker.publish(tiger, NodeId(0)).unwrap();
    println!("publish at sensor 0:            cost {cost:6.1} (one-time, O(diameter))");

    // 4. It wanders along grid adjacencies; each hand-off updates the
    //    detection lists. Optimal cost per hop is the hop distance (1).
    let path = [1u32, 2, 10, 18, 26, 27, 35, 43, 44, 36];
    let mut total = 0.0;
    for hop in path {
        let mv = tracker.move_object(tiger, NodeId(hop)).unwrap();
        total += mv.cost;
        println!(
            "move {:>2} -> {:>2}:                 cost {:6.1}",
            mv.from, hop, mv.cost
        );
    }
    println!(
        "maintenance cost ratio:         {:.2}  ({} moves, optimal {})\n",
        total / path.len() as f64,
        path.len(),
        path.len()
    );

    // 5. Any sensor can ask "where is the tiger?".
    for from in [NodeId(63), NodeId(7), NodeId(37)] {
        let q = tracker.query(from, tiger).unwrap();
        let optimal = bed.oracle.dist(from, q.proxy);
        println!(
            "query from sensor {:>2}: proxy = sensor {:>2}, cost {:5.1} (optimal {optimal})",
            from, q.proxy, q.cost
        );
    }

    // 6. The structure is consistent: every sensor finds the object.
    let proxy = tracker.proxy_of(tiger).unwrap();
    assert!(bed
        .graph
        .nodes()
        .all(|x| tracker.query(x, tiger).unwrap().proxy == proxy));
    println!(
        "\nall {} sensors resolve the object at sensor {proxy}",
        bed.graph.node_count()
    );
}
