//! Load-balancing clusters and hashed placement (paper §5).
//!
//! Every internal node at level `i` anchors a cluster: all sensors within
//! radius `2^i` of it. The node's detection list is spread over the
//! cluster by `key(o) mod |X|`; a de Bruijn graph embedded in the cluster
//! routes any probe from the cluster center to the entry's holder in
//! `≤ ⌈log |X|⌉` overlay hops with constant per-node routing state.

use crate::object::ObjectId;
use mot_debruijn::Embedding;
use mot_hierarchy::Overlay;
use mot_net::{DistanceOracle, NodeId};
use std::collections::HashMap;

/// Placement of one logical entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// Physical node charged with storing the entry.
    pub holder: NodeId,
    /// Message distance of the de Bruijn route from the cluster center to
    /// the holder (the Corollary 5.2 overhead).
    pub route_cost: f64,
}

/// Precomputed cluster embeddings for every internal-node role of an
/// overlay.
#[derive(Clone, Debug)]
pub struct ClusterTable {
    clusters: HashMap<(u8, NodeId), Embedding>,
}

impl ClusterTable {
    /// Builds the radius-`2^ℓ` cluster (and its de Bruijn embedding)
    /// around every level-`ℓ ≥ 1` member of the overlay.
    pub fn build(overlay: &Overlay, m: &dyn DistanceOracle) -> Self {
        let mut clusters = HashMap::new();
        for level in 1..=overlay.height() {
            let radius = (1u64 << level) as f64;
            for &center in overlay.level_members(level) {
                let mut members = m.ball(center, radius);
                members.sort();
                clusters.insert((level as u8, center), Embedding::new(members));
            }
        }
        ClusterTable { clusters }
    }

    /// The cluster embedding of internal role `(center, level)`, if the
    /// role exists.
    pub fn embedding(&self, center: NodeId, level: usize) -> Option<&Embedding> {
        self.clusters.get(&(level as u8, center))
    }

    /// Where role `(center, level)` stores object `o`, and the de Bruijn
    /// route cost from the center to that holder (§5's hash placement:
    /// label `key(o) mod |X|`).
    ///
    /// Level-0 roles (proxies) are never redistributed; callers handle
    /// that case by storing locally.
    pub fn placement(
        &self,
        center: NodeId,
        level: usize,
        o: ObjectId,
        m: &dyn DistanceOracle,
    ) -> Placement {
        let Some(embedding) = self.embedding(center, level) else {
            // A role outside the table (e.g. level 0) stores locally.
            return Placement {
                holder: center,
                route_cost: 0.0,
            };
        };
        let label = o.key() % embedding.len() as u32;
        let src = embedding
            .label_of(center)
            .expect("cluster center is always a member of its own ball");
        let hosts = embedding.route_hosts(src, label);
        Placement {
            holder: embedding.host(label),
            route_cost: m.walk_length(&hosts),
        }
    }

    /// Number of clusters in the table.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when the overlay had no internal levels.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_hierarchy::{build_doubling, OverlayConfig};
    use mot_net::generators;
    use mot_net::DenseOracle;

    fn setup() -> (Overlay, DenseOracle) {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 5);
        (o, m)
    }

    #[test]
    fn every_internal_role_has_a_cluster() {
        let (o, m) = setup();
        let t = ClusterTable::build(&o, &m);
        let expected: usize = (1..=o.height()).map(|l| o.level_members(l).len()).sum();
        assert_eq!(t.len(), expected);
        assert!(!t.is_empty());
    }

    #[test]
    fn cluster_radius_respected() {
        let (o, m) = setup();
        let t = ClusterTable::build(&o, &m);
        for level in 1..=o.height() {
            let r = (1u64 << level) as f64;
            for &center in o.level_members(level) {
                let e = t.embedding(center, level).unwrap();
                for &member in e.members() {
                    assert!(m.dist(center, member) <= r + 1e-6);
                }
                assert!(e.members().contains(&center));
            }
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_cluster() {
        let (o, m) = setup();
        let t = ClusterTable::build(&o, &m);
        let center = o.level_members(2)[0];
        for key in 0..20 {
            let obj = ObjectId(key);
            let p1 = t.placement(center, 2, obj, &m);
            let p2 = t.placement(center, 2, obj, &m);
            assert_eq!(p1, p2);
            let e = t.embedding(center, 2).unwrap();
            assert!(e.members().contains(&p1.holder));
            assert!(p1.route_cost.is_finite() && p1.route_cost >= 0.0);
        }
    }

    #[test]
    fn placement_spreads_objects_across_cluster() {
        let (o, m) = setup();
        let t = ClusterTable::build(&o, &m);
        // use the root's cluster — largest spread
        let h = o.height();
        let root = o.root();
        let e = t.embedding(root, h).unwrap();
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for key in 0..200 {
            let p = t.placement(root, h, ObjectId(key), &m);
            *counts.entry(p.holder).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // perfectly modular placement over |X| slots: ceil(200/|X|)
        assert!(
            max <= 200usize.div_ceil(e.len()) + 1,
            "max load {max} on cluster of {}",
            e.len()
        );
    }

    #[test]
    fn unknown_role_stores_locally() {
        let (o, m) = setup();
        let t = ClusterTable::build(&o, &m);
        let p = t.placement(NodeId(0), 0, ObjectId(3), &m);
        assert_eq!(p.holder, NodeId(0));
        assert_eq!(p.route_cost, 0.0);
    }
}
