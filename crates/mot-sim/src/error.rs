//! Simulation-level errors.

use mot_core::{CoreError, ObjectId};
use mot_net::{NetError, NodeId};

/// Errors surfaced while driving a tracker through a workload.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The tracker's proxy record no longer matches the workload trace:
    /// at `step`, the trace says `object` moves from `expected`, but the
    /// structure believed it was at `actual`. Either the workload was
    /// generated against a different initial state or the structure
    /// corrupted its records — both invalidate every cost account after
    /// this point, so replay stops here.
    TraceDiverged {
        /// Index of the offending move in `workload.moves`.
        step: usize,
        /// The object whose record diverged.
        object: ObjectId,
        /// Proxy the trace expects the object to move from.
        expected: NodeId,
        /// Proxy the structure actually recorded.
        actual: NodeId,
    },
    /// An error reported by the tracker itself.
    Core(CoreError),
    /// The network layer rejected the topology (disconnected graph,
    /// missing positions, degenerate size) while assembling a bed.
    Net(NetError),
    /// One cell of a fan-out run failed — most commonly a worker panic
    /// caught by [`crate::parallel::ParallelRunner`], surfaced with the
    /// cell's stable key instead of poisoning the pool. Other cells keep
    /// running to completion; the error reported is the failing cell
    /// that comes first in canonical (submission) order, independent of
    /// worker count and scheduling.
    Cell {
        /// Stable identity of the failed experiment cell.
        key: crate::parallel::CellKey,
        /// The panic payload or error message, as text.
        cause: String,
    },
    /// Service mode detected an operational-invariant violation: an op
    /// unaccounted for (silent loss), a shard ledger that disagrees with
    /// its tracker, a worker that died mid-tick, or an event loop that
    /// failed to quiesce after the stream ended. Any of these means the
    /// run's zero-silent-loss guarantee does not hold, so the run is
    /// rejected rather than reported.
    Service(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TraceDiverged {
                step,
                object,
                expected,
                actual,
            } => write!(
                f,
                "replay diverged from trace at move {step}: object {object:?} \
                 expected at {expected}, structure records {actual}"
            ),
            SimError::Core(e) => write!(f, "tracker error: {e}"),
            SimError::Net(e) => write!(f, "network error: {e}"),
            SimError::Cell { key, cause } => {
                write!(f, "experiment cell {key} failed: {cause}")
            }
            SimError::Service(msg) => write!(f, "service invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<NetError> for SimError {
    fn from(e: NetError) -> Self {
        SimError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_divergence() {
        let e = SimError::TraceDiverged {
            step: 7,
            object: ObjectId(2),
            expected: NodeId(3),
            actual: NodeId(5),
        };
        let msg = e.to_string();
        assert!(msg.contains("move 7"), "{msg}");
        assert!(msg.contains('3') && msg.contains('5'), "{msg}");
    }

    #[test]
    fn core_errors_convert() {
        let core = CoreError::UnknownObject(ObjectId(1));
        let sim: SimError = core.clone().into();
        assert_eq!(sim, SimError::Core(core));
    }
}
