//! Property-based tests over the whole stack: random topologies, random
//! workloads, adversarial churn — checking the invariants the
//! correctness of tracking rests on.
//!
//! The harness is hand-rolled (the environment vendors no proptest):
//! every property is exercised over a deterministic sweep of seeded
//! random cases, so failures reproduce exactly by case number.

use mot_tracking::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 24;

/// Per-property, per-case generator: independent, reproducible streams.
fn case_rng(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(property.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case)
}

/// A connected random-geometric deployment of 10..=60 sensors.
fn deployment(rng: &mut ChaCha8Rng) -> Graph {
    let n = rng.gen_range(10usize..=60);
    let seed = rng.gen_range(0u64..1000);
    generators::random_geometric(n, 8.0, 2.5, seed).expect("connected deployment")
}

/// The distance oracle is a metric: symmetric, zero diagonal, triangle
/// inequality.
#[test]
fn distance_oracle_is_a_metric() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let g = deployment(&mut rng);
        let m = DenseOracle::build(&g).unwrap();
        let n = g.node_count();
        // Tolerances scale with the distances involved: entries are f32,
        // and weight normalization (min edge weight = 1) can push
        // distances into the thousands where a fixed 1e-4 is below one
        // f32 ULP.
        let tol = |scale: f64| 1e-4 + scale.abs() * 1e-6;
        for i in 0..n.min(12) {
            for j in 0..n.min(12) {
                let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
                let duv = m.dist(u, v);
                assert!((duv - m.dist(v, u)).abs() < tol(duv), "case {case}");
                if i == j {
                    assert_eq!(duv, 0.0, "case {case}");
                }
                for k in 0..n.min(8) {
                    let w = NodeId::from_index(k);
                    let detour = m.dist(u, w) + m.dist(w, v);
                    assert!(
                        duv <= detour + tol(detour),
                        "case {case}: triangle violated at ({u}, {v}, {w}): {duv} > {detour}"
                    );
                }
            }
        }
    }
}

/// The core reachability invariant: after ANY sequence of random moves,
/// every sensor's query returns the object's true proxy, in plain and
/// load-balanced mode.
#[test]
fn queries_always_find_the_true_proxy() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let g = deployment(&mut rng);
        let move_count = rng.gen_range(1usize..80);
        let lb: bool = rng.gen();
        let overlay_seed = rng.gen_range(0u64..100);
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), overlay_seed);
        let cfg = if lb {
            MotConfig::load_balanced()
        } else {
            MotConfig::plain()
        };
        let mut t = MotTracker::new(&overlay, &m, cfg);
        let o = ObjectId(0);
        let mut proxy = NodeId(0);
        t.publish(o, proxy).unwrap();
        for _ in 0..move_count {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[rng.gen_range(0..nbrs.len())].to;
            t.move_object(o, proxy).unwrap();
        }
        t.check_invariants();
        for x in g.nodes() {
            let q = t.query(x, o).unwrap();
            assert_eq!(q.proxy, proxy, "case {case}: query from {x}");
            assert!(q.cost.is_finite() && q.cost >= 0.0, "case {case}");
        }
    }
}

/// Lemma 2.1 with the paper's constants: detection paths of nodes at
/// distance d meet by level ceil(log2 d) + 1.
#[test]
fn detection_paths_meet_at_the_lemma_level() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let g = deployment(&mut rng);
        let seed = rng.gen_range(0u64..50);
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::paper_exact(), seed);
        let n = g.node_count();
        for i in (0..n).step_by(3) {
            for j in (1..n).step_by(5) {
                let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
                if u == v {
                    continue;
                }
                let d = m.dist(u, v);
                let bound = (((d.log2().ceil()) as i64).max(0) as usize + 1).min(overlay.height());
                assert!(
                    overlay.meet_level(u, v) <= bound,
                    "case {case}: meet({}, {}) = {} > {} (d = {})",
                    u,
                    v,
                    overlay.meet_level(u, v),
                    bound,
                    d
                );
            }
        }
    }
}

/// Message-pruning-tree invariant: after any move sequence the
/// detection sets of a tree baseline are exactly the proxy's tree
/// ancestors.
#[test]
fn tree_detection_sets_are_proxy_ancestors() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let g = deployment(&mut rng);
        let move_count = rng.gen_range(1usize..60);
        let m = DenseOracle::build(&g).unwrap();
        let rates = DetectionRates::uniform(&g);
        let tree = build_stun(&g, &rates);
        let mut t = TreeTracker::new("STUN", tree, &m, false);
        let o = ObjectId(0);
        let mut proxy = NodeId(0);
        t.publish(o, proxy).unwrap();
        for _ in 0..move_count {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[rng.gen_range(0..nbrs.len())].to;
            t.move_object(o, proxy).unwrap();
        }
        // expected ancestor chain
        let mut expected = std::collections::HashSet::new();
        let mut cur = Some(proxy);
        while let Some(u) = cur {
            expected.insert(u);
            cur = t.tree().parent(u);
        }
        for u in g.nodes() {
            assert_eq!(t.holds(u, o), expected.contains(&u), "case {case}: at {u}");
        }
        let total: usize = t.node_loads().iter().sum();
        assert_eq!(total, expected.len(), "case {case}");
    }
}

/// de Bruijn canonical routing is a shortest path for every dimension
/// and label pair.
#[test]
fn debruijn_routing_is_shortest() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let dim = rng.gen_range(0u32..9);
        let g = DeBruijnGraph::new(dim);
        let mask = g.vertex_count() - 1;
        let (src, dst) = (rng.gen::<u32>() & mask, rng.gen::<u32>() & mask);
        let route = g.route(src, dst);
        assert_eq!(route[0], src, "case {case}");
        assert_eq!(*route.last().unwrap(), dst, "case {case}");
        for w in route.windows(2) {
            assert!(g.successors(w[0]).contains(&w[1]), "case {case}");
        }
        assert!(route.len() as u32 - 1 <= dim, "case {case}");
    }
}

/// Dynamic clusters stay routable through arbitrary churn: after any
/// join/leave sequence every virtual label routes to a live member.
#[test]
fn dynamic_cluster_stays_routable() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let op_count = rng.gen_range(1usize..60);
        let mut c = DynamicCluster::new((0..4u32).map(NodeId).collect());
        let mut next_id = 100u32;
        for _ in 0..op_count {
            let join: bool = rng.gen();
            if join || c.members().len() <= 1 {
                c.join(NodeId(next_id));
                next_id += 1;
            } else {
                let idx = rng.gen_range(0..c.members().len());
                let victim = c.members()[idx];
                c.leave(victim);
            }
            let e = c.embedding();
            assert!(e.members().contains(&c.leader()), "case {case}");
            for label in 0..e.graph().vertex_count() {
                assert!(e.members().contains(&e.host(label)), "case {case}");
            }
            // every member can route to the leader
            let leader_label = e.label_of(c.leader()).unwrap();
            for &mm in e.members() {
                let src = e.label_of(mm).unwrap();
                let hosts = e.route_hosts(src, leader_label);
                assert_eq!(*hosts.last().unwrap(), c.leader(), "case {case}");
            }
        }
    }
}

/// Workload generation always produces valid adjacent chains.
#[test]
fn workloads_are_valid_walks() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let g = deployment(&mut rng);
        let objects = rng.gen_range(1usize..6);
        let moves = rng.gen_range(1usize..50);
        let seed = rng.gen_range(0u64..500);
        let w = WorkloadSpec::new(objects, moves, seed).generate(&g);
        let mut pos = w.initial.clone();
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to), "case {case}");
            assert_eq!(m.from, pos[m.object.index()], "case {case}");
            pos[m.object.index()] = m.to;
        }
    }
}
