//! Bit-parity between the optimized and frozen doubling builders.
//!
//! The optimized [`build_doubling_balls`] replaced the reference
//! builder's `O(k²)` oracle scans with radius-bounded Dijkstra over the
//! CSR graph plus f32 re-quantization of every distance before each
//! predicate. These tests pin the claim that the rewrite changed
//! *nothing* about the output: identical levels, identical detection
//! paths, on every topology generator and several seeds and configs.
//! The adaptive front door [`build_doubling`] dispatches between the
//! two by node count and backend, so a dedicated crossover test pins
//! all three entry points identical on both sides of the threshold and
//! across precomputed vs on-demand oracles.

use mot_hierarchy::{
    build_doubling, build_doubling_balls, reference_build_doubling, Overlay, OverlayConfig,
    ADAPTIVE_CROSSOVER_NODES,
};
use mot_net::{generators, CachedOracle, DenseOracle, DistanceOracle, Graph};

/// Compares two overlays through the public accessors only.
fn assert_overlays_identical(a: &Overlay, b: &Overlay, ctx: &str) {
    assert_eq!(a.kind(), b.kind(), "{ctx}: kind");
    assert_eq!(a.height(), b.height(), "{ctx}: height");
    assert_eq!(a.node_count(), b.node_count(), "{ctx}: node count");
    assert_eq!(a.sp_gap(), b.sp_gap(), "{ctx}: sp_gap");
    for l in 0..=a.height() {
        assert_eq!(a.level_members(l), b.level_members(l), "{ctx}: level {l}");
    }
    for u in 0..a.node_count() {
        let u = mot_net::NodeId::from_index(u);
        for l in 0..=a.height() {
            assert_eq!(a.station(u, l), b.station(u, l), "{ctx}: station({u},{l})");
        }
    }
}

fn check(g: &Graph, seed: u64, cfg: &OverlayConfig, ctx: &str) {
    let m = DenseOracle::build(g).unwrap();
    // Compare the ball builder directly (not through the adaptive
    // dispatch, which would pick the reference itself on these small
    // topologies and make the comparison vacuous).
    let fast = build_doubling_balls(g, &m, cfg, seed);
    let reference = reference_build_doubling(g, &m, cfg, seed);
    assert_overlays_identical(&fast, &reference, ctx);
}

#[test]
fn parity_on_grids() {
    for (rows, cols) in [(1, 1), (1, 7), (5, 5), (9, 6), (12, 12)] {
        let g = generators::grid(rows, cols).unwrap();
        for seed in [0, 1, 7] {
            check(
                &g,
                seed,
                &OverlayConfig::practical(),
                &format!("grid {rows}x{cols} seed {seed}"),
            );
        }
    }
}

#[test]
fn parity_on_torus_ring_line() {
    for (g, name) in [
        (generators::torus(6, 6).unwrap(), "torus 6x6"),
        (generators::ring(40).unwrap(), "ring 40"),
        (generators::line(33).unwrap(), "line 33"),
    ] {
        for seed in [2, 11] {
            check(
                &g,
                seed,
                &OverlayConfig::practical(),
                &format!("{name} seed {seed}"),
            );
        }
    }
}

#[test]
fn parity_on_random_topologies() {
    for seed in [3, 13] {
        let g = generators::random_tree(80, seed).unwrap();
        check(
            &g,
            seed,
            &OverlayConfig::practical(),
            &format!("tree seed {seed}"),
        );

        let g = generators::random_geometric(70, 9.0, 2.5, seed).unwrap();
        check(
            &g,
            seed,
            &OverlayConfig::practical(),
            &format!("geometric seed {seed}"),
        );

        let g = generators::perturbed_grid(8, 8, 0.3, seed).unwrap();
        check(
            &g,
            seed,
            &OverlayConfig::practical(),
            &format!("perturbed seed {seed}"),
        );

        let g = generators::clustered(60, 4, 12.0, 3.0, seed).unwrap();
        check(
            &g,
            seed,
            &OverlayConfig::practical(),
            &format!("clustered seed {seed}"),
        );
    }
}

#[test]
fn adaptive_dispatch_is_bit_identical_across_the_crossover() {
    // 31×33 = 1023 nodes (reference side) and 32×32 = 1024 nodes (ball
    // side) straddle the threshold; on both, the adaptive entry point,
    // the ball builder, and the frozen reference must agree bit-for-bit
    // through every public accessor.
    assert_eq!(ADAPTIVE_CROSSOVER_NODES, 1024);
    for (rows, cols) in [(31, 33), (32, 32)] {
        let g = generators::grid(rows, cols).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let cfg = OverlayConfig::practical();
        let adaptive = build_doubling(&g, &m, &cfg, 7);
        let balls = build_doubling_balls(&g, &m, &cfg, 7);
        let reference = reference_build_doubling(&g, &m, &cfg, 7);
        let ctx = format!("crossover grid {rows}x{cols}");
        assert_overlays_identical(&adaptive, &balls, &ctx);
        assert_overlays_identical(&adaptive, &reference, &ctx);
    }
}

#[test]
fn adaptive_dispatch_is_bit_identical_across_backends() {
    // Below the node crossover the dispatch also branches on the
    // backend: reference builder on precomputed rows (dense), ball
    // builder on on-demand backends (whose row scans would each pay a
    // Dijkstra solve). The overlay must not care which path ran.
    let g = generators::grid(12, 12).unwrap();
    let cfg = OverlayConfig::practical();
    let dense = DenseOracle::build(&g).unwrap();
    let cached = CachedOracle::new(&g).unwrap();
    assert!(dense.rows_precomputed() && !cached.rows_precomputed());
    let via_dense = build_doubling(&g, &dense, &cfg, 7);
    let via_cached = build_doubling(&g, &cached, &cfg, 7);
    assert_overlays_identical(&via_dense, &via_cached, "backend dispatch 12x12");
}

#[test]
fn parity_across_configs() {
    let g = generators::grid(8, 8).unwrap();
    for cfg in [
        OverlayConfig::practical(),
        OverlayConfig::paper_exact(),
        OverlayConfig::singleton_parents(),
    ] {
        check(&g, 5, &cfg, &format!("grid 8x8 cfg {cfg:?}"));
    }
}
