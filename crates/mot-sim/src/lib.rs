//! Simulation harness for the MOT evaluation (paper §8).
//!
//! Builds workloads (mobility traces + query batches), drives any
//! [`mot_core::Tracker`] through them in the paper's two execution modes,
//! and aggregates the metrics the figures report:
//!
//! * [`mobility`] — object mobility models and workload generation
//!   (adjacent random walks, shortest-path waypoint tours, and the
//!   scenario suite's Lévy flights, hotspot flows, and ping-pong
//!   adversaries — DESIGN.md §18),
//! * [`scenario`] — query-popularity models (uniform / Zipf-skewed)
//!   and the model-aware query runner with per-object popularity
//!   reporting,
//! * [`run`] — one-by-one execution: publish, replay moves, issue
//!   queries, with cost-ratio accounting against the optimal costs,
//! * [`faults`] — seeded, replayable fault plans (message loss,
//!   duplication, delay, link failures, sensor crashes) and the faulty
//!   replay/query harness that exercises tracker self-repair,
//! * [`concurrent`] — the discrete-event engine for concurrent
//!   executions: message latency = distance, per-level forwarding periods
//!   `Φ(i) ∝ 2^i` (§4.1.2), bounded in-flight operations per object,
//!   queries that chase moving objects (§4.2.2),
//! * [`metrics`] — cost and load statistics (ratios, histograms,
//!   fairness),
//! * [`parallel`] — the deterministic fan-out engine: a
//!   [`ParallelRunner`] worker pool over independent *(figure × size ×
//!   algo × seed)* cells whose output is bit-identical for 1 worker and
//!   N workers (cell-keyed RNG streams, canonical merge order —
//!   DESIGN.md §12),
//! * [`stream`] + [`service`] — service mode (DESIGN.md §15): a seeded
//!   publish/move/query op stream and the long-lived sharded event loop
//!   that survives composed fault plans with zero silent loss —
//!   exactly-once admission ledgers, attempt fencing, crash re-adoption
//!   with bounded replay, and a measured backlog with a degrade/shed
//!   policy,
//! * [`testbed`] — one-stop construction of a topology, its distance
//!   oracle, overlay, and any of the six trackers the experiments
//!   compare.
//!
//! # Example
//!
//! ```
//! use mot_sim::{replay_moves, run_publish, run_queries, Algo, TestBed, WorkloadSpec};
//! use mot_baselines::DetectionRates;
//!
//! let bed = TestBed::grid(6, 6, 42)?;
//! let w = WorkloadSpec::new(3, 50, 1).generate(&bed.graph);
//! let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
//!
//! let mut tracker = bed.make_tracker(Algo::Mot, &rates)?;
//! run_publish(tracker.as_mut(), &w)?;
//! let maint = replay_moves(tracker.as_mut(), &w, &bed.oracle)?;
//! assert!(maint.ratio() >= 1.0); // nothing beats the optimal cost
//!
//! let queries = run_queries(tracker.as_ref(), &bed.oracle, 3, 50, 2)?;
//! assert_eq!(queries.correct, 50); // every query finds the true proxy
//! # Ok::<(), mot_sim::SimError>(())
//! ```
//!
//! # Place in the workspace
//!
//! The execution layer of the DAG: builds on every algorithm crate
//! (`mot-core`, `mot-baselines`, `mot-proto`) and their substrates;
//! only `mot-bench` sits above it. Implements the paper's §8
//! methodology; every figure's workload and cost account comes from
//! here. See DESIGN.md §3, §6 (faults), §11 (observability), and §12
//! (determinism contract).

#![warn(missing_docs)]

pub mod concurrent;
pub mod error;
pub mod faults;
pub mod io;
pub mod metrics;
pub mod mobility;
pub mod parallel;
pub mod run;
pub mod scenario;
pub mod service;
pub mod stream;
pub mod testbed;

pub use concurrent::{ConcurrentConfig, ConcurrentEngine};
pub use error::SimError;
pub use faults::{
    repair_all, replay_moves_faulty, run_queries_faulty, unrepaired_objects, FaultConfig,
    FaultPlan, FaultyQueryStats, FaultyRunStats,
};
pub use io::{load_workload, save_workload, validate_against};
pub use metrics::{
    CostStats, Histogram, LevelLedger, LoadStats, Profiler, Recorder, Summary, TraceAggregates,
};
pub use mobility::{MobilityModel, MoveOp, Workload, WorkloadSpec};
pub use parallel::{CellKey, Keyed, ParallelRunner};
pub use run::{
    replay_moves, replay_moves_observed, run_local_queries, run_publish, run_queries,
    run_queries_observed, QueryBatchStats,
};
pub use scenario::{run_queries_model, QueryModel, ScenarioQueryStats, ZipfSampler};
pub use service::{run_service, ServiceConfig, ServiceOutcome, ServiceReport, ShedPolicy};
pub use stream::{OpEnvelope, OpStream, ServiceOp, StreamSpec};
pub use testbed::{Algo, TestBed};
