//! Cost and load statistics, plus the aggregation side of the
//! observability layer: per-level cost ledgers, mergeable log-spaced
//! histograms, a trace-consuming [`Recorder`], and a wall-clock
//! [`Profiler`] scope guard.

use mot_core::{fmt_f64, LedgerKind, ObjectId, OpKind, TraceEvent, TraceSink};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Accumulated algorithm-vs-optimal communication cost.
///
/// # Example
///
/// ```
/// use mot_sim::CostStats;
///
/// let mut s = CostStats::default();
/// s.record(3.0, 2.0); // algorithm paid 3, the optimal was 2
/// s.record(2.0, 2.0);
/// assert_eq!(s.ratio(), 5.0 / 4.0); // amortized C(E)/C*(E)
/// assert_eq!(s.mean_ratio(), (1.5 + 1.0) / 2.0); // per-op mean
///
/// // merging is exact and order-independent in the totals
/// let mut t = CostStats::default();
/// t.merge(&s);
/// assert_eq!(t.ratio(), s.ratio());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostStats {
    /// Total message distance spent by the algorithm.
    pub total: f64,
    /// Total optimal cost (sum of `dist(u_i, v_i)` for maintenance; sum
    /// of `dist(querier, proxy)` for queries).
    pub optimal: f64,
    /// Sum of per-operation ratios (for operations with positive optimal
    /// cost).
    pub ratio_sum: f64,
    /// Number of operations accumulated.
    pub operations: usize,
    /// Operations whose optimal cost was zero. A per-operation ratio is
    /// undefined for these, so they are counted here and excluded from
    /// `ratio_sum` instead of being invented as ratio 1 (which would
    /// understate `mean_ratio` whenever the algorithm paid a positive
    /// cost against a zero optimal).
    pub zero_optimal_ops: usize,
}

impl CostStats {
    /// Folds one operation in.
    pub fn record(&mut self, cost: f64, optimal: f64) {
        self.total += cost;
        self.optimal += optimal;
        if optimal > 0.0 {
            self.ratio_sum += cost / optimal;
        } else {
            self.zero_optimal_ops += 1;
        }
        self.operations += 1;
    }

    /// The amortized cost ratio `C(E) / C*(E)` — the metric of the
    /// maintenance analysis (a *sequence* of operations is charged
    /// against the optimal for the whole sequence). 1.0 when no optimal
    /// cost has accrued.
    pub fn ratio(&self) -> f64 {
        if self.optimal <= 0.0 {
            1.0
        } else {
            self.total / self.optimal
        }
    }

    /// Mean of per-operation ratios over the operations that have one
    /// (positive optimal cost) — the metric of the query analysis
    /// (each query is charged against its own optimal, Theorem 4.11).
    pub fn mean_ratio(&self) -> f64 {
        let ratioed = self.operations - self.zero_optimal_ops;
        if ratioed == 0 {
            1.0
        } else {
            self.ratio_sum / ratioed as f64
        }
    }

    /// Merges another accumulator (e.g. across seeds).
    pub fn merge(&mut self, other: &CostStats) {
        self.total += other.total;
        self.optimal += other.optimal;
        self.ratio_sum += other.ratio_sum;
        self.operations += other.operations;
        self.zero_optimal_ops += other.zero_optimal_ops;
    }
}

/// Mean and (sample) standard deviation of a series of repeated
/// measurements — used when reporting across seeds.
///
/// # Example
///
/// ```
/// use mot_sim::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.stddev, 1.0);
/// assert_eq!(s.count, 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl Summary {
    /// Summarizes a slice of samples.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Summary {
            mean,
            stddev: var.sqrt(),
            count: n,
        }
    }
}

/// Snapshot statistics over per-node loads (Figs. 8–11).
///
/// # Example
///
/// ```
/// use mot_sim::LoadStats;
///
/// let s = LoadStats::from_loads(&[0, 1, 1, 2]);
/// assert_eq!(s.max, 2);
/// assert_eq!(s.mean, 1.0);
/// assert_eq!(s.nodes_above_10, 0);
/// assert!(s.jain_index <= 1.0); // 1.0 = perfectly even
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LoadStats {
    /// Largest per-node load.
    pub max: usize,
    /// Mean per-node load.
    pub mean: f64,
    /// Number of nodes with load strictly greater than 10 — the
    /// threshold the paper's load figures call out.
    pub nodes_above_10: usize,
    /// Jain's fairness index in `(0, 1]`; 1 = perfectly even.
    pub jain_index: f64,
    /// Histogram over fixed bins: `[0, 1, 2, 3-5, 6-10, >10]`.
    pub histogram: [usize; 6],
}

impl LoadStats {
    /// Computes statistics from a per-node load vector.
    pub fn from_loads(loads: &[usize]) -> LoadStats {
        let n = loads.len().max(1);
        let sum: usize = loads.iter().sum();
        let sum_sq: f64 = loads.iter().map(|&l| (l * l) as f64).sum();
        let jain = if sum == 0 {
            1.0
        } else {
            (sum as f64 * sum as f64) / (n as f64 * sum_sq)
        };
        let mut histogram = [0usize; 6];
        for &l in loads {
            let bin = match l {
                0 => 0,
                1 => 1,
                2 => 2,
                3..=5 => 3,
                6..=10 => 4,
                _ => 5,
            };
            histogram[bin] += 1;
        }
        LoadStats {
            max: loads.iter().copied().max().unwrap_or(0),
            mean: sum as f64 / n as f64,
            nodes_above_10: loads.iter().filter(|&&l| l > 10).count(),
            jain_index: jain,
            histogram,
        }
    }
}

/// Number of buckets in a [`Histogram`]. Bucket 0 covers `[0, 1)`;
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i)`; the last bucket also absorbs
/// everything beyond its upper edge, so `2^30` (~1e9) is the largest
/// resolvable value — far above any message distance in the suite.
pub const HIST_BUCKETS: usize = 32;

/// A fixed log-spaced histogram of non-negative samples.
///
/// The bucket edges are powers of two and never depend on the data, so
/// histograms from different seeds (or different runs entirely) merge
/// bucket-by-bucket without rebinning.
///
/// # Example
///
/// ```
/// use mot_sim::Histogram;
///
/// let mut a = Histogram::new();
/// a.record(0.5); // bucket 0: [0, 1)
/// a.record(3.0); // bucket 2: [2, 4)
/// let mut b = Histogram::new();
/// b.record(3.5);
/// a.merge(&b); // exact: same fixed buckets, no rebinning
/// assert_eq!(a.count, 3);
/// assert_eq!(a.buckets[2], 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Sample counts per fixed power-of-two bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (for the mean; exact, unlike the buckets).
    pub sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a sample lands in (negative samples clamp to 0).
    pub fn bucket_index(x: f64) -> usize {
        if x < 1.0 {
            return 0;
        }
        // [2^(i-1), 2^i) for i >= 1; log2(x) in [i-1, i)
        let i = x.log2().floor() as usize + 1;
        i.min(HIST_BUCKETS - 1)
    }

    /// The `[lo, hi)` range of bucket `i` (the last bucket's `hi` is
    /// `f64::INFINITY`).
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < HIST_BUCKETS, "bucket out of range");
        let lo = if i == 0 {
            0.0
        } else {
            (1u64 << (i - 1)) as f64
        };
        let hi = if i == HIST_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (1u64 << i) as f64
        };
        (lo, hi)
    }

    /// Folds one sample in.
    pub fn record(&mut self, x: f64) {
        self.buckets[Self::bucket_index(x)] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Merges another histogram (e.g. across seeds). Exact: buckets are
    /// fixed, so merging N per-seed histograms equals one histogram fed
    /// all N sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Index of the highest non-empty bucket, if any sample was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Approximate quantile at power-of-two resolution: the upper edge
    /// of the first bucket whose cumulative count reaches `q · count`
    /// (its lower edge for the unbounded last bucket). Deterministic and
    /// mergeable — the p50/p99 figures service mode reports — unlike an
    /// exact percentile it costs no sample retention.
    ///
    /// Boundary semantics: `quantile(0.0)` is the *lower* edge of the
    /// first non-empty bucket (the p0 is the smallest sample's bucket
    /// floor, not a rank-1 upper bound); `quantile(1.0)` is the bound of
    /// the last non-empty bucket, like every interior quantile whose
    /// rank falls there. An empty histogram answers 0.0 at every `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        if q == 0.0 {
            let first = self
                .buckets
                .iter()
                .position(|&c| c > 0)
                .expect("count > 0 means some bucket is non-empty");
            return Self::bucket_bounds(first).0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                return if hi.is_finite() { hi } else { lo };
            }
        }
        unreachable!("cumulative count reaches total count");
    }

    /// JSON rendering: `{"count":N,"sum":S,"buckets":[...]}` with the
    /// trailing run of empty buckets trimmed.
    pub fn to_json(&self) -> String {
        let used = self.max_bucket().map_or(0, |i| i + 1);
        let buckets: Vec<String> = self.buckets[..used].iter().map(u64::to_string).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            self.count,
            fmt_f64(self.sum),
            buckets.join(",")
        )
    }
}

/// Message distance decomposed by hierarchy level and ledger kind — the
/// aggregation behind the per-level cost-decomposition table that checks
/// the geometric decay of MOT's level-ℓ maintenance spend.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelLedger {
    /// `levels[l][k]` = distance billed at level `l` under
    /// `LedgerKind::all()[k]`. Grows on demand.
    levels: Vec<[f64; 6]>,
}

impl LevelLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn kind_index(kind: LedgerKind) -> usize {
        LedgerKind::all()
            .iter()
            .position(|&k| k == kind)
            .expect("all() covers every kind")
    }

    /// Bills `dist` at `level` under `kind`.
    pub fn add(&mut self, level: usize, kind: LedgerKind, dist: f64) {
        if level >= self.levels.len() {
            self.levels.resize(level + 1, [0.0; 6]);
        }
        self.levels[level][Self::kind_index(kind)] += dist;
    }

    /// Number of levels with any billing (the vector's length).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Distance billed at `level` under `kind` (0.0 beyond the recorded
    /// height).
    pub fn get(&self, level: usize, kind: LedgerKind) -> f64 {
        self.levels
            .get(level)
            .map_or(0.0, |row| row[Self::kind_index(kind)])
    }

    /// Total distance billed at `level` across all ledgers.
    pub fn level_total(&self, level: usize) -> f64 {
        self.levels.get(level).map_or(0.0, |row| row.iter().sum())
    }

    /// Total distance billed under `kind` across all levels.
    pub fn ledger_total(&self, kind: LedgerKind) -> f64 {
        let k = Self::kind_index(kind);
        self.levels.iter().map(|row| row[k]).sum()
    }

    /// Grand total across levels and ledgers.
    pub fn total(&self) -> f64 {
        self.levels.iter().flat_map(|row| row.iter()).sum()
    }

    /// Merges another ledger (e.g. across seeds).
    pub fn merge(&mut self, other: &LevelLedger) {
        if other.levels.len() > self.levels.len() {
            self.levels.resize(other.levels.len(), [0.0; 6]);
        }
        for (l, row) in other.levels.iter().enumerate() {
            for (k, v) in row.iter().enumerate() {
                self.levels[l][k] += v;
            }
        }
    }

    /// JSON rendering: an array of per-level objects keyed by ledger
    /// label, zero entries omitted.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .levels
            .iter()
            .enumerate()
            .map(|(l, row)| {
                let fields: Vec<String> = LedgerKind::all()
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| row[*k] != 0.0)
                    .map(|(k, kind)| format!("\"{}\":{}", kind.label(), fmt_f64(row[k])))
                    .collect();
                let sep = if fields.is_empty() { "" } else { "," };
                format!("{{\"level\":{l}{sep}{}}}", fields.join(","))
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

/// The standard trace consumer: aggregates events into a [`LevelLedger`]
/// plus hop-count and per-op cost histograms, all mergeable across
/// seeds. Implements [`TraceSink`] with interior mutability (trackers
/// emit through `&self`).
#[derive(Default)]
pub struct Recorder {
    state: RefCell<RecorderState>,
}

#[derive(Default)]
struct RecorderState {
    ledger: LevelLedger,
    /// Hops (events) per completed operation.
    hops: Histogram,
    /// Billed cost per completed operation.
    op_costs: Histogram,
    /// Events seen since the last `op_complete`.
    pending_hops: u64,
    /// Number of completed operations per op kind, indexed like `ops`.
    op_counts: Vec<(OpKind, usize)>,
}

/// The aggregates extracted from a [`Recorder`] once tracing is done.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceAggregates {
    /// Distance billed per (hierarchy level, cost ledger).
    pub ledger: LevelLedger,
    /// Distribution of hop distances.
    pub hops: Histogram,
    /// Distribution of completed operations' total costs.
    pub op_costs: Histogram,
    /// Completed operations per kind, in first-seen order.
    pub op_counts: Vec<(OpKind, usize)>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder, returning its aggregates.
    pub fn finish(self) -> TraceAggregates {
        let s = self.state.into_inner();
        TraceAggregates {
            ledger: s.ledger,
            hops: s.hops,
            op_costs: s.op_costs,
            op_counts: s.op_counts,
        }
    }

    /// A snapshot of the aggregates without consuming the recorder.
    pub fn snapshot(&self) -> TraceAggregates {
        let s = self.state.borrow();
        TraceAggregates {
            ledger: s.ledger.clone(),
            hops: s.hops.clone(),
            op_costs: s.op_costs.clone(),
            op_counts: s.op_counts.clone(),
        }
    }
}

impl TraceSink for Recorder {
    fn event(&self, ev: &TraceEvent) {
        let mut s = self.state.borrow_mut();
        s.ledger.add(ev.level as usize, ev.ledger, ev.distance);
        s.pending_hops += 1;
    }

    fn op_complete(&self, op: OpKind, _object: ObjectId, cost: f64) {
        let mut s = self.state.borrow_mut();
        let hops = s.pending_hops;
        s.pending_hops = 0;
        s.hops.record(hops as f64);
        s.op_costs.record(cost);
        match s.op_counts.iter_mut().find(|(k, _)| *k == op) {
            Some((_, n)) => *n += 1,
            None => s.op_counts.push((op, 1)),
        }
    }
}

impl TraceAggregates {
    /// Merges another run's aggregates (e.g. across seeds).
    pub fn merge(&mut self, other: &TraceAggregates) {
        self.ledger.merge(&other.ledger);
        self.hops.merge(&other.hops);
        self.op_costs.merge(&other.op_costs);
        for &(op, n) in &other.op_counts {
            match self.op_counts.iter_mut().find(|(k, _)| *k == op) {
                Some((_, m)) => *m += n,
                None => self.op_counts.push((op, n)),
            }
        }
    }

    /// JSON rendering bundling the ledger, both histograms, and the
    /// per-kind operation counts.
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self
            .op_counts
            .iter()
            .map(|(op, n)| format!("\"{}\":{n}", op.label()))
            .collect();
        format!(
            "{{\"ledger\":{},\"hops\":{},\"op_costs\":{},\"op_counts\":{{{}}}}}",
            self.ledger.to_json(),
            self.hops.to_json(),
            self.op_costs.to_json(),
            counts.join(",")
        )
    }
}

/// Wall-clock section profiler. `scope()` returns a guard that bills the
/// elapsed time to its section on drop:
///
/// ```
/// use mot_sim::Profiler;
/// let prof = Profiler::new();
/// {
///     let _g = prof.scope("build");
///     // ... timed work ...
/// }
/// assert_eq!(prof.report()[0].0, "build");
/// ```
#[derive(Default)]
pub struct Profiler {
    sections: RefCell<Vec<(&'static str, Duration, u64)>>,
}

/// Scope guard produced by [`Profiler::scope`].
pub struct ProfileGuard<'a> {
    profiler: &'a Profiler,
    name: &'static str,
    start: Instant,
}

impl Profiler {
    /// A profiler with no recorded scopes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `name`; the returned guard stops on drop.
    pub fn scope(&self, name: &'static str) -> ProfileGuard<'_> {
        ProfileGuard {
            profiler: self,
            name,
            start: Instant::now(),
        }
    }

    fn bill(&self, name: &'static str, elapsed: Duration) {
        let mut sections = self.sections.borrow_mut();
        match sections.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, total, calls)) => {
                *total += elapsed;
                *calls += 1;
            }
            None => sections.push((name, elapsed, 1)),
        }
    }

    /// `(section, total elapsed, calls)` in first-seen order.
    pub fn report(&self) -> Vec<(&'static str, Duration, u64)> {
        self.sections.borrow().clone()
    }

    /// JSON rendering: `[{"section":...,"secs":...,"calls":...}]`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .sections
            .borrow()
            .iter()
            .map(|(n, d, c)| {
                format!(
                    "{{\"section\":\"{n}\",\"secs\":{},\"calls\":{c}}}",
                    fmt_f64(d.as_secs_f64())
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

impl Drop for ProfileGuard<'_> {
    fn drop(&mut self) {
        self.profiler.bill(self.name, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_accumulates() {
        let mut c = CostStats::default();
        c.record(10.0, 2.0);
        c.record(6.0, 2.0);
        assert_eq!(c.operations, 2);
        assert!((c.ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(CostStats::default().ratio(), 1.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = CostStats::default();
        a.record(4.0, 1.0);
        let mut b = CostStats::default();
        b.record(2.0, 1.0);
        a.merge(&b);
        assert_eq!(a.total, 6.0);
        assert_eq!(a.operations, 2);
        assert!((a.ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_stddev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.count, 8);
        assert_eq!(Summary::of(&[]).count, 0);
        assert_eq!(Summary::of(&[3.0]).stddev, 0.0);
    }

    #[test]
    fn load_stats_basic() {
        let s = LoadStats::from_loads(&[0, 1, 1, 2, 15]);
        assert_eq!(s.max, 15);
        assert_eq!(s.nodes_above_10, 1);
        assert!((s.mean - 3.8).abs() < 1e-12);
        assert_eq!(s.histogram, [1, 2, 1, 0, 0, 1]);
    }

    #[test]
    fn jain_index_detects_imbalance() {
        let even = LoadStats::from_loads(&[5, 5, 5, 5]);
        assert!((even.jain_index - 1.0).abs() < 1e-12);
        let skewed = LoadStats::from_loads(&[20, 0, 0, 0]);
        assert!((skewed.jain_index - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_index_all_zero_loads_is_one_not_nan() {
        // Regression: 0²/(n·0) used to be NaN and propagated into figure
        // tables; the degenerate all-idle network is perfectly fair.
        for loads in [vec![0usize; 2], vec![0; 64], Vec::new()] {
            let s = LoadStats::from_loads(&loads);
            assert!(!s.jain_index.is_nan(), "NaN for {loads:?}");
            assert_eq!(s.jain_index, 1.0);
        }
    }

    #[test]
    fn zero_optimal_ops_are_counted_not_invented() {
        // Regression: a positive-cost op against a zero optimal used to
        // be folded in as ratio 1.0, understating mean_ratio.
        let mut c = CostStats::default();
        c.record(10.0, 5.0); // ratio 2
        c.record(7.5, 0.0); // no defined ratio
        assert_eq!(c.operations, 2);
        assert_eq!(c.zero_optimal_ops, 1);
        assert_eq!(c.ratio_sum, 2.0);
        assert!((c.mean_ratio() - 2.0).abs() < 1e-12, "{}", c.mean_ratio());
        // totals still include the zero-optimal op's cost
        assert_eq!(c.total, 17.5);
        assert_eq!(c.optimal, 5.0);
        // all-zero-optimal accumulator falls back to 1.0, not 0/0
        let mut z = CostStats::default();
        z.record(3.0, 0.0);
        assert_eq!(z.mean_ratio(), 1.0);
        assert_eq!(z.zero_optimal_ops, 1);
    }

    #[test]
    fn zero_optimal_counter_merges() {
        let mut a = CostStats::default();
        a.record(1.0, 0.0);
        let mut b = CostStats::default();
        b.record(2.0, 0.0);
        b.record(4.0, 2.0);
        a.merge(&b);
        assert_eq!(a.zero_optimal_ops, 2);
        assert_eq!(a.operations, 3);
        assert!((a.mean_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(0.999), 0);
        assert_eq!(Histogram::bucket_index(1.0), 1);
        assert_eq!(Histogram::bucket_index(1.999), 1);
        assert_eq!(Histogram::bucket_index(2.0), 2);
        assert_eq!(Histogram::bucket_index(3.999), 2);
        assert_eq!(Histogram::bucket_index(4.0), 3);
        assert_eq!(Histogram::bucket_index(-1.0), 0, "negatives clamp");
        assert_eq!(Histogram::bucket_index(1e30), HIST_BUCKETS - 1);
        // bounds agree with the index function at every edge
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo edge of {i}");
            if hi.is_finite() {
                assert_eq!(Histogram::bucket_index(hi), i + 1, "hi edge of {i}");
            }
        }
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let samples = [0.0, 0.5, 1.0, 3.7, 16.0, 1000.0, 2.0, 2.0];
        let mut whole = Histogram::new();
        for &x in &samples {
            whole.record(x);
        }
        let (left, right) = samples.split_at(3);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in left {
            a.record(x);
        }
        for &x in right {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole, "cross-seed merge must be exact");
        assert_eq!(a.count, 8);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_land_on_bucket_edges() {
        let mut h = Histogram::new();
        for x in 1..=100 {
            h.record(x as f64);
        }
        // p50 = sample 50, bucket [32,64) → upper edge 64
        assert_eq!(h.quantile(0.5), 64.0);
        // p99 = sample 99, bucket [64,128) → upper edge 128
        assert_eq!(h.quantile(0.99), 128.0);
        // p0 is the first non-empty bucket's *lower* edge: 1.0 ∈ [1,2)
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 128.0);
        assert_eq!(Histogram::new().quantile(0.5), 0.0, "empty is zero");
        // the unbounded last bucket reports its finite lower edge
        let mut top = Histogram::new();
        top.record(f64::MAX);
        assert!(top.quantile(0.5).is_finite());
    }

    #[test]
    fn histogram_quantile_boundaries_are_pinned() {
        // Empty: every q answers 0.0, boundaries included.
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);

        // Single bucket: p0 is its lower edge, p1 (and everything
        // between) its upper edge.
        let mut single = Histogram::new();
        for _ in 0..5 {
            single.record(10.0); // bucket [8,16)
        }
        assert_eq!(single.quantile(0.0), 8.0);
        assert_eq!(single.quantile(0.5), 16.0);
        assert_eq!(single.quantile(1.0), 16.0);

        // Zero-valued samples land in bucket [0,1): p0 = 0.0.
        let mut zeros = Histogram::new();
        zeros.record(0.0);
        zeros.record(100.0);
        assert_eq!(zeros.quantile(0.0), 0.0);
        assert_eq!(zeros.quantile(1.0), 128.0);

        // Merged histograms keep the same boundary semantics.
        let mut a = Histogram::new();
        a.record(3.0); // [2,4)
        let mut b = Histogram::new();
        b.record(40.0); // [32,64)
        a.merge(&b);
        assert_eq!(a.quantile(0.0), 2.0, "p0 from the merged minimum");
        assert_eq!(a.quantile(1.0), 64.0, "p1 from the merged maximum");
        assert_eq!(a.quantile(0.5), 4.0, "interior ranks are unchanged");
    }

    #[test]
    fn histogram_json_trims_trailing_zeros() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(5.0);
        assert_eq!(
            h.to_json(),
            "{\"count\":2,\"sum\":5.0,\"buckets\":[1,0,0,1]}"
        );
        assert_eq!(
            Histogram::new().to_json(),
            "{\"count\":0,\"sum\":0.0,\"buckets\":[]}"
        );
    }

    #[test]
    fn level_ledger_accumulates_and_merges() {
        let mut a = LevelLedger::new();
        a.add(0, LedgerKind::Maintenance, 2.0);
        a.add(2, LedgerKind::Maintenance, 4.0);
        a.add(2, LedgerKind::Query, 1.0);
        assert_eq!(a.height(), 3);
        assert_eq!(a.get(2, LedgerKind::Maintenance), 4.0);
        assert_eq!(a.level_total(2), 5.0);
        assert_eq!(a.level_total(9), 0.0);
        assert_eq!(a.ledger_total(LedgerKind::Maintenance), 6.0);
        assert_eq!(a.total(), 7.0);
        let mut b = LevelLedger::new();
        b.add(5, LedgerKind::Repair, 3.0);
        a.merge(&b);
        assert_eq!(a.height(), 6);
        assert_eq!(a.total(), 10.0);
        assert!(a.to_json().contains("\"level\":5,\"repair\":3.0"));
    }

    #[test]
    fn recorder_groups_hops_per_operation() {
        use mot_net::NodeId;
        let r = Recorder::new();
        let ev = |level: u32, dist: f64| TraceEvent {
            op: OpKind::Move,
            phase: mot_core::TracePhase::Climb,
            ledger: LedgerKind::Maintenance,
            object: ObjectId(0),
            src: NodeId(0),
            dst: NodeId(1),
            level,
            distance: dist,
        };
        r.event(&ev(0, 1.0));
        r.event(&ev(1, 2.0));
        r.op_complete(OpKind::Move, ObjectId(0), 3.0);
        r.event(&ev(0, 4.0));
        r.op_complete(OpKind::Move, ObjectId(0), 4.0);
        let agg = r.finish();
        assert_eq!(agg.ledger.total(), 7.0);
        assert_eq!(agg.ledger.level_total(1), 2.0);
        assert_eq!(agg.hops.count, 2);
        // op 1 had 2 hops (bucket 2), op 2 had 1 hop (bucket 1)
        assert_eq!(agg.hops.buckets[1], 1);
        assert_eq!(agg.hops.buckets[2], 1);
        assert_eq!(agg.op_counts, vec![(OpKind::Move, 2)]);
        assert_eq!(agg.op_costs.count, 2);
    }

    #[test]
    fn profiler_scope_guard_bills_sections() {
        let prof = Profiler::new();
        {
            let _g = prof.scope("a");
            let _h = prof.scope("b");
        }
        {
            let _g = prof.scope("a");
        }
        let report = prof.report();
        assert_eq!(report.len(), 2);
        let a = report.iter().find(|(n, _, _)| *n == "a").unwrap();
        assert_eq!(a.2, 2, "two calls billed to section a");
        let b = report.iter().find(|(n, _, _)| *n == "b").unwrap();
        assert_eq!(b.2, 1);
        assert!(prof.to_json().starts_with("[{\"section\":"));
    }
}
