//! Empirical checks of the paper's theorems, run at test scale.
//!
//! These are sanity bounds with generous constants — the point is to
//! catch asymptotic regressions (a ratio growing like `D` instead of
//! `log D`), not to re-prove the theorems.

use mot_tracking::prelude::*;

/// Theorem 4.1: publish cost is O(D) per object.
#[test]
fn publish_cost_linear_in_diameter() {
    for (r, c) in [(4, 4), (8, 8), (16, 16), (23, 23)] {
        let bed = TestBed::grid(r, c, 1).unwrap();
        let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
        let mut worst: f64 = 0.0;
        for (k, u) in bed.graph.nodes().step_by(7).enumerate() {
            let cost = t.publish(ObjectId(k as u32), u).unwrap();
            worst = worst.max(cost);
        }
        let d = bed.oracle.diameter();
        assert!(
            worst <= 16.0 * d,
            "{r}x{c}: publish cost {worst} not O(D = {d})"
        );
    }
}

/// Theorem 4.8: the maintenance cost ratio grows at most logarithmically
/// with the network size (compare the growth from 64 to 1024 nodes
/// against linear growth in D).
#[test]
fn maintenance_ratio_grows_sublinearly() {
    let ratio_at = |rows: usize, cols: usize| {
        let bed = TestBed::grid(rows, cols, 2).unwrap();
        let w = WorkloadSpec::new(10, 150, 3).generate(&bed.graph);
        let rates = DetectionRates::uniform(&bed.graph);
        let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &bed.oracle).unwrap().ratio()
    };
    let small = ratio_at(8, 8);
    let large = ratio_at(32, 32);
    // D grows 4.4x from 8x8 to 32x32; log D grows ~1.5x. Allow 2.5x.
    assert!(
        large <= 2.5 * small,
        "maintenance ratio grew {small} -> {large}: faster than logarithmic"
    );
    assert!(large >= 1.0 && small >= 1.0);
}

/// Theorem 4.11: the query cost ratio is O(1) — in particular it must not
/// scale with the query distance.
#[test]
fn query_ratio_flat_across_distances() {
    let bed = TestBed::grid(16, 16, 3).unwrap();
    let w = WorkloadSpec::new(8, 200, 5).generate(&bed.graph);
    let rates = DetectionRates::uniform(&bed.graph);
    let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
    run_publish(t.as_mut(), &w).unwrap();
    replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
    // bucket per-query ratios by distance scale
    let mut short = (0.0f64, 0usize);
    let mut long = (0.0f64, 0usize);
    for o in 0..8u32 {
        let proxy = t.proxy_of(ObjectId(o)).unwrap();
        for x in bed.graph.nodes() {
            let d = bed.oracle.dist(x, proxy);
            if d <= 0.0 {
                continue;
            }
            let q = t.query(x, ObjectId(o)).unwrap();
            let bucket = if d <= 4.0 { &mut short } else { &mut long };
            bucket.0 += q.cost / d;
            bucket.1 += 1;
        }
    }
    let short_mean = short.0 / short.1 as f64;
    let long_mean = long.0 / long.1 as f64;
    assert!(
        short_mean < 24.0,
        "short-range query ratio {short_mean} unbounded"
    );
    assert!(
        long_mean < 24.0,
        "long-range query ratio {long_mean} unbounded"
    );
}

/// Theorem 5.1 / Corollary 5.2: load balancing flattens the maximum load
/// at a bounded cost multiplier.
#[test]
fn load_balancing_tradeoff_matches_corollary_5_2() {
    let bed = TestBed::grid(16, 16, 4).unwrap();
    let w = WorkloadSpec::new(40, 100, 7).generate(&bed.graph);
    let rates = DetectionRates::uniform(&bed.graph);

    let mut plain = bed.make_tracker(Algo::Mot, &rates).unwrap();
    run_publish(plain.as_mut(), &w).unwrap();
    let plain_cost = replay_moves(plain.as_mut(), &w, &bed.oracle).unwrap();

    let mut lb = bed.make_tracker(Algo::MotLb, &rates).unwrap();
    run_publish(lb.as_mut(), &w).unwrap();
    let lb_cost = replay_moves(lb.as_mut(), &w, &bed.oracle).unwrap();

    let max_plain = *plain.node_loads().iter().max().unwrap();
    let max_lb = *lb.node_loads().iter().max().unwrap();
    assert!(max_lb < max_plain, "LB failed to reduce max load");

    // Cost multiplier bounded by O(log n) with slack.
    let log_n = (bed.graph.node_count() as f64).log2();
    assert!(
        lb_cost.total <= 3.0 * log_n * plain_cost.total,
        "LB cost multiplier {} exceeds O(log n)",
        lb_cost.total / plain_cost.total
    );
    assert!(
        lb_cost.total >= plain_cost.total,
        "routing inside clusters is not free"
    );
}

/// §3 / Fig. 2: special parents may only help query costs, and the no-SP
/// ablation stays correct.
#[test]
fn special_parents_only_help() {
    let bed = TestBed::grid(12, 12, 5).unwrap();
    let w = WorkloadSpec::new(6, 250, 9).generate(&bed.graph);
    let rates = DetectionRates::uniform(&bed.graph);
    let mut with_sp = bed.make_tracker(Algo::Mot, &rates).unwrap();
    let mut without = bed.make_tracker(Algo::MotNoSp, &rates).unwrap();
    for t in [&mut with_sp, &mut without] {
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
    }
    let qs = run_queries(with_sp.as_ref(), &bed.oracle, 6, 400, 3).unwrap();
    let qn = run_queries(without.as_ref(), &bed.oracle, 6, 400, 3).unwrap();
    assert_eq!(qs.correct, 400);
    assert_eq!(qn.correct, 400);
    assert!(
        qs.cost.mean_ratio() <= qn.cost.mean_ratio() + 0.25,
        "SP queries ({}) should not lose to no-SP ({})",
        qs.cost.mean_ratio(),
        qn.cost.mean_ratio()
    );
}

/// §4.1's separability foundation: "changes in HS due to operations of
/// one object do not interfere with the changes made by any other
/// object" — object A's per-operation costs are identical whether A
/// moves alone or interleaved with other objects.
#[test]
fn per_object_costs_are_independent_of_other_objects() {
    let bed = TestBed::grid(8, 8, 6).unwrap();
    let w = WorkloadSpec::new(4, 80, 11).generate(&bed.graph);

    // isolated: replay only object 0's trace
    let mut solo = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
    solo.publish(ObjectId(0), w.initial[0]).unwrap();
    let mut solo_costs = Vec::new();
    for m in w.moves.iter().filter(|m| m.object == ObjectId(0)) {
        solo_costs.push(solo.move_object(m.object, m.to).unwrap().cost);
    }

    // interleaved: the full multi-object workload
    let mut full = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
    for (oi, &p) in w.initial.iter().enumerate() {
        full.publish(ObjectId(oi as u32), p).unwrap();
    }
    let mut full_costs = Vec::new();
    for m in &w.moves {
        let c = full.move_object(m.object, m.to).unwrap().cost;
        if m.object == ObjectId(0) {
            full_costs.push(c);
        }
    }

    assert_eq!(solo_costs.len(), full_costs.len());
    for (i, (a, b)) in solo_costs.iter().zip(&full_costs).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "object 0's move {i} cost changed under interleaving: {a} vs {b}"
        );
    }
}

/// §6 / Theorem 6.2: the general-network overlay pays only
/// polylogarithmic factors over the doubling overlay on the same graph.
#[test]
fn general_overlay_within_polylog_of_doubling() {
    let g = generators::grid(10, 10).unwrap();
    let run = |bed: &TestBed| {
        let w = WorkloadSpec::new(5, 120, 3).generate(&bed.graph);
        let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
        run_publish(&mut t, &w).unwrap();
        replay_moves(&mut t, &w, &bed.oracle).unwrap().ratio()
    };
    let doubling = run(&TestBed::new(g.clone(), 6).unwrap());
    let general = run(&TestBed::general(g, &OverlayConfig::practical(), 6).unwrap());
    let log_n2 = (100f64).log2().powi(2);
    assert!(
        general <= doubling * log_n2,
        "general overlay ratio {general} vs doubling {doubling}: beyond log^2 n"
    );
}
