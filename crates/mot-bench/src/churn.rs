//! The `churn` / `churn-smoke` experiments: amortized hierarchy repair
//! under topology churn (§7).
//!
//! Both experiments replay seeded, connectivity-preserving join/leave
//! schedules ([`mot_net::ChurnSchedule`]) against a
//! [`RepairableHierarchy`] and measure the *structural* repair cost:
//! membership flips (the paper's per-cluster update events — §7 argues
//! O(1) amortized per level), total repaired units (flips + parent
//! recomputations + station rebuilds, O(log D) per event), and the
//! rebuild-vs-repair ledger's fallback decisions.
//!
//! Every replay ends in a **zero-divergence gate**: the repaired
//! hierarchy must be bit-identical (levels, parents, stations) to a
//! from-scratch build on the final topology, or the experiment fails
//! with a nonzero exit — same contract the differential test suites
//! enforce (DESIGN.md §17). `churn-smoke` checks divergence after
//! *every* delta across three schedule seeds and additionally soaks a
//! short churn-enabled service run (`StreamSpec::churn_every`), whose
//! own quiescence gate re-verifies the coordinator mirror.

use crate::figures::{BenchError, BenchResult};
use crate::report::FigureTable;
use mot_hierarchy::{OverlayConfig, RepairableHierarchy};
use mot_net::{generators, ChurnSchedule, ChurnSpec, Graph};
use mot_sim::{
    run_service, CellKey, FaultConfig, Keyed, ParallelRunner, ServiceConfig, StreamSpec, TestBed,
};

/// Hierarchy priority seed shared by the churn experiments.
const HIER_SEED: u64 = 6;

/// What one schedule replay measures.
struct ReplayStats {
    events: u64,
    flips: u64,
    units: u64,
    repairs: u64,
    rebuilds: u64,
    settled: u64,
    height: usize,
}

/// Replays a full schedule, gating on end-state divergence; with
/// `check_every_delta`, gates after every single delta (smoke mode).
fn replay_schedule(
    base: &Graph,
    spec: &ChurnSpec,
    check_every_delta: bool,
    ctx: &str,
) -> Result<ReplayStats, BenchError> {
    let cfg = OverlayConfig::practical();
    let sched = ChurnSchedule::generate(base, spec)?;
    let mut hier = RepairableHierarchy::build(base, &cfg, HIER_SEED)?;
    for (i, delta) in sched.deltas().iter().enumerate() {
        hier.repair(delta)?;
        if check_every_delta {
            let fresh = RepairableHierarchy::build(hier.graph(), &cfg, HIER_SEED)?;
            if hier.snapshot() != fresh.snapshot() {
                return Err(format!("{ctx}: repair diverged from rebuild at delta {i}").into());
            }
        }
    }
    let fresh = RepairableHierarchy::build(hier.graph(), &cfg, HIER_SEED)?;
    if hier.snapshot() != fresh.snapshot() {
        return Err(format!("{ctx}: repaired end state diverged from a rebuild").into());
    }
    let l = hier.ledger();
    Ok(ReplayStats {
        events: l.events,
        flips: l.membership_flips,
        units: l.repaired_units + l.rebuild_units,
        repairs: l.repairs,
        rebuilds: l.rebuilds,
        settled: l.settled_nodes,
        height: hier.height(),
    })
}

/// §7: amortized repair under churn. Each grid row replays a seeded
/// join/leave schedule of `2n` deltas and reports per-event structural
/// costs; the paper's claim is that `flips/event` stays O(1) per level
/// (so bounded by the height column) as the network grows. `jobs`
/// sizes the worker pool exactly as `Profile::jobs` does (0 = one per
/// hardware thread); the table itself is identical for every value.
pub fn churn_table(jobs: usize) -> BenchResult {
    let grids = [(8usize, 8usize), (12, 12), (16, 16)];
    let cells: Vec<Keyed<(usize, usize)>> = grids
        .iter()
        .map(|&(r, c)| Keyed::new(CellKey::new("churn", r * c, "repair", 9), (r, c)))
        .collect();
    let rows = ParallelRunner::new(jobs).run(&cells, |cell| -> Result<_, BenchError> {
        let (r, c) = cell.data;
        let n = r * c;
        let g = generators::grid(r, c)?;
        let spec = ChurnSpec::new(2 * n, (n / 8).max(1), cell.key.seed);
        let s = replay_schedule(&g, &spec, false, &format!("churn {n}"))?;
        let ev = s.events.max(1) as f64;
        Ok((
            n.to_string(),
            vec![
                s.flips as f64 / ev,
                s.units as f64 / ev,
                s.settled as f64 / ev,
                s.repairs as f64,
                s.rebuilds as f64,
                s.height as f64,
            ],
        ))
    })?;
    Ok(FigureTable {
        title: "Amortized repair under churn \
                (§7: O(1) cluster updates per event per level)"
            .into(),
        x_label: "nodes".into(),
        columns: vec![
            "flips/event".into(),
            "units/event".into(),
            "settled/event".into(),
            "repairs".into(),
            "rebuilds".into(),
            "height".into(),
        ],
        rows,
    })
}

/// The CI `churn-smoke` job: three seeded schedules on a 10×10 grid
/// with the zero-divergence gate checked after **every** delta, plus a
/// short churn-enabled service soak whose coordinator mirror is
/// re-verified at quiescence. Seconds-scale; every row is
/// byte-identical for any `jobs`.
pub fn churn_smoke_table(jobs: usize) -> BenchResult {
    let g = generators::grid(10, 10)?;
    let seeds = [41u64, 42, 43];
    let cells: Vec<Keyed<u64>> = seeds
        .iter()
        .map(|&s| Keyed::new(CellKey::new("churn-smoke", 100, "repair", s), s))
        .collect();
    let stats = ParallelRunner::new(jobs).run(&cells, |cell| {
        let spec = ChurnSpec::new(30, 12, cell.data);
        replay_schedule(&g, &spec, true, &format!("churn-smoke seed {}", cell.data))
    })?;

    let (mut events, mut flips, mut units) = (0u64, 0u64, 0u64);
    let (mut repairs, mut rebuilds) = (0u64, 0u64);
    for s in &stats {
        events += s.events;
        flips += s.flips;
        units += s.units;
        repairs += s.repairs;
        rebuilds += s.rebuilds;
    }
    let ev = events.max(1) as f64;

    // A churn-enabled service soak: the coordinator absorbs topology
    // deltas through its hierarchy mirror while faults rage; run_service
    // fails hard if the mirror diverges from a quiescence rebuild.
    let mut stream = StreamSpec::new(100, 4_000, 0xC0FFEE);
    stream.churn_every = 40;
    let mut cfg = ServiceConfig::new(stream);
    cfg.shards = 4;
    cfg.jobs = jobs;
    cfg.batch = 128;
    cfg.faults = FaultConfig {
        seed: 7,
        drop_rate: 0.15,
        duplicate_rate: 0.05,
        delay_rate: 0.05,
        link_failure_rate: 0.02,
        crashes: 2,
        max_attempts: 8,
    };
    let bed = TestBed::grid(12, 12, stream.seed)?;
    let rep = run_service(&bed, &cfg)?.report;
    if rep.hier_divergence > 0 {
        return Err("churn-smoke: service mirror diverged".into());
    }
    if rep.topology_ops == 0 {
        return Err("churn-smoke: service stream carried no topology deltas".into());
    }

    Ok(FigureTable {
        title: format!(
            "Churn smoke: {} replay events across {} schedules \
             (divergence gate after every delta) + {}-op churn service soak",
            events,
            seeds.len(),
            stream.ops
        ),
        x_label: "metric".into(),
        columns: vec!["value".into()],
        rows: vec![
            ("replay_events".into(), vec![events as f64]),
            ("replay_flips_per_event".into(), vec![flips as f64 / ev]),
            ("replay_units_per_event".into(), vec![units as f64 / ev]),
            ("replay_repairs".into(), vec![repairs as f64]),
            ("replay_rebuilds".into(), vec![rebuilds as f64]),
            ("replay_divergence".into(), vec![0.0]),
            ("service_sent".into(), vec![rep.sent as f64]),
            ("service_topology_ops".into(), vec![rep.topology_ops as f64]),
            ("service_hier_repairs".into(), vec![rep.hier_repairs as f64]),
            (
                "service_hier_rebuilds".into(),
                vec![rep.hier_rebuilds as f64],
            ),
            (
                "service_hier_units".into(),
                vec![rep.hier_repair_units as f64],
            ),
            (
                "service_hier_divergence".into(),
                vec![rep.hier_divergence as f64],
            ),
            (
                "service_queries_wrong".into(),
                vec![rep.queries_wrong as f64],
            ),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_repair_cost_is_constant_like() {
        let t = churn_table(0).unwrap();
        assert_eq!(t.rows.len(), 3);
        let flips = t.column("flips/event").unwrap();
        let heights = t.column("height").unwrap();
        for (f, h) in flips.iter().zip(heights) {
            assert!(*f > 0.0);
            // §7: O(1) flips per level — bounded by a small constant
            // times the hierarchy height.
            assert!(*f <= 4.0 * h, "flips/event {f} vs height {h}");
        }
        let rebuilds = t.column("rebuilds").unwrap();
        assert!(
            rebuilds.iter().all(|&x| x >= 0.0),
            "ledger decisions are reported"
        );
    }

    #[test]
    fn churn_smoke_gates_divergence_and_runs_the_service() {
        let t = churn_smoke_table(2).unwrap();
        let row = |name: &str| {
            t.rows
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v[0])
                .unwrap()
        };
        assert!(row("replay_events") >= 90.0, "3 schedules x 30 deltas");
        assert_eq!(row("replay_divergence"), 0.0);
        assert_eq!(row("service_hier_divergence"), 0.0);
        assert!(row("service_topology_ops") > 0.0);
        assert_eq!(row("service_queries_wrong"), 0.0);
    }
}
