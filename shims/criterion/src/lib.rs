//! Workspace-local benchmark harness exposing the subset of the
//! criterion 0.5 API used by `mot-bench`: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no registry access, so this replaces the
//! crates.io crate. It is a real measuring harness, not a no-op: each
//! benchmark is warmed up, then timed over `sample_size` samples with
//! an iteration count chosen so a sample lasts long enough to resolve,
//! and mean / median / min per-iteration times are printed. Passing
//! `--test` (as `cargo test --benches` does) runs every benchmark once
//! as a smoke test without the timing loops.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_id` plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` / `bench_with_input`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    /// Per-iteration sample means from the last `iter` call, in ns.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: find how many iterations make a
        // sample long enough to resolve (>= ~5ms), capped for slow
        // routines where a single run is already the sample.
        let mut iters_per_sample = 1u64;
        let calibration = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || calibration.elapsed() > Duration::from_secs(2)
            {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(full_label: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{full_label:<48} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{full_label:<48} time: [min {} median {} mean {}]",
        format_ns(min),
        format_ns(median),
        format_ns(mean)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Harness entry point; one per `criterion_group!` invocation.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards everything after `--` to the harness;
        // cargo also passes `--bench`. A bare non-flag argument is a
        // name filter, `--test` means smoke-test mode (what
        // `cargo test --benches` passes).
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            default_sample_size: 30,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{label:<48} ok (test mode)");
        } else {
            report(label, &bencher.samples);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion {
            default_sample_size: 3,
            test_mode: false,
            filter: None,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(2);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function("toplevel", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            default_sample_size: 2,
            test_mode: true,
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match-me", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn format_is_human_readable() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.300 µs");
        assert_eq!(format_ns(12_300_000.0), "12.300 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
