//! The `scenarios` / `scenarios-smoke` experiment family: the mobility
//! and workload scenario suite (DESIGN.md §18, EXPERIMENTS.md "Scenario
//! handbook").
//!
//! Five families, each a (workload × algorithm) sweep of deterministic
//! [`CellKey`]-seeded cells:
//!
//! * `waypoint` — shortest-path tours toward uniform waypoints,
//! * `levy` — heavy-tailed Lévy flights (`α = 1.6`),
//! * `hotspot` — rank-weighted flows onto 5 shared anchors,
//! * `zipf` — random-walk mobility with Zipf-skewed query popularity
//!   (skews 0 / 0.8 / 1.6) reported through the Jain-index path,
//! * `adversarial` — ping-pong movers pinned at each structure's
//!   empirically worst edge on a ring and a line (the tree baselines'
//!   lower-bound topologies, probed with *uniform* detection rates so
//!   the trees cannot foresee the adversary) and at the overlay's
//!   deepest cluster boundary on the grid.
//!
//! Every MOT cell additionally grounds two PAPERS.md comparisons: the
//! trajectory's greedy few-handover assignment (arXiv:1105.0392) and
//! the duty-cycled wake-up energy ledger it implies (arXiv:1108.1321).
//! `scenarios-smoke` reruns the whole suite at a fixed seconds-scale
//! spec, gates the qualitative claims in-code (Zipf skew-0 ⇒ Jain ≈ 1,
//! ping-pong tree blowup vs MOT, handover fraction ≤ 1), and soaks the
//! service loop on a scenario stream — all byte-identical across
//! `--jobs` (DESIGN.md §12).

use crate::figures::{BenchError, BenchResult};
use crate::report::FigureTable;
use mot_baselines::DetectionRates;
use mot_core::dynamics::{min_handovers, EnergyLedger, EnergyModel};
use mot_core::ObjectId;
use mot_net::{DistanceOracle, NodeId};
use mot_sim::{
    replay_moves, run_publish, run_queries_model, Algo, CellKey, FaultConfig, Keyed, LoadStats,
    MobilityModel, ParallelRunner, QueryModel, ServiceConfig, StreamSpec, TestBed, Workload,
    WorkloadSpec,
};

/// Bed/overlay seed shared by every scenario cell.
const BED_SEED: u64 = 12;
/// Salt separating the query-batch RNG stream from the workload stream.
const QUERY_SALT: u64 = 0x51_52_59;

/// Scale knobs of the scenario suite. The five families and their
/// parameters are fixed (they are the handbook's contract); profiles
/// only change workload sizes.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioProfile {
    /// Tracked objects per cell.
    pub objects: usize,
    /// Moves generated per object.
    pub moves_per_object: usize,
    /// Queries per cell.
    pub queries: usize,
    /// Grid shape for the non-adversarial families.
    pub grid: (usize, usize),
    /// Ring/line size for the adversarial family.
    pub adversarial_n: usize,
    /// Sensor coverage radius of the few-handover assignment
    /// (arXiv:1105.0392) — a sensor tracks positions within this
    /// distance without a handover.
    pub coverage_radius: f64,
    /// Worker-pool size (0 = one per hardware thread); tables are
    /// byte-identical for every value.
    pub jobs: usize,
}

impl ScenarioProfile {
    /// Seconds-scale sweep for local iteration.
    pub fn quick() -> Self {
        ScenarioProfile {
            objects: 6,
            moves_per_object: 40,
            queries: 120,
            grid: (10, 10),
            adversarial_n: 32,
            coverage_radius: 2.0,
            jobs: 0,
        }
    }

    /// The default sweep.
    pub fn standard() -> Self {
        ScenarioProfile {
            objects: 16,
            moves_per_object: 120,
            queries: 400,
            grid: (16, 16),
            adversarial_n: 64,
            coverage_radius: 2.0,
            jobs: 0,
        }
    }

    /// The publication-scale sweep.
    pub fn paper() -> Self {
        ScenarioProfile {
            objects: 40,
            moves_per_object: 300,
            queries: 1_000,
            grid: (16, 16),
            adversarial_n: 64,
            coverage_radius: 2.0,
            jobs: 0,
        }
    }

    /// The fixed CI smoke spec: `--profile` has no effect on it.
    pub fn smoke() -> Self {
        ScenarioProfile {
            objects: 4,
            moves_per_object: 30,
            // Enough queries that the skew-0 Zipf gate (Jain ≥ 0.97) has
            // ~100 expected hits per object — multinomial noise alone
            // keeps 4 objects × 80 queries down at Jain ≈ 0.95.
            queries: 400,
            grid: (10, 10),
            adversarial_n: 32,
            coverage_radius: 2.0,
            jobs: 0,
        }
    }

    /// Maps a `--profile` name onto a scenario scale.
    pub fn for_profile(name: &str) -> Result<Self, BenchError> {
        Ok(match name {
            "quick" => Self::quick(),
            "standard" => Self::standard(),
            "paper" => Self::paper(),
            other => return Err(format!("unknown profile '{other}' (quick|standard|paper)").into()),
        })
    }

    /// This profile with an explicit worker-pool size.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// What one (workload × algorithm) cell measures.
#[derive(Clone, Debug)]
struct CellRow {
    family: &'static str,
    label: String,
    maint_ratio: f64,
    query_ratio: f64,
    max_load: f64,
    jain_node: f64,
    /// Jain index of per-object query popularity (≈ 1 when uniform).
    jain_pop: f64,
    /// Few-handover segments / naive per-hop wake-ups (MOT cells only).
    handover_frac: f64,
    /// Energy saved by the few-handover duty cycle, percent (MOT only).
    energy_saved_pct: f64,
}

/// One cell's work order.
#[derive(Clone)]
enum CellSpec {
    Mobility {
        family: &'static str,
        model: MobilityModel,
        algo: Algo,
    },
    Zipf {
        skew: f64,
        algo: Algo,
    },
    Adversarial {
        topo: &'static str,
        algo: Algo,
    },
}

/// The greedy few-handover assignment and its energy ledger over one
/// workload (both arXiv comparisons are workload-intrinsic, so they are
/// computed once, in the MOT cell).
fn handover_energy(
    w: &Workload,
    oracle: &dyn DistanceOracle,
    radius: f64,
    optimal_total: f64,
) -> (f64, f64) {
    let mut trajs: Vec<Vec<NodeId>> = w.initial.iter().map(|&p| vec![p]).collect();
    for m in &w.moves {
        trajs[m.object.index()].push(m.to);
    }
    let segments: u64 = trajs
        .iter()
        .map(|t| min_handovers(t, oracle, radius) as u64)
        .sum();
    let moves = w.moves.len() as u64;
    if moves == 0 {
        return (0.0, 0.0);
    }
    let model = EnergyModel::default();
    // Naive duty cycle: wake the detecting sensor on every hop.
    let mut naive = EnergyLedger::default();
    naive.record_wakeups(moves);
    naive.record_tx(optimal_total);
    // Few-handover duty cycle: wake one sensor per greedy segment; the
    // update traffic itself is unchanged.
    let mut few = EnergyLedger::default();
    few.record_wakeups(segments);
    few.record_tx(optimal_total);
    (
        segments as f64 / moves as f64,
        few.saving_over(&naive, &model) * 100.0,
    )
}

/// Generates the cell's workload, drives `algo` through it, and scores
/// maintenance, queries (under `qmodel`), and per-node load.
#[allow(clippy::too_many_arguments)]
fn tracked_run(
    p: &ScenarioProfile,
    bed: &TestBed,
    family: &'static str,
    label: String,
    model: MobilityModel,
    algo: Algo,
    qmodel: QueryModel,
    uniform_rates: bool,
    seed: u64,
) -> Result<CellRow, BenchError> {
    let w = WorkloadSpec {
        objects: p.objects,
        moves_per_object: p.moves_per_object,
        model,
        seed,
    }
    .generate(&bed.graph);
    // The adversarial family hands the trees *uniform* rates: the
    // adversary attacks a structure that could not foresee it. Every
    // other family keeps the usual traffic-conscious construction.
    let rates = if uniform_rates {
        DetectionRates::uniform(&bed.graph)
    } else {
        DetectionRates::from_moves(&bed.graph, &w.move_pairs())
    };
    let mut t = bed.make_tracker(algo, &rates)?;
    run_publish(t.as_mut(), &w)?;
    let maint = replay_moves(t.as_mut(), &w, &bed.oracle)?;
    let q = run_queries_model(
        t.as_ref(),
        &bed.oracle,
        p.objects,
        p.queries,
        seed ^ QUERY_SALT,
        qmodel,
    )?;
    if q.batch.correct != p.queries {
        return Err(format!(
            "{family}/{label}: {} of {} queries answered wrong",
            p.queries - q.batch.correct,
            p.queries
        )
        .into());
    }
    let loads = LoadStats::from_loads(&t.node_loads());
    let (handover_frac, energy_saved_pct) = if algo == Algo::Mot {
        handover_energy(&w, &*bed.oracle, p.coverage_radius, maint.optimal)
    } else {
        (0.0, 0.0)
    };
    Ok(CellRow {
        family,
        label,
        maint_ratio: maint.ratio(),
        query_ratio: q.batch.cost.ratio(),
        max_load: loads.max as f64,
        jain_node: loads.jain_index,
        jain_pop: q.popularity_jain(),
        handover_frac,
        energy_saved_pct,
    })
}

/// Probes every edge of the bed for the structure's empirical
/// worst-case unit move: fresh tracker, publish at `u`, move `u → v`,
/// take the argmax cost/dist (first maximum — deterministic). This is
/// the constructive side of the lower-bound argument: for any fixed
/// tree some adjacent pair pays Ω(n), and the probe finds that pair
/// without peeking at the structure's internals.
fn worst_edge(
    bed: &TestBed,
    algo: Algo,
    rates: &DetectionRates,
) -> Result<(NodeId, NodeId), BenchError> {
    let mut best: Option<(f64, NodeId, NodeId)> = None;
    for u in bed.graph.nodes() {
        for e in bed.graph.neighbors(u) {
            if u >= e.to {
                continue;
            }
            let mut t = bed.make_tracker(algo, rates)?;
            t.publish(ObjectId(0), u)?;
            let out = t.move_object(ObjectId(0), e.to)?;
            let stretch = out.cost / bed.oracle.dist(u, e.to).max(1e-9);
            if best.map(|(bs, _, _)| stretch > bs).unwrap_or(true) {
                best = Some((stretch, u, e.to));
            }
        }
    }
    let (_, a, b) = best.ok_or("adversarial probe: graph has no edges")?;
    Ok((a, b))
}

fn run_cell(p: &ScenarioProfile, cell: &Keyed<CellSpec>) -> Result<CellRow, BenchError> {
    let seed = cell.key.seed;
    match &cell.data {
        CellSpec::Mobility {
            family,
            model,
            algo,
        } => {
            let bed = TestBed::grid(p.grid.0, p.grid.1, BED_SEED)?;
            tracked_run(
                p,
                &bed,
                family,
                algo.label().to_string(),
                *model,
                *algo,
                QueryModel::Uniform,
                false,
                seed,
            )
        }
        CellSpec::Zipf { skew, algo } => {
            let bed = TestBed::grid(p.grid.0, p.grid.1, BED_SEED)?;
            tracked_run(
                p,
                &bed,
                "zipf",
                format!("s={:.1}/{}", skew, algo.label()),
                MobilityModel::RandomWalk,
                *algo,
                QueryModel::zipf(*skew),
                false,
                seed,
            )
        }
        CellSpec::Adversarial { topo, algo } => {
            let bed = match *topo {
                "ring" => TestBed::ring(p.adversarial_n, BED_SEED)?,
                "line" => TestBed::line(p.adversarial_n, BED_SEED)?,
                _ => TestBed::grid(p.grid.0, p.grid.1, BED_SEED)?,
            };
            let rates = DetectionRates::uniform(&bed.graph);
            // Grid: pin the mover at the overlay's deepest cluster
            // boundary (MOT's own worst cut). Ring/line: probe the
            // structure under attack for its worst edge.
            let (a, b) = if *topo == "grid" {
                bed.boundary_pair()
            } else {
                worst_edge(&bed, *algo, &rates)?
            };
            tracked_run(
                p,
                &bed,
                "adversarial",
                format!("{topo}/{}", algo.label()),
                MobilityModel::ping_pong(a, b),
                *algo,
                QueryModel::Uniform,
                true,
                seed,
            )
        }
    }
}

/// The suite's cell plan: five families, fixed parameters, seeded per
/// cell through [`CellKey`] so the sweep is deterministic and
/// jobs-invariant.
fn plan_cells(p: &ScenarioProfile) -> Vec<Keyed<CellSpec>> {
    let n = p.grid.0 * p.grid.1;
    let mut cells = Vec::new();
    let mobility: [(&'static str, MobilityModel); 3] = [
        ("waypoint", MobilityModel::Waypoint),
        ("levy", MobilityModel::levy(1.6)),
        ("hotspot", MobilityModel::hotspot(5, 0.8)),
    ];
    for (family, model) in mobility {
        for algo in [Algo::Mot, Algo::Stun, Algo::Zdat] {
            cells.push(Keyed::new(
                CellKey::new(format!("scenarios/{family}"), n, algo.label(), 31),
                CellSpec::Mobility {
                    family,
                    model,
                    algo,
                },
            ));
        }
    }
    for skew in [0.0, 0.8, 1.6] {
        for algo in [Algo::Mot, Algo::Stun] {
            cells.push(Keyed::new(
                CellKey::new(format!("scenarios/zipf/s={skew:.1}"), n, algo.label(), 33),
                CellSpec::Zipf { skew, algo },
            ));
        }
    }
    for topo in ["ring", "line", "grid"] {
        let size = if topo == "grid" { n } else { p.adversarial_n };
        for algo in [Algo::Mot, Algo::Stun] {
            cells.push(Keyed::new(
                CellKey::new(
                    format!("scenarios/adversarial/{topo}"),
                    size,
                    algo.label(),
                    37,
                ),
                CellSpec::Adversarial { topo, algo },
            ));
        }
    }
    cells
}

/// Runs the whole sweep and returns its rows in canonical cell order.
fn scenario_cells(p: &ScenarioProfile) -> Result<Vec<CellRow>, BenchError> {
    let cells = plan_cells(p);
    ParallelRunner::new(p.jobs).run(&cells, |cell| run_cell(p, cell))
}

/// Looks up the sweep row of `family` whose label is `label`.
fn pick<'r>(rows: &'r [CellRow], family: &str, label: &str) -> Result<&'r CellRow, BenchError> {
    rows.iter()
        .find(|r| r.family == family && r.label == label)
        .ok_or_else(|| format!("scenario sweep produced no row {family}/{label}").into())
}

const DETAIL_COLUMNS: [&str; 5] = [
    "maint_ratio",
    "query_ratio",
    "max_load",
    "jain_node",
    "jain_pop",
];

fn detail_table(title: String, rows: &[CellRow], family: &str) -> FigureTable {
    FigureTable {
        title,
        x_label: "workload/algo".into(),
        columns: DETAIL_COLUMNS.iter().map(|c| c.to_string()).collect(),
        rows: rows
            .iter()
            .filter(|r| r.family == family)
            .map(|r| {
                (
                    r.label.clone(),
                    vec![
                        r.maint_ratio,
                        r.query_ratio,
                        r.max_load,
                        r.jain_node,
                        r.jain_pop,
                    ],
                )
            })
            .collect(),
    }
}

/// The `scenarios` experiment: runs the five-family sweep and returns
/// one detail table per family plus the cross-family summary, as
/// `(experiment id, table)` pairs with the summary (`"scenarios"`)
/// last. The summary compares MOT against STUN on each family's
/// representative workload and carries the arXiv:1105.0392 handover
/// fraction and arXiv:1108.1321 energy saving of the MOT run.
pub fn scenario_tables(p: &ScenarioProfile) -> Result<Vec<(String, FigureTable)>, BenchError> {
    let rows = scenario_cells(p)?;
    let mut out = Vec::new();
    for (family, what) in [
        ("waypoint", "shortest-path tours, uniform waypoints"),
        ("levy", "Lévy flights, α = 1.6"),
        (
            "hotspot",
            "rank-weighted flows onto 5 anchors, locality 0.8",
        ),
        ("zipf", "random walk + Zipf query popularity"),
        ("adversarial", "ping-pong at each structure's worst cut"),
    ] {
        out.push((
            format!("scenarios-{family}"),
            detail_table(format!("Scenario '{family}' ({what})"), &rows, family),
        ));
    }
    // Representative pairs per family for the summary: the MOT and STUN
    // cells of the family's headline variant.
    let reps: [(&str, &str, &str); 5] = [
        ("waypoint", "MOT", "STUN"),
        ("levy", "MOT", "STUN"),
        ("hotspot", "MOT", "STUN"),
        ("zipf", "s=1.6/MOT", "s=1.6/STUN"),
        ("adversarial", "ring/MOT", "ring/STUN"),
    ];
    let mut summary_rows = Vec::new();
    for (family, mot_label, tree_label) in reps {
        let mot = pick(&rows, family, mot_label)?;
        let tree = pick(&rows, family, tree_label)?;
        summary_rows.push((
            family.to_string(),
            vec![
                mot.maint_ratio,
                tree.maint_ratio,
                tree.maint_ratio / mot.maint_ratio,
                mot.jain_pop,
                mot.handover_frac,
                mot.energy_saved_pct,
            ],
        ));
    }
    out.push((
        "scenarios".to_string(),
        FigureTable {
            title: format!(
                "Scenario suite summary: MOT vs STUN per family \
                 ({} objects × {} moves, {} queries)",
                p.objects, p.moves_per_object, p.queries
            ),
            x_label: "family".into(),
            columns: vec![
                "mot_maint".into(),
                "tree_maint".into(),
                "tree_over_mot".into(),
                "jain_pop".into(),
                "handover_frac".into(),
                "energy_saved_pct".into(),
            ],
            rows: summary_rows,
        },
    ));
    Ok(out)
}

/// The CI `scenarios-smoke` job: the full five-family sweep at a fixed
/// seconds-scale spec with the handbook's qualitative claims gated
/// in-code, plus a faulty service soak on a scenario stream (waypoint
/// mobility × Zipf queries) whose zero-silent-loss accounting is
/// re-gated. Every row is byte-identical for any `jobs`.
pub fn scenarios_smoke_table(jobs: usize) -> BenchResult {
    let p = ScenarioProfile::smoke().with_jobs(jobs);
    let rows = scenario_cells(&p)?;
    for r in &rows {
        if r.maint_ratio < 1.0 - 1e-9 {
            return Err(format!(
                "scenarios-smoke: {}/{} beat the optimal maintenance cost ({})",
                r.family, r.label, r.maint_ratio
            )
            .into());
        }
    }
    let families: std::collections::BTreeSet<&str> = rows.iter().map(|r| r.family).collect();
    if families.len() != 5 {
        return Err(format!("scenarios-smoke: expected 5 families, saw {families:?}").into());
    }

    // Zipf sanity: skew 0 is uniform (Jain ≈ 1) and skew concentrates.
    let jain_uniform = pick(&rows, "zipf", "s=0.0/MOT")?.jain_pop;
    let jain_skewed = pick(&rows, "zipf", "s=1.6/MOT")?.jain_pop;
    if jain_uniform < 0.97 {
        return Err(format!("scenarios-smoke: skew-0 Zipf Jain {jain_uniform} ≉ 1").into());
    }
    if jain_skewed > jain_uniform - 0.1 {
        return Err(format!(
            "scenarios-smoke: skew 1.6 did not concentrate queries \
             (Jain {jain_skewed} vs uniform {jain_uniform})"
        )
        .into());
    }

    // Ping-pong adversary: the probed tree pays a multiple of MOT on
    // the ring (the tree's missing ring edge costs the circumference).
    let ring_mot = pick(&rows, "adversarial", "ring/MOT")?.maint_ratio;
    let ring_tree = pick(&rows, "adversarial", "ring/STUN")?.maint_ratio;
    let blowup = ring_tree / ring_mot;
    if blowup < 2.0 {
        return Err(format!(
            "scenarios-smoke: ring adversary blowup {blowup:.2} \
             (STUN {ring_tree:.2} vs MOT {ring_mot:.2}) — expected ≥ 2"
        )
        .into());
    }

    // Few-handover + energy claims on the waypoint family's MOT run.
    let way = pick(&rows, "waypoint", "MOT")?;
    if !(way.handover_frac > 0.0 && way.handover_frac <= 1.0) {
        return Err(format!(
            "scenarios-smoke: handover fraction {} outside (0, 1]",
            way.handover_frac
        )
        .into());
    }
    if way.energy_saved_pct < 0.0 {
        return Err(format!(
            "scenarios-smoke: few-handover duty cycle lost energy ({}%)",
            way.energy_saved_pct
        )
        .into());
    }

    // Service soak on a scenario stream: waypoint flights and Zipf
    // query popularity through the sharded loop under faults — the
    // stream/service threading the tentpole adds, end to end.
    let stream = StreamSpec::new(40, 2_000, 0x5C_E2)
        .with_mobility(MobilityModel::Waypoint)
        .with_query_model(QueryModel::zipf(1.2));
    let mut cfg = ServiceConfig::new(stream);
    cfg.shards = 4;
    cfg.jobs = jobs;
    cfg.batch = 128;
    cfg.faults = FaultConfig {
        seed: 7,
        drop_rate: 0.1,
        duplicate_rate: 0.05,
        delay_rate: 0.05,
        link_failure_rate: 0.01,
        crashes: 1,
        max_attempts: 8,
    };
    let bed = TestBed::grid(10, 10, stream.seed)?;
    let rep = mot_sim::run_service(&bed, &cfg)?.report;
    if rep.queries_wrong > 0 {
        return Err("scenarios-smoke: scenario service soak answered queries wrong".into());
    }
    if rep.sent != stream.ops {
        return Err(format!(
            "scenarios-smoke: service soak sent {} of {} ops",
            rep.sent, stream.ops
        )
        .into());
    }

    let mut table_rows = vec![("families_run".to_string(), vec![families.len() as f64])];
    for (family, mot_label, tree_label) in [
        ("waypoint", "MOT", "STUN"),
        ("levy", "MOT", "STUN"),
        ("hotspot", "MOT", "STUN"),
        ("zipf", "s=1.6/MOT", "s=1.6/STUN"),
        ("adversarial", "ring/MOT", "ring/STUN"),
    ] {
        let mot = pick(&rows, family, mot_label)?;
        let tree = pick(&rows, family, tree_label)?;
        table_rows.push((format!("{family}_mot_maint"), vec![mot.maint_ratio]));
        table_rows.push((
            format!("{family}_tree_over_mot"),
            vec![tree.maint_ratio / mot.maint_ratio],
        ));
    }
    table_rows.push(("zipf_jain_uniform".into(), vec![jain_uniform]));
    table_rows.push(("zipf_jain_skewed".into(), vec![jain_skewed]));
    table_rows.push(("pingpong_blowup".into(), vec![blowup]));
    table_rows.push(("handover_frac".into(), vec![way.handover_frac]));
    table_rows.push(("energy_saved_pct".into(), vec![way.energy_saved_pct]));
    table_rows.push(("service_sent".into(), vec![rep.sent as f64]));
    table_rows.push(("service_lost".into(), vec![rep.lost as f64]));
    table_rows.push((
        "service_queries_wrong".into(),
        vec![rep.queries_wrong as f64],
    ));

    Ok(FigureTable {
        title: format!(
            "Scenarios smoke: 5 families × fixed spec ({} objects × {} moves) \
             + {}-op scenario service soak",
            p.objects, p.moves_per_object, stream.ops
        ),
        x_label: "metric".into(),
        columns: vec!["value".into()],
        rows: table_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render_all(tables: &[(String, FigureTable)]) -> String {
        tables
            .iter()
            .map(|(id, t)| format!("== {id} ==\n{}", t.render()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn scenario_sweep_is_deterministic_and_jobs_invariant() {
        let one = scenario_tables(&ScenarioProfile::smoke().with_jobs(1)).unwrap();
        let four = scenario_tables(&ScenarioProfile::smoke().with_jobs(4)).unwrap();
        assert_eq!(
            render_all(&one),
            render_all(&four),
            "scenario tables must be byte-identical across --jobs"
        );
        let again = scenario_tables(&ScenarioProfile::smoke().with_jobs(1)).unwrap();
        assert_eq!(render_all(&one), render_all(&again));
    }

    #[test]
    fn scenario_tables_cover_all_five_families_plus_summary() {
        let tables = scenario_tables(&ScenarioProfile::smoke()).unwrap();
        let ids: Vec<&str> = tables.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "scenarios-waypoint",
                "scenarios-levy",
                "scenarios-hotspot",
                "scenarios-zipf",
                "scenarios-adversarial",
                "scenarios",
            ]
        );
        let (_, summary) = tables.last().unwrap();
        assert_eq!(summary.rows.len(), 5, "one summary row per family");
        for (_, vals) in &summary.rows {
            assert!(vals[0] >= 1.0, "MOT maintenance ratio below optimal");
            assert!(vals[1] >= 1.0, "tree maintenance ratio below optimal");
        }
    }

    #[test]
    fn zipf_family_reports_the_skew_through_jain() {
        let p = ScenarioProfile::smoke();
        let rows = scenario_cells(&p).unwrap();
        let uniform = pick(&rows, "zipf", "s=0.0/MOT").unwrap().jain_pop;
        let skewed = pick(&rows, "zipf", "s=1.6/MOT").unwrap().jain_pop;
        assert!(uniform > 0.97, "skew-0 popularity Jain {uniform} ≉ 1");
        assert!(
            skewed < uniform - 0.1,
            "skew 1.6 Jain {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn ping_pong_adversary_blows_up_the_tree_but_not_mot() {
        let p = ScenarioProfile::smoke();
        let rows = scenario_cells(&p).unwrap();
        let mot = pick(&rows, "adversarial", "ring/MOT").unwrap().maint_ratio;
        let tree = pick(&rows, "adversarial", "ring/STUN").unwrap().maint_ratio;
        assert!(
            tree / mot >= 2.0,
            "ring adversary: STUN {tree:.2} vs MOT {mot:.2} — no blowup"
        );
        // MOT stays within its hierarchy bound even at its own worst
        // cut (the grid boundary-pair case).
        let grid_mot = pick(&rows, "adversarial", "grid/MOT").unwrap().maint_ratio;
        assert!(
            grid_mot < tree,
            "MOT at its worst cut ({grid_mot:.2}) must stay below the \
             tree's ring blowup ({tree:.2})"
        );
    }

    #[test]
    fn smoke_table_carries_the_gated_metrics() {
        let t = scenarios_smoke_table(2).unwrap();
        let row = |name: &str| {
            t.rows
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v[0])
                .unwrap_or_else(|| panic!("missing smoke row {name}"))
        };
        assert_eq!(row("families_run"), 5.0);
        assert!(row("pingpong_blowup") >= 2.0);
        assert!(row("zipf_jain_uniform") >= 0.97);
        assert!(row("zipf_jain_skewed") < row("zipf_jain_uniform"));
        assert!(row("handover_frac") > 0.0 && row("handover_frac") <= 1.0);
        assert!(row("energy_saved_pct") >= 0.0);
        assert_eq!(row("service_queries_wrong"), 0.0);
    }
}
