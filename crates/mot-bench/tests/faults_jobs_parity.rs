//! FaultPlan × ParallelRunner interaction (ISSUE 7 satellite): faulty
//! replays must be byte-identical for `--jobs 1` vs `--jobs 4`.
//!
//! Fault coins are keyed on cell/op identity — never on scheduling —
//! so injected chaos composes with the fan-out engine without breaking
//! the DESIGN.md §12 determinism contract. These tests drive the
//! faulty paths (the fault-sweep figure and the chaos-soaked service
//! loop) through both the library and the `experiments` binary and
//! fail on the first byte that differs.

use mot_bench::{faults_table, service_table, Profile, ServiceSpec};

/// A fault sweep with more chaos per cell than the smoke default:
/// every drop-rate × crash-count × algo × seed cell replays a faulty
/// workload on its own RNG streams.
fn chaos_profile(jobs: usize) -> Profile {
    let mut p = Profile::quick(12).with_jobs(jobs);
    p.moves_per_object = 30;
    p.queries = 60;
    p.seeds = 3;
    p
}

#[test]
fn faulty_replay_tables_are_byte_identical_for_jobs_1_and_4() {
    let a = faults_table(&chaos_profile(1), (12, 12)).expect("faults jobs=1");
    let b = faults_table(&chaos_profile(4), (12, 12)).expect("faults jobs=4");
    assert_eq!(
        a.to_csv(),
        b.to_csv(),
        "fault sweep CSV differs across jobs"
    );
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "fault sweep JSON differs across jobs"
    );
}

#[test]
fn service_soak_under_composed_faults_is_byte_identical_across_jobs() {
    let a = service_table(&ServiceSpec::smoke().with_jobs(1)).expect("service jobs=1");
    let b = service_table(&ServiceSpec::smoke().with_jobs(4)).expect("service jobs=4");
    assert_eq!(a.to_csv(), b.to_csv(), "service CSV differs across jobs");
    assert_eq!(a.to_json(), b.to_json(), "service JSON differs across jobs");
}

/// End-to-end through the binary: `faults-smoke` + `service-smoke`
/// with `--metrics`, comparing stdout tables byte-for-byte and the
/// metrics JSON after stripping the intentionally wall-clock fields
/// (`timings_secs`, the service `wall` trailer, and the oracle `cache`
/// counters, whose interleaving is timing-dependent).
#[test]
fn binary_faulty_runs_are_byte_identical_across_jobs() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let tmp = std::env::temp_dir().join(format!("faults-parity-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let metrics = tmp.join(format!("metrics-j{jobs}.json"));
        let out = std::process::Command::new(exe)
            .args([
                "--jobs",
                jobs,
                "--metrics",
                metrics.to_str().unwrap(),
                "faults-smoke",
                "service-smoke",
            ])
            .stderr(std::process::Stdio::null())
            .output()
            .expect("run experiments");
        assert!(out.status.success(), "experiments --jobs {jobs} failed");
        let json = std::fs::read_to_string(&metrics).expect("metrics.json");
        outputs.push((out.stdout, strip_wall_clock(&json)));
    }
    let _ = std::fs::remove_dir_all(&tmp);
    assert_eq!(
        String::from_utf8_lossy(&outputs[0].0),
        String::from_utf8_lossy(&outputs[1].0),
        "stdout tables differ across --jobs"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "metrics JSON differs across --jobs (wall-clock stripped)"
    );
}

/// Removes the wall-clock spans: `"timings_secs":{...}`, the service
/// report's `"wall":{...}` trailer, and `"cache":...`. All three are
/// flat objects (or `null`), so scanning to the next `}` suffices.
fn strip_wall_clock(json: &str) -> String {
    let mut s = json.to_string();
    for key in ["\"timings_secs\":{", "\"wall\":{"] {
        while let Some(start) = s.find(key) {
            let close = s[start..].find('}').expect("flat object closes") + start;
            s.replace_range(start..close + 1, "");
        }
    }
    while let Some(start) = s.find("\"cache\":") {
        let rest = &s[start + 8..];
        let len = if rest.starts_with('{') {
            rest.find('}').expect("flat object closes") + 1
        } else {
            "null".len()
        };
        s.replace_range(start..start + 8 + len, "");
    }
    s
}
