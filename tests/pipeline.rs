//! End-to-end pipeline tests: every algorithm, several topologies, full
//! publish → maintain → query flows with cross-checked ground truth.

use mot_tracking::prelude::*;

fn algorithms() -> Vec<Algo> {
    vec![
        Algo::Mot,
        Algo::MotLb,
        Algo::MotNoSp,
        Algo::Stun,
        Algo::Dat,
        Algo::Zdat,
        Algo::ZdatShortcuts,
    ]
}

fn exercise(bed: &TestBed, objects: usize, moves: usize, seed: u64) {
    let w = WorkloadSpec::new(objects, moves, seed).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let finals = w.final_proxies();
    for algo in algorithms() {
        let mut t = bed.make_tracker(algo, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        let maint = replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
        assert!(
            maint.ratio() >= 1.0,
            "{}: maintenance ratio {} beats optimal",
            algo.label(),
            maint.ratio()
        );
        // the structure's proxy records agree with the trace
        for (oi, &p) in finals.iter().enumerate() {
            assert_eq!(
                t.proxy_of(ObjectId(oi as u32)),
                Some(p),
                "{}: object {oi} lost",
                algo.label()
            );
        }
        // every query from every node locates the true proxy
        let q = run_queries(t.as_ref(), &bed.oracle, objects, 150, seed + 1).unwrap();
        assert_eq!(q.correct, 150, "{} answered queries wrong", algo.label());
        // load accounting is non-negative and bounded by total entries
        let loads = t.node_loads();
        let total: usize = loads.iter().sum();
        assert!(total > 0, "{}: no load recorded", algo.label());
    }
}

#[test]
fn grid_pipeline() {
    exercise(&TestBed::grid(8, 8, 3).unwrap(), 6, 120, 5);
}

#[test]
fn random_geometric_pipeline() {
    let g = generators::random_geometric(70, 9.0, 2.1, 4).unwrap();
    exercise(&TestBed::new(g, 9).unwrap(), 5, 80, 7);
}

#[test]
fn ring_pipeline() {
    let g = generators::ring(40).unwrap();
    exercise(&TestBed::new(g, 2).unwrap(), 4, 80, 11);
}

#[test]
fn torus_pipeline() {
    let g = generators::torus(7, 7).unwrap();
    exercise(&TestBed::new(g, 5).unwrap(), 4, 60, 13);
}

#[test]
fn mot_on_general_overlay_pipeline() {
    let g = generators::grid(7, 7).unwrap();
    let bed = TestBed::general(g, &OverlayConfig::practical(), 8).unwrap();
    let w = WorkloadSpec::new(4, 100, 3).generate(&bed.graph);
    let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
    run_publish(&mut t, &w).unwrap();
    replay_moves(&mut t, &w, &bed.oracle).unwrap();
    t.check_invariants();
    let q = run_queries(&t, &bed.oracle, 4, 200, 2).unwrap();
    assert_eq!(q.correct, 200);
}

#[test]
fn load_conservation_between_plain_and_balanced() {
    // Load balancing relocates entries but must not create or destroy
    // them.
    let bed = TestBed::grid(8, 8, 1).unwrap();
    let w = WorkloadSpec::new(10, 60, 2).generate(&bed.graph);
    let rates = DetectionRates::uniform(&bed.graph);
    let mut plain = bed.make_tracker(Algo::Mot, &rates).unwrap();
    let mut lb = bed.make_tracker(Algo::MotLb, &rates).unwrap();
    for t in [&mut plain, &mut lb] {
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
    }
    let total_plain: usize = plain.node_loads().iter().sum();
    let total_lb: usize = lb.node_loads().iter().sum();
    assert_eq!(total_plain, total_lb);
    let max_plain = *plain.node_loads().iter().max().unwrap();
    let max_lb = *lb.node_loads().iter().max().unwrap();
    assert!(max_lb <= max_plain, "balancing increased the max load");
}

#[test]
fn saved_workload_replays_identically() {
    use mot_tracking::sim::{load_workload, save_workload, validate_against};
    let bed = TestBed::grid(6, 6, 3).unwrap();
    let w = WorkloadSpec::new(4, 60, 9).generate(&bed.graph);
    let path = std::env::temp_dir().join(format!("mot-pipeline-{}.json", std::process::id()));
    save_workload(&w, &path).unwrap();
    let replayed = load_workload(&path).unwrap();
    validate_against(&replayed, &bed.graph).unwrap();
    std::fs::remove_file(&path).ok();

    let rates = DetectionRates::uniform(&bed.graph);
    let run = |w: &Workload| {
        let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
        run_publish(t.as_mut(), w).unwrap();
        replay_moves(t.as_mut(), w, &bed.oracle).unwrap().total
    };
    assert_eq!(
        run(&w),
        run(&replayed),
        "saved trace must replay to identical costs"
    );
}

#[test]
fn traffic_knowledge_changes_baseline_trees_not_mot() {
    let bed = TestBed::grid(6, 6, 4).unwrap();
    let w = WorkloadSpec::new(4, 100, 6).generate(&bed.graph);
    let hot = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let cold = DetectionRates::uniform(&bed.graph);

    // MOT ignores rates: identical costs either way.
    let run = |rates: &DetectionRates, algo: Algo| {
        let mut t = bed.make_tracker(algo, rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &bed.oracle).unwrap().total
    };
    assert_eq!(run(&hot, Algo::Mot), run(&cold, Algo::Mot));
    // DAT generally reacts to rates (tie-breaks shift parents).
    let dat_hot = run(&hot, Algo::Dat);
    let dat_cold = run(&cold, Algo::Dat);
    // Not asserting inequality (they can coincide on tiny grids), but
    // both must be valid runs.
    assert!(dat_hot > 0.0 && dat_cold > 0.0);
}
