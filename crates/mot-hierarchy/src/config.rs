//! Tunable constants of the overlay construction.

/// Constants governing overlay geometry.
///
/// The paper's worst-case analysis fixes the parent-set radius at
/// `4 · 2^{ℓ+1}` and the special-parent gap at `3ρ + 6` levels; those
/// values make the lemmas airtight but are wildly conservative on 2-D
/// deployments (they were chosen to beat adversarial doubling metrics).
/// The `practical` profile uses the small constants any implementation
/// (including the paper's own §8 simulation) would run with; the
/// `paper_exact` profile restores the analysis constants so the property
/// tests can check Lemma 2.1/2.2 with the stated guarantees.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Parent set of a level-(ℓ−1) node = level-ℓ members within
    /// `parent_set_radius_mult · 2^ℓ` of it (default parent always
    /// included). Paper value: 4.0.
    pub parent_set_radius_mult: f64,
    /// Special parents sit `sp_gap` levels above the level they guard
    /// (Definition 3 uses `3ρ + 6`).
    pub sp_gap: usize,
    /// Number of labelled padded decompositions per level in the general
    /// model, as a multiple of `log2 n` (paper: `O(log n)`).
    pub general_trials_per_log_n: f64,
    /// Cluster carving radius in the general model, as a multiple of
    /// `2^ℓ · ln n` (paper: cluster radius `O(2^ℓ log n)`).
    pub general_radius_mult: f64,
}

impl OverlayConfig {
    /// Small constants suitable for experiments; matches the spirit of the
    /// paper's own simulation.
    pub fn practical() -> Self {
        OverlayConfig {
            parent_set_radius_mult: 1.0,
            sp_gap: 2,
            general_trials_per_log_n: 1.0,
            general_radius_mult: 1.0,
        }
    }

    /// The constants used in the paper's proofs (ρ = 2 for planar
    /// deployments ⇒ `sp_gap = 3ρ + 6 = 12`).
    pub fn paper_exact() -> Self {
        OverlayConfig {
            parent_set_radius_mult: 4.0,
            sp_gap: 12,
            general_trials_per_log_n: 2.0,
            general_radius_mult: 2.0,
        }
    }

    /// Degenerate profile with singleton parent sets (only the default
    /// parent) — used by the `ablation-ps` experiment to show why parent
    /// sets matter.
    pub fn singleton_parents() -> Self {
        OverlayConfig {
            parent_set_radius_mult: 0.0,
            ..Self::practical()
        }
    }
}

impl Default for OverlayConfig {
    fn default() -> Self {
        Self::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_as_documented() {
        let p = OverlayConfig::practical();
        let e = OverlayConfig::paper_exact();
        assert!(e.parent_set_radius_mult > p.parent_set_radius_mult);
        assert!(e.sp_gap > p.sp_gap);
        assert_eq!(OverlayConfig::default().sp_gap, p.sp_gap);
        assert_eq!(
            OverlayConfig::singleton_parents().parent_set_radius_mult,
            0.0
        );
    }
}
