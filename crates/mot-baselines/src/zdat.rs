//! Z-DAT — Zone-based Deviation-Avoidance Tree (Lin et al. \[21\]).
//!
//! The sensing region is divided into rectangular zones which are
//! recursively combined into a tree: quadrant subdivision until zones are
//! small, a head per zone (the sensor nearest the zone center, ties
//! favoring higher measured activity), zone members attached under their
//! head, and child-zone heads attached under the parent zone's head.
//! Spatial recursion keeps tree paths short and object hand-offs mostly
//! zone-local — the structural reason Z-DAT tracks MOT closely in the
//! paper's cost figures.
//!
//! The `shortcuts` flavor is obtained by wrapping the same tree in
//! [`crate::TreeTracker`] with `shortcuts = true` (Liu et al. \[23\]).

use crate::traffic::DetectionRates;
use crate::tree::TrackingTree;
use mot_net::{Graph, NetError, NodeId, Point};

/// Zone-recursion parameters.
#[derive(Clone, Copy, Debug)]
pub struct ZdatParams {
    /// Zones at or below this population stop subdividing.
    pub leaf_capacity: usize,
    /// Hard recursion depth limit (guards degenerate geometry).
    pub max_depth: usize,
}

impl Default for ZdatParams {
    fn default() -> Self {
        ZdatParams {
            leaf_capacity: 4,
            max_depth: 16,
        }
    }
}

struct Builder<'a> {
    g: &'a Graph,
    rates: &'a DetectionRates,
    params: ZdatParams,
    parent: Vec<Option<NodeId>>,
}

#[derive(Clone, Copy)]
struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

impl Builder<'_> {
    /// Head = node nearest the zone center; ties by higher activity,
    /// then smaller id.
    fn pick_head(&self, nodes: &[NodeId], center: Point) -> NodeId {
        *nodes
            .iter()
            .min_by(|&&a, &&b| {
                let da = self
                    .g
                    .position(a)
                    .expect("positions checked")
                    .distance(&center);
                let db = self
                    .g
                    .position(b)
                    .expect("positions checked")
                    .distance(&center);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        let aa = self.rates.node_activity(self.g, a);
                        let ab = self.rates.node_activity(self.g, b);
                        ab.partial_cmp(&aa).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .then(a.cmp(&b))
            })
            .expect("zone is non-empty")
    }

    /// Builds the zone rooted in `bbox`, returning its head.
    fn build_zone(&mut self, nodes: &[NodeId], bbox: BBox, depth: usize) -> NodeId {
        let center = bbox.center();
        if nodes.len() <= self.params.leaf_capacity || depth >= self.params.max_depth {
            let head = self.pick_head(nodes, center);
            for &u in nodes {
                if u != head {
                    self.parent[u.index()] = Some(head);
                }
            }
            return head;
        }
        // quadrant split at the bbox midpoint
        let mut quads: [Vec<NodeId>; 4] = Default::default();
        for &u in nodes {
            let p = self.g.position(u).expect("positions checked");
            let right = usize::from(p.x > center.x);
            let above = usize::from(p.y > center.y);
            quads[above * 2 + right].push(u);
        }
        // Degenerate geometry (all nodes in one quadrant): fall back to a
        // leaf zone rather than recursing forever.
        if quads.iter().filter(|q| !q.is_empty()).count() <= 1 {
            let head = self.pick_head(nodes, center);
            for &u in nodes {
                if u != head {
                    self.parent[u.index()] = Some(head);
                }
            }
            return head;
        }
        let mut heads = Vec::new();
        for (qi, quad) in quads.iter().enumerate() {
            if quad.is_empty() {
                continue;
            }
            let (right, above) = (qi % 2 == 1, qi / 2 == 1);
            let sub = BBox {
                min: Point::new(
                    if right { center.x } else { bbox.min.x },
                    if above { center.y } else { bbox.min.y },
                ),
                max: Point::new(
                    if right { bbox.max.x } else { center.x },
                    if above { bbox.max.y } else { center.y },
                ),
            };
            heads.push(self.build_zone(quad, sub, depth + 1));
        }
        let zone_head = self.pick_head(&heads, center);
        for &h in &heads {
            if h != zone_head {
                self.parent[h.index()] = Some(zone_head);
            }
        }
        zone_head
    }
}

/// Builds the Z-DAT tree. Requires geographic positions.
pub fn build_zdat(
    g: &Graph,
    rates: &DetectionRates,
    params: ZdatParams,
) -> Result<TrackingTree, NetError> {
    let positions = g.positions().ok_or(NetError::MissingPositions)?;
    let (mut min, mut max) = (positions[0], positions[0]);
    for p in positions {
        min = Point::new(min.x.min(p.x), min.y.min(p.y));
        max = Point::new(max.x.max(p.x), max.y.max(p.y));
    }
    let mut b = Builder {
        g,
        rates,
        params,
        parent: vec![None; g.node_count()],
    };
    let all: Vec<NodeId> = g.nodes().collect();
    let root = b.build_zone(&all, BBox { min, max }, 0);
    Ok(TrackingTree::from_parents(root, b.parent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeTracker;
    use mot_core::{ObjectId, Tracker};
    use mot_net::{generators, DenseOracle};

    #[test]
    fn requires_positions() {
        let g = generators::random_tree(10, 1).unwrap();
        // random_tree has synthetic positions; strip them via a rebuild
        let mut b = mot_net::GraphBuilder::new(10);
        for (a, c, w) in g.edges() {
            b.add_edge(a, c, w).unwrap();
        }
        let bare = b.build().unwrap();
        assert!(matches!(
            build_zdat(
                &bare,
                &DetectionRates::uniform(&bare),
                ZdatParams::default()
            ),
            Err(NetError::MissingPositions)
        ));
    }

    #[test]
    fn spans_grid_and_answers_queries() {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_zdat(&g, &DetectionRates::uniform(&g), ZdatParams::default()).unwrap();
        assert_eq!(t.len(), 36);
        let mut tracker = TreeTracker::new("Z-DAT", t, &m, false);
        tracker.publish(ObjectId(0), NodeId(0)).unwrap();
        for hop in [1, 2, 8, 14, 20] {
            tracker.move_object(ObjectId(0), NodeId(hop)).unwrap();
        }
        for x in g.nodes() {
            assert_eq!(tracker.query(x, ObjectId(0)).unwrap().proxy, NodeId(20));
        }
    }

    #[test]
    fn zone_locality_beats_stun_on_local_moves() {
        // Objects shuttling inside one corner zone should stay cheap in
        // Z-DAT (zone-local LCA) — the paper's motivation for zones.
        let g = generators::grid(8, 8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_zdat(&g, &DetectionRates::uniform(&g), ZdatParams::default()).unwrap();
        let mut tracker = TreeTracker::new("Z-DAT", t, &m, false);
        tracker.publish(ObjectId(0), NodeId(0)).unwrap();
        let mut cost = 0.0;
        for _ in 0..10 {
            cost += tracker.move_object(ObjectId(0), NodeId(1)).unwrap().cost;
            cost += tracker.move_object(ObjectId(0), NodeId(0)).unwrap().cost;
        }
        // 20 single-hop moves; zone-local handling keeps the total far
        // below 20 x diameter.
        assert!(cost < 20.0 * m.diameter() / 2.0, "local moves cost {cost}");
    }

    #[test]
    fn depth_reflects_quadrant_recursion() {
        let g = generators::grid(16, 16).unwrap();
        let t = build_zdat(&g, &DetectionRates::uniform(&g), ZdatParams::default()).unwrap();
        let max_depth = g.nodes().map(|u| t.depth(u)).max().unwrap();
        // 16x16 with leaf capacity 4: about log4(256/4) + 1 = 4 levels of
        // zones, plus the leaf attachment
        assert!((3..=8).contains(&max_depth), "unexpected depth {max_depth}");
    }

    #[test]
    fn leaf_capacity_one_still_terminates() {
        let g = generators::grid(4, 4).unwrap();
        let t = build_zdat(
            &g,
            &DetectionRates::uniform(&g),
            ZdatParams {
                leaf_capacity: 1,
                max_depth: 16,
            },
        )
        .unwrap();
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn works_on_random_geometric_deployments() {
        let g = generators::random_geometric(60, 10.0, 2.2, 4).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_zdat(&g, &DetectionRates::uniform(&g), ZdatParams::default()).unwrap();
        let mut tracker = TreeTracker::new("Z-DAT", t, &m, true);
        tracker.publish(ObjectId(0), NodeId(30)).unwrap();
        tracker.move_object(ObjectId(0), NodeId(31)).unwrap();
        assert_eq!(
            tracker.query(NodeId(0), ObjectId(0)).unwrap().proxy,
            NodeId(31)
        );
    }
}
