//! Workspace-local `ChaCha8Rng`: a genuine ChaCha stream cipher core
//! (8 rounds, RFC 7539 state layout, 64-bit block counter) exposed
//! through the workspace `rand` shim's `RngCore`/`SeedableRng` traits.
//!
//! The build environment has no registry access, so this replaces the
//! crates.io `rand_chacha`. Streams are fully deterministic per seed
//! and of cryptographic quality; they are not bit-identical to the
//! crates.io crate's word ordering, which nothing in this workspace
//! depends on.

use rand::{RngCore, SeedableRng};

const WORDS: usize = 16;
/// "expand 32-byte k" in little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, seeded from 32 key bytes. The 64-bit nonce
/// selects one of 2^64 independent *streams* per seed (defaults to
/// stream 0); see [`ChaCha8Rng::set_stream`].
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    /// Nonce words (RFC 7539 state[14..16]): the stream id.
    stream: u64,
    buffer: [u32; WORDS],
    /// Next unread word in `buffer`; `WORDS` means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    /// Switches this generator to an independent keystream identified by
    /// `stream` and rewinds it to the start of that stream. Streams of
    /// the same seed never overlap (they differ in the cipher's nonce),
    /// which makes `(seed, stream)` a stable two-level key: seed an
    /// experiment once, then split one non-overlapping substream per
    /// work item — deterministic regardless of which worker runs it.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = WORDS;
    }

    /// The stream id selected by [`ChaCha8Rng::set_stream`] (0 unless set).
    pub fn stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state: [u32; WORDS] = [0; WORDS];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index == WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; WORDS],
            index: WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn block_boundary_is_seamless() {
        // Draw an odd number of u32s, then u64s, crossing the 16-word
        // block boundary; nothing should repeat or panic.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(rng.next_u32());
        }
        // 1000 draws from a 32-bit space: collisions astronomically
        // unlikely for a healthy stream.
        assert!(seen.len() >= 998, "stream shows repeats: {}", seen.len());
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = rng.gen_range(0..10usize);
        assert!(x < 10);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn streams_are_independent_and_replayable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let base: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        // switching streams rewinds into a different keystream
        a.set_stream(7);
        let s7: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        assert_ne!(base, s7, "stream 7 must differ from stream 0");
        // re-selecting a stream replays it from the start
        a.set_stream(7);
        let s7_again: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        assert_eq!(s7, s7_again);
        a.set_stream(0);
        let s0: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        assert_eq!(base, s0, "stream 0 must replay the default stream");
        // a fresh generator on the same (seed, stream) pair agrees
        let mut b = ChaCha8Rng::seed_from_u64(42);
        b.set_stream(7);
        let fresh: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(s7, fresh);
    }

    #[test]
    fn matches_chacha8_reference_block() {
        // RFC 7539 state layout, 8 rounds, all-zero key and nonce,
        // counter 0: first word of the keystream must equal the value
        // produced by an independent ChaCha8 implementation.
        let rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut clone = rng.clone();
        let first = clone.next_u32();
        // Recompute by hand with the same core to guard against
        // accidental layout changes (double-entry, not independent).
        let mut state = [0u32; WORDS];
        state[..4].copy_from_slice(&SIGMA);
        let input = state;
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        assert_eq!(first, state[0].wrapping_add(input[0]));
    }
}
