//! Node identifiers and geographic positions.

use std::fmt;

/// Identifier of a sensor node.
///
/// Node ids are dense indices `0..n` into the graph's adjacency table. The
/// paper assumes every sensor has a unique ID and that ties (e.g. parent
/// selection, parent-set visiting order) are broken by ID order; this
/// newtype keeps those comparisons explicit and type-safe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The adjacency-table index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A geographic position of a sensor in the plane.
///
/// The paper assumes sensors are aware of their geographic locations; the
/// Z-DAT baseline additionally needs them to carve the sensing region into
/// rectangular zones.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// A point at `(x, y)`.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn node_id_ordering_follows_numeric_order() {
        assert!(NodeId(3) < NodeId(10));
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance(&a) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }
}
