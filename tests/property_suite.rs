//! Property-based tests (proptest) over the whole stack: random
//! topologies, random workloads, adversarial churn — checking the
//! invariants the correctness of tracking rests on.

use mot_tracking::prelude::*;
use proptest::prelude::*;

/// Strategy: a connected random-geometric deployment of 10..=60 sensors.
fn deployment() -> impl Strategy<Value = Graph> {
    (10usize..=60, 0u64..1000).prop_map(|(n, seed)| {
        generators::random_geometric(n, 8.0, 2.5, seed).expect("connected deployment")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The distance oracle is a metric: symmetric, zero diagonal,
    /// triangle inequality.
    #[test]
    fn distance_oracle_is_a_metric(g in deployment()) {
        let m = DistanceMatrix::build(&g).unwrap();
        let n = g.node_count();
        for i in 0..n.min(12) {
            for j in 0..n.min(12) {
                let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
                prop_assert!((m.dist(u, v) - m.dist(v, u)).abs() < 1e-4);
                if i == j {
                    prop_assert_eq!(m.dist(u, v), 0.0);
                }
                for k in 0..n.min(8) {
                    let w = NodeId::from_index(k);
                    prop_assert!(m.dist(u, v) <= m.dist(u, w) + m.dist(w, v) + 1e-4);
                }
            }
        }
    }

    /// The core reachability invariant: after ANY sequence of random
    /// moves, every sensor's query returns the object's true proxy, in
    /// plain and load-balanced mode.
    #[test]
    fn queries_always_find_the_true_proxy(
        g in deployment(),
        moves in proptest::collection::vec(any::<u32>(), 1..80),
        lb in any::<bool>(),
        overlay_seed in 0u64..100,
    ) {
        let m = DistanceMatrix::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), overlay_seed);
        let cfg = if lb { MotConfig::load_balanced() } else { MotConfig::plain() };
        let mut t = MotTracker::new(&overlay, &m, cfg);
        let o = ObjectId(0);
        let mut proxy = NodeId(0);
        t.publish(o, proxy).unwrap();
        for mv in moves {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[(mv as usize) % nbrs.len()].to;
            t.move_object(o, proxy).unwrap();
        }
        t.check_invariants();
        for x in g.nodes() {
            let q = t.query(x, o).unwrap();
            prop_assert_eq!(q.proxy, proxy);
            prop_assert!(q.cost.is_finite() && q.cost >= 0.0);
        }
    }

    /// Lemma 2.1 with the paper's constants: detection paths of nodes at
    /// distance d meet by level ceil(log2 d) + 1.
    #[test]
    fn detection_paths_meet_at_the_lemma_level(
        g in deployment(),
        seed in 0u64..50,
    ) {
        let m = DistanceMatrix::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::paper_exact(), seed);
        let n = g.node_count();
        for i in (0..n).step_by(3) {
            for j in (1..n).step_by(5) {
                let (u, v) = (NodeId::from_index(i), NodeId::from_index(j));
                if u == v {
                    continue;
                }
                let d = m.dist(u, v);
                let bound =
                    (((d.log2().ceil()) as i64).max(0) as usize + 1).min(overlay.height());
                prop_assert!(
                    overlay.meet_level(u, v) <= bound,
                    "meet({}, {}) = {} > {} (d = {})",
                    u, v, overlay.meet_level(u, v), bound, d
                );
            }
        }
    }

    /// Message-pruning-tree invariant: after any move sequence the
    /// detection sets of a tree baseline are exactly the proxy's tree
    /// ancestors.
    #[test]
    fn tree_detection_sets_are_proxy_ancestors(
        g in deployment(),
        moves in proptest::collection::vec(any::<u32>(), 1..60),
    ) {
        let m = DistanceMatrix::build(&g).unwrap();
        let rates = DetectionRates::uniform(&g);
        let tree = build_stun(&g, &rates);
        let mut t = TreeTracker::new("STUN", tree, &m, false);
        let o = ObjectId(0);
        let mut proxy = NodeId(0);
        t.publish(o, proxy).unwrap();
        for mv in moves {
            let nbrs = g.neighbors(proxy);
            proxy = nbrs[(mv as usize) % nbrs.len()].to;
            t.move_object(o, proxy).unwrap();
        }
        // expected ancestor chain
        let mut expected = std::collections::HashSet::new();
        let mut cur = Some(proxy);
        while let Some(u) = cur {
            expected.insert(u);
            cur = t.tree().parent(u);
        }
        for u in g.nodes() {
            prop_assert_eq!(t.holds(u, o), expected.contains(&u), "at {}", u);
        }
        let total: usize = t.node_loads().iter().sum();
        prop_assert_eq!(total, expected.len());
    }

    /// de Bruijn canonical routing is a shortest path for every dimension
    /// and label pair.
    #[test]
    fn debruijn_routing_is_shortest(dim in 0u32..9, src in any::<u32>(), dst in any::<u32>()) {
        let g = DeBruijnGraph::new(dim);
        let mask = g.vertex_count() - 1;
        let (src, dst) = (src & mask, dst & mask);
        let route = g.route(src, dst);
        prop_assert_eq!(route[0], src);
        prop_assert_eq!(*route.last().unwrap(), dst);
        for w in route.windows(2) {
            prop_assert!(g.successors(w[0]).contains(&w[1]));
        }
        prop_assert!(route.len() as u32 - 1 <= dim);
    }

    /// Dynamic clusters stay routable through arbitrary churn: after any
    /// join/leave sequence every virtual label routes to a live member.
    #[test]
    fn dynamic_cluster_stays_routable(
        ops in proptest::collection::vec((any::<bool>(), any::<u16>()), 1..60),
    ) {
        let mut c = DynamicCluster::new((0..4u32).map(NodeId).collect());
        let mut next_id = 100u32;
        for (join, pick) in ops {
            if join || c.members().len() <= 1 {
                c.join(NodeId(next_id));
                next_id += 1;
            } else {
                let idx = (pick as usize) % c.members().len();
                let victim = c.members()[idx];
                c.leave(victim);
            }
            let e = c.embedding();
            prop_assert!(e.members().contains(&c.leader()));
            for label in 0..e.graph().vertex_count() {
                prop_assert!(e.members().contains(&e.host(label)));
            }
            // every member can route to the leader
            let leader_label = e.label_of(c.leader()).unwrap();
            for &mm in e.members() {
                let src = e.label_of(mm).unwrap();
                let hosts = e.route_hosts(src, leader_label);
                prop_assert_eq!(*hosts.last().unwrap(), c.leader());
            }
        }
    }

    /// Workload generation always produces valid adjacent chains.
    #[test]
    fn workloads_are_valid_walks(
        g in deployment(),
        objects in 1usize..6,
        moves in 1usize..50,
        seed in 0u64..500,
    ) {
        let w = WorkloadSpec::new(objects, moves, seed).generate(&g);
        let mut pos = w.initial.clone();
        for m in &w.moves {
            prop_assert!(g.has_edge(m.from, m.to));
            prop_assert_eq!(m.from, pos[m.object.index()]);
            pos[m.object.index()] = m.to;
        }
    }
}
