//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--profile quick|standard|paper] [--oracle auto|dense|lazy|hybrid]
//!             [--csv DIR] [IDS...]
//! ```
//!
//! `IDS` default to every figure. Examples:
//!
//! ```text
//! cargo run --release -p mot-bench --bin experiments -- fig4 fig6
//! cargo run --release -p mot-bench --bin experiments -- --profile paper all
//! cargo run --release -p mot-bench --bin experiments -- --oracle lazy scale
//! ```

use mot_bench::{
    ablation_table, churn_table, general_graph_table, load_figure, locality_table,
    maintenance_figure, mobility_table, publish_cost_table, query_figure, scale_table,
    state_size_table, FigureTable, Profile,
};
use mot_net::OracleKind;
use mot_sim::Algo;
use std::io::Write;

fn profile_for(objects: usize, name: &str, oracle: OracleKind) -> Profile {
    match name {
        "quick" => Profile::quick(objects),
        "standard" => Profile::standard(objects),
        "paper" => Profile::paper(objects),
        other => {
            eprintln!("unknown profile '{other}' (quick|standard|paper)");
            std::process::exit(2);
        }
    }
    .with_oracle(oracle)
}

/// The `scale` experiment sweeps grids past the paper's sizes; the
/// largest (64×64 = 4096 nodes) sits exactly at the dense limit, so
/// `--oracle lazy` runs it well under the dense matrix's 64 MiB.
fn scale_profile(name: &str, oracle: OracleKind) -> Profile {
    let mut p = profile_for(50, name, oracle);
    p.grids = vec![(32, 32), (64, 64)];
    p
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile_name = "standard".to_string();
    let mut oracle = OracleKind::Auto;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => {
                profile_name = it.next().unwrap_or_else(|| {
                    eprintln!("--profile needs a value");
                    std::process::exit(2);
                })
            }
            "--oracle" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--oracle needs a value (auto|dense|lazy|hybrid)");
                    std::process::exit(2);
                });
                oracle = OracleKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown oracle '{v}' (auto|dense|lazy|hybrid)");
                    std::process::exit(2);
                });
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--profile quick|standard|paper]\n\
                     \x20                  [--oracle auto|dense|lazy|hybrid] [--csv DIR] [IDS...]\n\
                     ids: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15\n\
                     \x20    pub-cost ablations general churn state-size locality mobility\n\
                     \x20    scale all"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = [
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "pub-cost",
            "ablations",
            "general",
            "churn",
            "state-size",
            "locality",
            "mobility",
            "scale",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let emit = |table: FigureTable, id: &str| {
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{id}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(table.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    };

    for id in &ids {
        let started = std::time::Instant::now();
        match id.as_str() {
            "fig4" => emit(
                maintenance_figure(&profile_for(100, &profile_name, oracle), false),
                id,
            ),
            "fig5" => emit(
                maintenance_figure(&profile_for(1000, &profile_name, oracle), false),
                id,
            ),
            "fig6" => emit(
                query_figure(&profile_for(100, &profile_name, oracle), false),
                id,
            ),
            "fig7" => emit(
                query_figure(&profile_for(1000, &profile_name, oracle), false),
                id,
            ),
            "fig8" => emit(
                load_figure(&profile_for(100, &profile_name, oracle), Algo::Stun, 0),
                id,
            ),
            "fig9" => emit(
                load_figure(&profile_for(100, &profile_name, oracle), Algo::Stun, 10),
                id,
            ),
            "fig10" => emit(
                load_figure(&profile_for(100, &profile_name, oracle), Algo::Zdat, 0),
                id,
            ),
            "fig11" => emit(
                load_figure(&profile_for(100, &profile_name, oracle), Algo::Zdat, 10),
                id,
            ),
            "fig12" => emit(
                maintenance_figure(&profile_for(100, &profile_name, oracle), true),
                id,
            ),
            "fig13" => emit(
                maintenance_figure(&profile_for(1000, &profile_name, oracle), true),
                id,
            ),
            "fig14" => emit(
                query_figure(&profile_for(100, &profile_name, oracle), true),
                id,
            ),
            "fig15" => emit(
                query_figure(&profile_for(1000, &profile_name, oracle), true),
                id,
            ),
            "pub-cost" => emit(
                publish_cost_table(&profile_for(100, &profile_name, oracle)),
                id,
            ),
            "ablations" => emit(ablation_table(&profile_for(100, &profile_name, oracle)), id),
            "general" => emit(
                general_graph_table(&profile_for(50, &profile_name, oracle)),
                id,
            ),
            "churn" => emit(churn_table(), id),
            "state-size" => emit(
                state_size_table(&profile_for(100, &profile_name, oracle)),
                id,
            ),
            "locality" => emit(locality_table(&profile_for(100, &profile_name, oracle)), id),
            "mobility" => emit(mobility_table(&profile_for(50, &profile_name, oracle)), id),
            "scale" => emit(scale_table(&scale_profile(&profile_name, oracle)), id),
            other => eprintln!("skipping unknown experiment id '{other}'"),
        }
        eprintln!("[{id} took {:.1?}]", started.elapsed());
    }
}
