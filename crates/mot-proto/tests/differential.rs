//! Differential testing: the message-passing runtime against the direct
//! implementation of Algorithm 1.
//!
//! Both are renderings of the same algorithm over the same overlay, so on
//! identical workloads they must agree *exactly*: same proxies, identical
//! detection-list state at every (node, level), identical per-node loads,
//! and equal operation costs (maintenance to the last bit; queries too,
//! since both use the same canonical probing and nearest-holder descent).

use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
use mot_hierarchy::{build_doubling, Overlay, OverlayConfig};
use mot_net::{generators, DenseOracle, Graph};
use mot_proto::ProtoTracker;
use mot_sim::{MobilityModel, WorkloadSpec};

struct Env {
    graph: Graph,
    oracle: DenseOracle,
    overlay: Overlay,
}

fn env(g: Graph, seed: u64, cfg: &OverlayConfig) -> Env {
    let oracle = DenseOracle::build(&g).unwrap();
    let overlay = build_doubling(&g, &oracle, cfg, seed);
    Env {
        graph: g,
        oracle,
        overlay,
    }
}

fn assert_state_identical(env: &Env, direct: &MotTracker, proto: &ProtoTracker, objects: u32) {
    for node in env.graph.nodes() {
        for level in 0..=env.overlay.height() {
            for o in 0..objects {
                let o = ObjectId(o);
                assert_eq!(
                    direct.holds(node, level, o),
                    proto.holds(node, level, o),
                    "DL divergence at node {node}, level {level}, object {o}"
                );
            }
        }
    }
    assert_eq!(direct.node_loads(), proto.node_loads(), "load divergence");
}

fn run_differential(env: &Env, objects: u32, moves: usize, seed: u64, cfg: MotConfig) {
    let mut direct = MotTracker::new(&env.overlay, &env.oracle, cfg.clone());
    let mut proto = ProtoTracker::new(&env.overlay, &env.oracle, &cfg);

    let spec = WorkloadSpec {
        objects: objects as usize,
        moves_per_object: moves,
        model: MobilityModel::RandomWalk,
        seed,
    };
    let w = spec.generate(&env.graph);

    // --- publish ---------------------------------------------------------
    for (oi, &proxy) in w.initial.iter().enumerate() {
        let o = ObjectId(oi as u32);
        let cd = direct.publish(o, proxy).unwrap();
        let cp = proto.publish(o, proxy).unwrap();
        assert!(
            (cd - cp).abs() < 1e-6,
            "publish cost divergence for {o}: direct {cd} vs proto {cp}"
        );
    }
    assert_state_identical(env, &direct, &proto, objects);

    // --- maintenance -------------------------------------------------------
    for (step, m) in w.moves.iter().enumerate() {
        let md = direct.move_object(m.object, m.to).unwrap();
        let mp = proto.move_object(m.object, m.to).unwrap();
        assert_eq!(md.from, mp.from, "step {step}: from divergence");
        assert!(
            (md.cost - mp.cost).abs() < 1e-6,
            "step {step} ({:?} -> {}): cost divergence direct {} vs proto {}",
            m.object,
            m.to,
            md.cost,
            mp.cost
        );
        if step % 29 == 0 {
            assert_state_identical(env, &direct, &proto, objects);
        }
    }
    assert_state_identical(env, &direct, &proto, objects);

    // --- queries -----------------------------------------------------------
    for o in 0..objects {
        let o = ObjectId(o);
        for x in env.graph.nodes() {
            let qd = direct.query(x, o).unwrap();
            let qp = proto.query(x, o).unwrap();
            assert_eq!(qd.proxy, qp.proxy, "query({x}, {o}): proxy divergence");
            assert!(
                (qd.cost - qp.cost).abs() < 1e-6,
                "query({x}, {o}): cost divergence direct {} vs proto {}",
                qd.cost,
                qp.cost
            );
        }
    }
}

#[test]
fn identical_on_grid_with_special_parents() {
    let env = env(
        generators::grid(6, 6).unwrap(),
        3,
        &OverlayConfig::practical(),
    );
    run_differential(&env, 3, 120, 7, MotConfig::plain());
}

#[test]
fn identical_on_grid_without_special_parents() {
    let env = env(
        generators::grid(6, 6).unwrap(),
        3,
        &OverlayConfig::practical(),
    );
    run_differential(&env, 3, 120, 11, MotConfig::no_special_parents());
}

#[test]
fn identical_on_random_geometric() {
    let g = generators::random_geometric(50, 8.0, 2.2, 5).unwrap();
    let env = env(g, 9, &OverlayConfig::practical());
    run_differential(&env, 2, 100, 13, MotConfig::plain());
}

#[test]
fn identical_on_ring() {
    let env = env(
        generators::ring(32).unwrap(),
        4,
        &OverlayConfig::practical(),
    );
    run_differential(&env, 2, 90, 17, MotConfig::plain());
}

#[test]
fn identical_with_paper_exact_constants() {
    let env = env(
        generators::grid(5, 5).unwrap(),
        6,
        &OverlayConfig::paper_exact(),
    );
    run_differential(&env, 2, 60, 19, MotConfig::plain());
}

#[test]
fn identical_with_wide_parent_sets() {
    let mut cfg = OverlayConfig::practical();
    cfg.parent_set_radius_mult = 2.0;
    let env = env(generators::grid(6, 6).unwrap(), 8, &cfg);
    run_differential(&env, 2, 100, 23, MotConfig::plain());
}
