//! Workload persistence: save generated traces, replay recorded ones.
//!
//! Reproducibility beyond seeds: a workload can be written to JSON and
//! replayed later (or shipped alongside results). `validate_against`
//! guards replays on the wrong topology — a trace is only meaningful on
//! the graph whose adjacencies it walks.

use crate::mobility::Workload;
use mot_net::Graph;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised by workload I/O.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Json(serde_json::Error),
    /// The trace references nodes or adjacencies the graph lacks.
    TopologyMismatch(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "workload i/o failed: {e}"),
            IoError::Json(e) => write!(f, "workload (de)serialization failed: {e}"),
            IoError::TopologyMismatch(what) => {
                write!(f, "trace does not fit the topology: {what}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Writes a workload as pretty JSON.
pub fn save_workload(w: &Workload, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    serde_json::to_writer_pretty(&mut out, w)?;
    out.flush()?;
    Ok(())
}

/// Reads a workload back from JSON.
pub fn load_workload(path: impl AsRef<Path>) -> Result<Workload, IoError> {
    let file = BufReader::new(std::fs::File::open(path)?);
    Ok(serde_json::from_reader(file)?)
}

/// Checks that a (possibly externally produced) trace is executable on
/// `g`: nodes in range, every move leaving the object's current proxy
/// along an existing adjacency.
pub fn validate_against(w: &Workload, g: &Graph) -> Result<(), IoError> {
    let n = g.node_count();
    for (oi, &p) in w.initial.iter().enumerate() {
        if p.index() >= n {
            return Err(IoError::TopologyMismatch(format!(
                "initial proxy {p} of object {oi} out of range (n = {n})"
            )));
        }
    }
    let mut pos = w.initial.clone();
    for (step, m) in w.moves.iter().enumerate() {
        if m.object.index() >= pos.len() {
            return Err(IoError::TopologyMismatch(format!(
                "move {step} references unknown object {}",
                m.object
            )));
        }
        if m.from != pos[m.object.index()] {
            return Err(IoError::TopologyMismatch(format!(
                "move {step}: object {} is at {}, not {}",
                m.object,
                pos[m.object.index()],
                m.from
            )));
        }
        if m.to.index() >= n || !g.has_edge(m.from, m.to) {
            return Err(IoError::TopologyMismatch(format!(
                "move {step}: ({}, {}) is not an adjacency",
                m.from, m.to
            )));
        }
        pos[m.object.index()] = m.to;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{MoveOp, WorkloadSpec};
    use mot_core::ObjectId;
    use mot_net::{generators, NodeId};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mot-sim-io-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_the_trace() {
        let g = generators::grid(4, 4).unwrap();
        let w = WorkloadSpec::new(3, 25, 7).generate(&g);
        let path = tmp("roundtrip");
        save_workload(&w, &path).unwrap();
        let back = load_workload(&path).unwrap();
        assert_eq!(w, back);
        validate_against(&back, &g).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn validation_rejects_wrong_topology() {
        let g = generators::grid(4, 4).unwrap();
        let small = generators::grid(2, 2).unwrap();
        let w = WorkloadSpec::new(2, 30, 3).generate(&g);
        assert!(matches!(
            validate_against(&w, &small),
            Err(IoError::TopologyMismatch(_))
        ));
    }

    #[test]
    fn validation_rejects_broken_chains() {
        let g = generators::grid(3, 3).unwrap();
        let w = Workload {
            initial: vec![NodeId(0)],
            moves: vec![MoveOp { object: ObjectId(0), from: NodeId(4), to: NodeId(5) }],
        };
        let err = validate_against(&w, &g).unwrap_err();
        assert!(err.to_string().contains("is at 0, not 4"), "{err}");
    }

    #[test]
    fn validation_rejects_teleports() {
        let g = generators::grid(3, 3).unwrap();
        let w = Workload {
            initial: vec![NodeId(0)],
            moves: vec![MoveOp { object: ObjectId(0), from: NodeId(0), to: NodeId(8) }],
        };
        assert!(matches!(
            validate_against(&w, &g),
            Err(IoError::TopologyMismatch(_))
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"{ not json").unwrap();
        assert!(matches!(load_workload(&path), Err(IoError::Json(_))));
        std::fs::remove_file(path).ok();
        assert!(matches!(load_workload("/no/such/file.json"), Err(IoError::Io(_))));
    }
}
