//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--profile quick|standard|paper] [--jobs N]
//!             [--oracle auto|dense|lazy|hybrid|cached]
//!             [--csv DIR] [--metrics FILE.json] [--trace FILE.ndjson]
//!             [--bench-out FILE.json] [--profile-phases]
//!             [--experiment ID] [IDS...]
//! ```
//!
//! `--jobs N` sizes the fan-out worker pool (default 0 = one worker per
//! hardware thread). Output is bit-identical for every value — see
//! DESIGN.md §12 — so the flag only changes wall-clock time.
//!
//! `IDS` default to every figure. Examples:
//!
//! ```text
//! cargo run --release -p mot-bench --bin experiments -- fig4 fig6
//! cargo run --release -p mot-bench --bin experiments -- --profile paper all
//! cargo run --release -p mot-bench --bin experiments -- --oracle cached scale
//! cargo run --release -p mot-bench --bin experiments -- --profile quick faults-smoke
//! cargo run --release -p mot-bench --bin experiments -- --jobs 2 --metrics svc.json service-smoke
//! cargo run --release -p mot-bench --bin experiments -- --experiment churn-smoke
//! cargo run --release -p mot-bench --bin experiments -- churn-smoke
//! cargo run --release -p mot-bench --bin experiments -- --profile quick --csv out scenarios
//! cargo run --release -p mot-bench --bin experiments -- --jobs 2 scenarios-smoke
//! cargo run --release -p mot-bench --bin experiments -- --metrics out.json fig4 level-decomp
//! cargo run --release -p mot-bench --bin experiments -- --profile smoke bench-baseline
//! ```
//!
//! `bench-baseline` is the wall-clock harness (PERFORMANCE.md): it times
//! graph build, oracle warm-up, optimized vs frozen-reference hierarchy
//! construction (reference and adaptive-dispatch phases only up to 4096
//! nodes), and a fig4 replay per size, plus the profile's service
//! soaks, then writes the schema'd JSON to `--bench-out` (default
//! `BENCH_pr8.json`). Its profiles are `smoke`/`full`; the figure
//! profile names map onto them.
//!
//! `--profile-phases` additionally prints a self-timing breakdown to
//! stderr for the `fig4` and `service`/`service-smoke` experiments
//! (graph/oracle/hierarchy/publish/replay/queries, bed-build vs soak).
//! Stdout tables are unaffected, so the flag composes with `--csv` and
//! the determinism checks. See PERFORMANCE.md for the flamegraph recipe
//! when per-function attribution is needed below phase granularity.
//!
//! `--metrics` writes every produced table, per-experiment wall-clock,
//! and the fixed-seed instrumented run's aggregates as one JSON report;
//! `--trace` dumps that run's raw event stream as NDJSON (one event per
//! line, deterministic for a fixed profile).
//!
//! Any failure — bad arguments, an unwritable CSV directory, a tracker
//! error, or a runner's own health check (wrong query answers,
//! unrepaired objects) — exits nonzero with a readable message.

use mot_bench::{
    ablation_table, churn_smoke_table, churn_table, faults_table, general_graph_table,
    instrumented_run, level_decomposition_table, load_figure, locality_table, maintenance_figure,
    mobility_table, profile_fig4_phases, publish_cost_table, query_figure, run_baseline,
    scale_table, scenario_tables, scenarios_smoke_table, service_phase_timings, service_run,
    state_size_table, trace_events, BaselineProfile, BenchError, FigureTable, Profile, RunReport,
    ScenarioProfile, ServiceSpec, SizeSpec,
};
use mot_net::OracleKind;
use mot_sim::Algo;
use std::io::Write;
use std::process::ExitCode;

const ALL_IDS: [&str; 29] = [
    "bench-baseline",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "pub-cost",
    "ablations",
    "general",
    "churn",
    "churn-smoke",
    "scenarios",
    "scenarios-smoke",
    "state-size",
    "locality",
    "mobility",
    "scale",
    "faults",
    "faults-smoke",
    "service",
    "service-smoke",
    "level-decomp",
];

fn profile_for(
    objects: usize,
    name: &str,
    oracle: OracleKind,
    jobs: usize,
) -> Result<Profile, BenchError> {
    Ok(match name {
        "quick" => Profile::quick(objects),
        "standard" => Profile::standard(objects),
        "paper" => Profile::paper(objects),
        other => return Err(format!("unknown profile '{other}' (quick|standard|paper)").into()),
    }
    .with_oracle(oracle)
    .with_jobs(jobs))
}

/// The `scale` experiment sweeps grids past the paper's sizes; the
/// largest (64×64 = 4096 nodes) sits exactly at the dense limit, so
/// `--oracle lazy` or `--oracle cached` runs it well under the dense
/// matrix's 64 MiB.
fn scale_profile(name: &str, oracle: OracleKind, jobs: usize) -> Result<Profile, BenchError> {
    let mut p = profile_for(50, name, oracle, jobs)?;
    p.grids = vec![(32, 32), (64, 64)];
    Ok(p)
}

/// The CI smoke environment: a fixed-seed quick profile on a 16×16 grid
/// whose health checks (all queries correct, zero unrepaired objects)
/// fail the process — the `--profile` flag deliberately has no effect.
fn smoke_profile(oracle: OracleKind, jobs: usize) -> Profile {
    let mut p = Profile::quick(10).with_oracle(oracle).with_jobs(jobs);
    p.moves_per_object = 60;
    p.queries = 120;
    p
}

/// `bench-baseline` measures wall-clock, not cost ratios, so it has its
/// own scale names: `smoke` (CI seconds-scale, `auto` backend) and
/// `full` (the committed `BENCH_pr8.json` artifact, up to 2^20 nodes on
/// the cached backend). The figure profile names map onto them so
/// `--profile quick all` keeps working. An explicit `--oracle` flag
/// overrides either profile's default backend; without it each profile
/// keeps its own.
fn baseline_profile_for(
    name: &str,
    oracle: Option<OracleKind>,
    jobs: usize,
) -> Result<BaselineProfile, BenchError> {
    let mut p = match name {
        "smoke" | "quick" => BaselineProfile::smoke(),
        "full" | "standard" | "paper" => BaselineProfile::full(),
        other => return Err(format!("unknown bench profile '{other}' (smoke|full)").into()),
    };
    if let Some(kind) = oracle {
        p = p.with_oracle(kind);
    }
    Ok(p.with_jobs(jobs))
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile_name = "standard".to_string();
    let mut oracle_flag: Option<OracleKind> = None;
    let mut csv_dir: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut jobs: usize = 0;
    let mut bench_out = "BENCH_pr8.json".to_string();
    let mut profile_phases = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile_name = it.next().ok_or("--profile needs a value")?,
            "--oracle" => {
                let v = it
                    .next()
                    .ok_or("--oracle needs a value (auto|dense|lazy|hybrid|cached)")?;
                oracle_flag = Some(OracleKind::parse(&v).ok_or_else(|| {
                    format!("unknown oracle '{v}' (auto|dense|lazy|hybrid|cached)")
                })?);
            }
            "--csv" => csv_dir = Some(it.next().ok_or("--csv needs a directory")?),
            "--metrics" => metrics_path = Some(it.next().ok_or("--metrics needs a file path")?),
            "--trace" => trace_path = Some(it.next().ok_or("--trace needs a file path")?),
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a worker count (0 = auto)")?;
                jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a number, got '{v}'"))?;
            }
            "--bench-out" => bench_out = it.next().ok_or("--bench-out needs a file path")?,
            "--profile-phases" => profile_phases = true,
            // Alias for a positional id — reads naturally in scripts:
            // `experiments --experiment churn-smoke`.
            "--experiment" => ids.push(it.next().ok_or("--experiment needs an id")?),
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--profile quick|standard|paper] [--jobs N]\n\
                     \x20                  [--oracle auto|dense|lazy|hybrid|cached] [--csv DIR]\n\
                     \x20                  [--metrics FILE.json] [--trace FILE.ndjson]\n\
                     \x20                  [--bench-out FILE.json] [--profile-phases]\n\
                     \x20                  [--experiment ID] [IDS...]\n\
                     ids: {}\n\
                     \x20    all\n\
                     bench-baseline also accepts --profile smoke|full and writes\n\
                     its phase timings to --bench-out (default BENCH_pr8.json);\n\
                     --profile-phases prints self-timing breakdowns (stderr) for\n\
                     fig4 and service/service-smoke runs;\n\
                     scenarios prints one table per family (waypoint levy hotspot\n\
                     zipf adversarial) before its summary — see EXPERIMENTS.md's\n\
                     scenario handbook",
                    ALL_IDS.join(" ")
                );
                return Ok(());
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    // Figure experiments default to Auto; bench-baseline profiles carry
    // their own backend default and only an explicit flag overrides it.
    let oracle = oracle_flag.unwrap_or(OracleKind::Auto);

    let emit = |table: FigureTable, id: &str| -> Result<(), BenchError> {
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create csv dir '{dir}': {e}"))?;
            let path = format!("{dir}/{id}.csv");
            let mut f =
                std::fs::File::create(&path).map_err(|e| format!("cannot create '{path}': {e}"))?;
            f.write_all(table.to_csv().as_bytes())
                .map_err(|e| format!("cannot write '{path}': {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(())
    };

    let mut report = RunReport {
        profile: profile_name.clone(),
        oracle: oracle.label().to_string(),
        ..RunReport::default()
    };
    // Runs the chaos soak, prints its wall-clock throughput (stderr —
    // tables stay byte-identical across --jobs), and stashes the full
    // report for the --metrics trailer.
    let run_service_id =
        |spec: ServiceSpec, service_out: &mut Option<String>| -> Result<FigureTable, BenchError> {
            let t0 = std::time::Instant::now();
            let (table, rep) = service_run(&spec)?;
            let end_to_end = t0.elapsed().as_secs_f64();
            eprintln!(
                "[service: {} ops in {:.2}s = {:.0} ops/s, {} workers]",
                rep.sent,
                rep.wall_secs,
                rep.sent as f64 / rep.wall_secs.max(1e-9),
                rep.workers
            );
            if profile_phases {
                eprint!(
                    "{}",
                    service_phase_timings(&spec, &rep, end_to_end).render()
                );
            }
            *service_out = Some(rep.to_json());
            Ok(table)
        };
    let mut service_json: Option<String> = None;
    for id in &ids {
        let started = std::time::Instant::now();
        let name = profile_name.as_str();
        if profile_phases && id == "fig4" {
            // One extra instrumented replay on the profile's largest
            // grid — the figure sweep itself stays untouched.
            let p = profile_for(100, name, oracle, jobs)?;
            let &(rows, cols) = p.grids.last().expect("profiles sweep at least one grid");
            let timings = profile_fig4_phases(
                SizeSpec::Grid { rows, cols },
                p.objects,
                p.moves_per_object,
                p.oracle,
                1,
            )
            .map_err(|e| format!("--profile-phases fig4 run failed: {e}"))?;
            eprint!("{}", timings.render());
        }
        let table = match id.as_str() {
            "bench-baseline" => baseline_profile_for(name, oracle_flag, jobs)
                .and_then(|bp| run_baseline(&bp))
                .and_then(|rep| {
                    std::fs::write(&bench_out, rep.to_json())
                        .map_err(|e| format!("cannot write '{bench_out}': {e}"))?;
                    eprintln!("wrote {bench_out}");
                    if let Some(service) = rep.service_to_table() {
                        println!("{}", service.render());
                    }
                    Ok(rep.to_table())
                }),
            "fig4" => maintenance_figure(&profile_for(100, name, oracle, jobs)?, false),
            "fig5" => maintenance_figure(&profile_for(1000, name, oracle, jobs)?, false),
            "fig6" => query_figure(&profile_for(100, name, oracle, jobs)?, false),
            "fig7" => query_figure(&profile_for(1000, name, oracle, jobs)?, false),
            "fig8" => load_figure(&profile_for(100, name, oracle, jobs)?, Algo::Stun, 0),
            "fig9" => load_figure(&profile_for(100, name, oracle, jobs)?, Algo::Stun, 10),
            "fig10" => load_figure(&profile_for(100, name, oracle, jobs)?, Algo::Zdat, 0),
            "fig11" => load_figure(&profile_for(100, name, oracle, jobs)?, Algo::Zdat, 10),
            "fig12" => maintenance_figure(&profile_for(100, name, oracle, jobs)?, true),
            "fig13" => maintenance_figure(&profile_for(1000, name, oracle, jobs)?, true),
            "fig14" => query_figure(&profile_for(100, name, oracle, jobs)?, true),
            "fig15" => query_figure(&profile_for(1000, name, oracle, jobs)?, true),
            "pub-cost" => publish_cost_table(&profile_for(100, name, oracle, jobs)?),
            "ablations" => ablation_table(&profile_for(100, name, oracle, jobs)?),
            "general" => general_graph_table(&profile_for(50, name, oracle, jobs)?),
            "churn" => churn_table(jobs),
            // Fixed CI spec: --profile has no effect, --jobs does
            // (table parity across jobs is part of the contract).
            "churn-smoke" => churn_smoke_table(jobs),
            // Emits one detail table per scenario family, then hands the
            // cross-family summary back through the normal emit path so
            // `{csv}/scenarios.csv` and the metrics report stay uniform.
            "scenarios" => (|| {
                let p = ScenarioProfile::for_profile(name)?.with_jobs(jobs);
                let mut tables = scenario_tables(&p)?;
                let (_, summary) = tables.pop().ok_or("scenario sweep produced no summary")?;
                for (fid, t) in tables {
                    if metrics_path.is_some() {
                        report.tables.push((fid.clone(), t.clone()));
                    }
                    emit(t, &fid)?;
                }
                Ok(summary)
            })(),
            // Fixed CI spec: --profile has no effect, --jobs does.
            "scenarios-smoke" => scenarios_smoke_table(jobs),
            "state-size" => state_size_table(&profile_for(100, name, oracle, jobs)?),
            "locality" => locality_table(&profile_for(100, name, oracle, jobs)?),
            "mobility" => mobility_table(&profile_for(50, name, oracle, jobs)?),
            "scale" => scale_table(&scale_profile(name, oracle, jobs)?),
            "faults" => faults_table(&profile_for(100, name, oracle, jobs)?, (32, 32)),
            "faults-smoke" => faults_table(&smoke_profile(oracle, jobs), (16, 16)),
            "service" => ServiceSpec::for_profile(name)
                .map(|s| s.with_oracle(oracle).with_jobs(jobs))
                .and_then(|s| run_service_id(s, &mut service_json)),
            "service-smoke" => {
                // Fixed CI spec: --profile has no effect, --jobs does
                // (parity is part of the contract being smoked).
                let mut spec = ServiceSpec::smoke().with_oracle(oracle);
                if jobs != 0 {
                    spec = spec.with_jobs(jobs);
                }
                run_service_id(spec, &mut service_json)
            }
            "level-decomp" => level_decomposition_table(&profile_for(100, name, oracle, jobs)?),
            other => {
                let known = ALL_IDS.join(" ");
                return Err(format!("unknown experiment id '{other}' (known: {known} all)").into());
            }
        };
        let table = table.map_err(|e| format!("experiment '{id}' failed: {e}"))?;
        if metrics_path.is_some() {
            report.tables.push((id.clone(), table.clone()));
        }
        emit(table, id)?;
        report
            .timings_secs
            .push((id.clone(), started.elapsed().as_secs_f64()));
        eprintln!("[{id} took {:.1?}]", started.elapsed());
    }
    if let Some(path) = &trace_path {
        let events = trace_events(&profile_for(100, profile_name.as_str(), oracle, jobs)?, 1)
            .map_err(|e| format!("--trace run failed: {e}"))?;
        let mut out = String::new();
        for ev in &events {
            out.push_str(&ev.to_ndjson());
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("cannot write '{path}': {e}"))?;
        eprintln!("wrote {path} ({} events)", events.len());
    }
    if let Some(path) = &metrics_path {
        let (agg, cache) =
            instrumented_run(&profile_for(100, profile_name.as_str(), oracle, jobs)?, 1)
                .map_err(|e| format!("--metrics instrumented run failed: {e}"))?;
        report.trace = Some(agg);
        report.cache = cache;
        report.service = service_json;
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write '{path}': {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
