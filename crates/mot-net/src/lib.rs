//! Weighted sensor-network graph substrate for the MOT tracking suite.
//!
//! The paper models a sensor field as a static weighted graph
//! `G = (V, E, w)`: vertices are sensor nodes, an edge connects two sensors
//! when a mobile object can pass directly between their detection ranges,
//! and `w` gives the (normalized) distance between adjacent sensors. Every
//! communication cost in the tracking algorithms is a sum of shortest-path
//! distances in `G`, so this crate provides:
//!
//! * [`Graph`] — the weighted graph with optional geographic positions,
//! * generators for the topologies used in the evaluation
//!   ([`generators::grid`], [`generators::ring`], [`generators::torus`],
//!   [`generators::line`], [`generators::random_geometric`],
//!   [`generators::random_tree`]),
//! * single-source shortest paths ([`dijkstra`]) and shortest-path trees,
//! * an all-pairs [`DistanceMatrix`] oracle (built in parallel) that backs
//!   hierarchy construction, ball queries, and cost accounting,
//! * network [`metrics`]: diameter, doubling-dimension estimation,
//!   growth-restriction checks.
//!
//! # Example
//!
//! ```
//! use mot_net::{generators, DistanceMatrix, NodeId};
//!
//! // The paper's largest evaluation topology: a 32x32 unit grid.
//! let g = generators::grid(32, 32)?;
//! assert_eq!(g.node_count(), 1024);
//!
//! // The all-pairs oracle backs every cost account and radius query.
//! let m = DistanceMatrix::build(&g)?;
//! assert_eq!(m.diameter(), 62.0);
//! assert_eq!(m.dist(NodeId(0), NodeId(1023)), 62.0);
//!
//! // k-neighborhoods (the paper's N(v, r)):
//! let near = m.ball(NodeId(0), 2.0);
//! assert_eq!(near.len(), 6); // self + 2 at distance 1 + 3 at distance 2
//! # Ok::<(), mot_net::NetError>(())
//! ```

pub mod builder;
pub mod dijkstra;
pub mod error;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod node;
pub mod ops;
pub mod oracle;

pub use builder::GraphBuilder;
pub use dijkstra::{dijkstra, dijkstra_targeted, shortest_path_tree, PathTree};
pub use error::NetError;
pub use graph::{Edge, Graph};
pub use metrics::{estimate_doubling_dimension, growth_ratio, GraphStats};
pub use node::{NodeId, Point};
pub use ops::{k_nearest, path_between, subgraph};
pub use oracle::DistanceMatrix;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
