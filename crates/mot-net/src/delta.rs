//! Topology deltas and seeded churn schedules (the paper's §7 events).
//!
//! A [`TopologyDelta`] is an ordered batch of sensor leave/join events
//! applied to a [`Graph`] through its generation-stamped mutation API.
//! [`ChurnSchedule`] generates a reproducible alternating sequence of
//! such deltas that (a) keeps the active topology connected after every
//! event and (b) only ever rejoins a sensor with its original edge star
//! filtered to active endpoints — so the active topology after any
//! prefix is exactly the subgraph of the base graph induced by the
//! active node set. That invariant is what lets the differential suites
//! rebuild a from-scratch witness on the final topology and demand
//! bit-identity (DESIGN.md §17).

use crate::error::NetError;
use crate::graph::{Edge, Graph};
use crate::node::NodeId;
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One sensor-level topology event.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnEvent {
    /// The sensor leaves the field: its node is deactivated and its
    /// incident edges are stripped.
    Leave(NodeId),
    /// A sensor (re)joins with the given edge star (half-edges from its
    /// side; endpoints must be active).
    Join {
        /// The joining node id.
        node: NodeId,
        /// Its incident edges at join time.
        edges: Vec<Edge>,
    },
}

impl ChurnEvent {
    /// The node the event is about.
    pub fn node(&self) -> NodeId {
        match self {
            ChurnEvent::Leave(u) => *u,
            ChurnEvent::Join { node, .. } => *node,
        }
    }
}

/// An ordered batch of churn events applied atomically from the
/// caller's point of view (consumers see the graph only between
/// deltas).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TopologyDelta {
    /// The events, applied in order.
    pub events: Vec<ChurnEvent>,
}

impl TopologyDelta {
    /// A delta holding a single leave event.
    pub fn leave(u: NodeId) -> Self {
        TopologyDelta {
            events: vec![ChurnEvent::Leave(u)],
        }
    }

    /// A delta holding a single join event.
    pub fn join(node: NodeId, edges: Vec<Edge>) -> Self {
        TopologyDelta {
            events: vec![ChurnEvent::Join { node, edges }],
        }
    }

    /// Applies every event in order, returning the sorted, deduplicated
    /// set of nodes whose adjacency rows changed (the mutated region).
    /// Fails atomically per event: on error the graph keeps the events
    /// applied so far.
    pub fn apply(&self, g: &mut Graph) -> Result<Vec<NodeId>> {
        let mut touched = Vec::new();
        for ev in &self.events {
            match ev {
                ChurnEvent::Leave(u) => {
                    let star = g.remove_node(*u)?;
                    touched.push(*u);
                    touched.extend(star.iter().map(|e| e.to));
                }
                ChurnEvent::Join { node, edges } => {
                    g.restore_node(*node, edges)?;
                    touched.push(*node);
                    touched.extend(edges.iter().map(|e| e.to));
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        Ok(touched)
    }
}

/// Parameters for [`ChurnSchedule::generate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Number of deltas to generate (each holds one event).
    pub deltas: usize,
    /// Upper bound on simultaneously departed sensors.
    pub max_departed: usize,
    /// RNG seed; equal specs on equal graphs yield equal schedules.
    pub seed: u64,
}

impl ChurnSpec {
    /// A schedule of `deltas` single-event deltas with at most
    /// `max(1, n/8)`-ish concurrency decided by the caller's
    /// `max_departed`.
    pub fn new(deltas: usize, max_departed: usize, seed: u64) -> Self {
        ChurnSpec {
            deltas,
            max_departed,
            seed,
        }
    }
}

/// A reproducible leave/join schedule over a base graph.
///
/// Generation walks a shadow copy of the graph: each step flips a coin
/// between removing a random *removable* active sensor (one whose
/// departure keeps the survivors connected) and rejoining a random
/// departed sensor with its base-graph star filtered to active
/// endpoints. The set of sensors the schedule is allowed to touch is
/// fixed up front ([`ChurnSchedule::removable`]) so higher layers can
/// steer workloads away from churning sensors.
///
/// # Example: replaying a schedule
///
/// ```
/// use mot_net::{generators, ChurnSchedule, ChurnSpec};
///
/// let base = generators::grid(6, 6)?;
/// let sched = ChurnSchedule::generate(&base, &ChurnSpec::new(12, 4, 7))?;
/// assert_eq!(sched.len(), 12);
///
/// // Replay: the active topology stays connected after every delta...
/// let mut g = base.clone();
/// for delta in sched.deltas() {
///     let touched = delta.apply(&mut g)?;
///     assert!(!touched.is_empty());
///     assert!(g.is_connected());
/// }
/// // ...and equals the base graph induced on the active node set.
/// for u in g.active_nodes() {
///     for e in g.neighbors(u) {
///         assert_eq!(base.edge_weight(u, e.to), Some(e.weight));
///     }
/// }
/// # Ok::<(), mot_net::NetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    deltas: Vec<TopologyDelta>,
    removable: Vec<NodeId>,
}

impl ChurnSchedule {
    /// Generates a schedule of `spec.deltas` single-event deltas against
    /// `base` (which must be connected, unmutated, and have at least 2
    /// nodes; errors with [`NetError::EmptyGraph`] /
    /// [`NetError::Disconnected`] otherwise).
    pub fn generate(base: &Graph, spec: &ChurnSpec) -> Result<Self> {
        if base.node_count() < 2 {
            return Err(NetError::EmptyGraph);
        }
        if !base.is_connected() {
            return Err(NetError::Disconnected);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x43_48_55_52_4e);
        let n = base.node_count();
        let max_departed = spec.max_departed.clamp(1, n - 1);
        // The churn pool: up to 4x the concurrency bound, sampled
        // without replacement so the steady state cycles sensors.
        let pool_target = (4 * max_departed).min(n - 1);
        let mut pool: Vec<NodeId> = Vec::with_capacity(pool_target);
        let mut in_pool = vec![false; n];
        while pool.len() < pool_target {
            let u = NodeId(rng.gen_range(0..n as u32));
            if !in_pool[u.index()] {
                in_pool[u.index()] = true;
                pool.push(u);
            }
        }
        pool.sort_unstable();

        let mut shadow = base.clone();
        let mut departed: Vec<(NodeId, Vec<Edge>)> = Vec::new();
        let mut deltas = Vec::with_capacity(spec.deltas);
        while deltas.len() < spec.deltas {
            let want_leave =
                departed.is_empty() || (departed.len() < max_departed && rng.gen::<f64>() < 0.5);
            if want_leave {
                // Try pool members in a random rotation until one is
                // removable without disconnecting the survivors.
                let start = rng.gen_range(0..pool.len());
                let mut placed = false;
                for k in 0..pool.len() {
                    let u = pool[(start + k) % pool.len()];
                    if !shadow.is_active(u) {
                        continue;
                    }
                    let star = shadow.remove_node(u)?;
                    if shadow.is_connected() {
                        departed.push((u, star));
                        deltas.push(TopologyDelta::leave(u));
                        placed = true;
                        break;
                    }
                    shadow.restore_node(u, &star)?;
                }
                if placed {
                    continue;
                }
                // Nothing removable right now (rare; e.g. every pool
                // member is an articulation point). Fall through to a
                // join if possible, else give up on this step.
                if departed.is_empty() {
                    break;
                }
            }
            let i = rng.gen_range(0..departed.len());
            let (u, _) = departed.swap_remove(i);
            // Rejoin with the base star filtered to active endpoints,
            // preserving the induced-subgraph invariant.
            let star: Vec<Edge> = base
                .neighbors(u)
                .iter()
                .filter(|e| shadow.is_active(e.to))
                .copied()
                .collect();
            shadow.restore_node(u, &star)?;
            deltas.push(TopologyDelta::join(u, star));
        }
        Ok(ChurnSchedule {
            deltas,
            removable: pool,
        })
    }

    /// The generated deltas, in replay order.
    pub fn deltas(&self) -> &[TopologyDelta] {
        &self.deltas
    }

    /// Sorted set of sensors the schedule may remove. Workload
    /// generators steer publishes/queries/moves away from these so data
    /// ops never address a departed sensor.
    pub fn removable(&self) -> &[NodeId] {
        &self.removable
    }

    /// Number of deltas.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when the schedule holds no deltas.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn schedule_is_deterministic_and_connectivity_preserving() {
        let g = generators::grid(5, 5).unwrap();
        let spec = ChurnSpec::new(20, 5, 42);
        let a = ChurnSchedule::generate(&g, &spec).unwrap();
        let b = ChurnSchedule::generate(&g, &spec).unwrap();
        assert_eq!(a.deltas(), b.deltas());
        assert_eq!(a.removable(), b.removable());
        assert_eq!(a.len(), 20);

        let mut live = g.clone();
        for d in a.deltas() {
            d.apply(&mut live).unwrap();
            assert!(live.is_connected());
        }
    }

    #[test]
    fn replay_yields_induced_subgraph_of_base() {
        let g = generators::random_geometric(60, 8.0, 2.0, 9).unwrap();
        let sched = ChurnSchedule::generate(&g, &ChurnSpec::new(30, 8, 3)).unwrap();
        let mut live = g.clone();
        for d in sched.deltas() {
            d.apply(&mut live).unwrap();
        }
        for u in live.nodes() {
            if !live.is_active(u) {
                assert!(live.neighbors(u).is_empty());
                continue;
            }
            // Active rows are the base rows filtered to active peers.
            let expect: Vec<Edge> = g
                .neighbors(u)
                .iter()
                .filter(|e| live.is_active(e.to))
                .copied()
                .collect();
            assert_eq!(live.neighbors(u), expect.as_slice());
        }
    }

    #[test]
    fn leave_targets_stay_inside_removable_set() {
        let g = generators::grid(6, 6).unwrap();
        let sched = ChurnSchedule::generate(&g, &ChurnSpec::new(25, 6, 11)).unwrap();
        for d in sched.deltas() {
            for ev in &d.events {
                assert!(sched.removable().binary_search(&ev.node()).is_ok());
            }
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let g = generators::grid(1, 1).unwrap();
        assert!(matches!(
            ChurnSchedule::generate(&g, &ChurnSpec::new(5, 1, 0)),
            Err(NetError::EmptyGraph)
        ));
    }
}
