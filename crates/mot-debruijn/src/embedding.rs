//! Embedding a de Bruijn graph onto a physical cluster (paper §5).
//!
//! A cluster `X` (the members of an internal node's radius-`2^i` ball)
//! hosts a `d = ⌈log |X|⌉`-dimensional de Bruijn graph. Member `i` hosts
//! virtual label `i`; a virtual label `ℓ ≥ |X|` is *emulated* by the
//! member whose label equals `ℓ` with the most significant bit cleared
//! (Rajaraman et al.'s trick, quoted in §7). Each member therefore stores
//! only the physical addresses of its ≤ 4 de Bruijn neighbors — constant
//! state — yet any member can route to the holder of any label in
//! `≤ d` overlay hops.

use crate::graph::DeBruijnGraph;
use mot_net::NodeId;

/// A de Bruijn graph embedded in a concrete cluster of sensor nodes.
#[derive(Clone, Debug)]
pub struct Embedding {
    graph: DeBruijnGraph,
    /// Cluster members; member `i` hosts virtual label `i` (plus the
    /// emulated label `i | msb` when that exceeds the member count).
    members: Vec<NodeId>,
}

impl Embedding {
    /// Embeds the minimal de Bruijn graph over `members`.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(members: Vec<NodeId>) -> Self {
        assert!(!members.is_empty(), "cannot embed into an empty cluster");
        let graph = DeBruijnGraph::for_cluster_size(members.len());
        Embedding { graph, members }
    }

    /// The abstract graph.
    pub fn graph(&self) -> &DeBruijnGraph {
        &self.graph
    }

    /// Number of physical members `|X|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for a single-member cluster.
    pub fn is_empty(&self) -> bool {
        false // constructor rejects empty clusters
    }

    /// Cluster members in label order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The physical host of virtual `label`.
    pub fn host(&self, label: u32) -> NodeId {
        debug_assert!(label < self.graph.vertex_count());
        let idx = label as usize;
        if idx < self.members.len() {
            self.members[idx]
        } else {
            // Clear the most significant bit of the d-bit label.
            let msb = 1u32 << (self.graph.dim() - 1);
            self.members[(label & !msb) as usize]
        }
    }

    /// The physical label a member hosts primarily.
    pub fn label_of(&self, node: NodeId) -> Option<u32> {
        self.members
            .iter()
            .position(|&m| m == node)
            .map(|i| i as u32)
    }

    /// Physical node sequence of the canonical route between two virtual
    /// labels, with consecutive duplicates collapsed (a member emulating
    /// two labels forwards to itself for free).
    pub fn route_hosts(&self, src: u32, dst: u32) -> Vec<NodeId> {
        let mut hosts: Vec<NodeId> = self
            .graph
            .route(src, dst)
            .into_iter()
            .map(|l| self.host(l))
            .collect();
        hosts.dedup();
        hosts
    }

    /// The constant-size neighbor table of `node`: physical addresses of
    /// the de Bruijn successors/predecessors of every label it hosts.
    pub fn neighbor_table(&self, node: NodeId) -> Vec<NodeId> {
        let mut table = Vec::new();
        for label in 0..self.graph.vertex_count() {
            if self.host(label) != node {
                continue;
            }
            for next in self.graph.successors(label) {
                table.push(self.host(next));
            }
            for prev in self.graph.predecessors(label) {
                table.push(self.host(prev));
            }
        }
        table.sort();
        table.dedup();
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Embedding {
        Embedding::new((0..n).map(|i| NodeId::from_index(100 + i)).collect())
    }

    #[test]
    fn hosts_cover_all_labels() {
        let e = cluster(5); // dim 3, 8 labels
        assert_eq!(e.graph().dim(), 3);
        for label in 0..8 {
            let h = e.host(label);
            assert!(e.members().contains(&h));
        }
        // label 4 hosted by member 4; labels >= |X| are emulated: label 5
        // by member 5 & !4 = 1, label 7 by member 7 & !4 = 3
        assert_eq!(e.host(4), NodeId(104));
        assert_eq!(e.host(5), NodeId(101));
        assert_eq!(e.host(7), NodeId(103));
    }

    #[test]
    fn emulated_label_differs_only_in_msb() {
        let e = cluster(6); // dim 3
        for label in 6..8u32 {
            let emulated_by = e.host(label);
            let base = label & !(1 << 2);
            assert_eq!(emulated_by, e.members()[base as usize]);
        }
    }

    #[test]
    fn route_hosts_connect_endpoints() {
        let e = cluster(11); // dim 4
        for src in 0..e.graph().vertex_count() {
            for dst in 0..e.graph().vertex_count() {
                let hosts = e.route_hosts(src, dst);
                assert_eq!(*hosts.first().unwrap(), e.host(src));
                assert_eq!(*hosts.last().unwrap(), e.host(dst));
                assert!(hosts.len() <= e.graph().dim() as usize + 1);
            }
        }
    }

    #[test]
    fn neighbor_tables_are_constant_size() {
        // In-degree + out-degree ≤ 4 per hosted label, ≤ 2 labels per
        // member ⇒ table of at most 8 distinct physical neighbors.
        let e = cluster(13);
        for &m in e.members() {
            let t = e.neighbor_table(m);
            assert!(!t.is_empty());
            assert!(t.len() <= 8, "table for {m} has {} entries", t.len());
        }
    }

    #[test]
    fn single_member_cluster() {
        let e = cluster(1);
        assert_eq!(e.graph().dim(), 0);
        assert_eq!(e.host(0), NodeId(100));
        assert_eq!(e.route_hosts(0, 0), vec![NodeId(100)]);
    }

    #[test]
    fn label_lookup() {
        let e = cluster(4);
        assert_eq!(e.label_of(NodeId(102)), Some(2));
        assert_eq!(e.label_of(NodeId(999)), None);
    }
}
