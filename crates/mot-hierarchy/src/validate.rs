//! Structural validation of overlays.
//!
//! Used by tests and by `mot-core`'s debug assertions: a malformed overlay
//! (empty station, unsorted visiting order, missing root) would silently
//! corrupt detection lists, so the checks live next to the constructions.

use crate::overlay::{Overlay, OverlayKind};
use mot_net::DistanceOracle;

/// Collects human-readable descriptions of every structural violation.
/// An empty result means the overlay is well-formed.
pub fn validate(o: &Overlay, m: &dyn DistanceOracle) -> Vec<String> {
    let mut issues = Vec::new();
    let h = o.height();
    if o.level_members(h).len() != 1 {
        issues.push(format!(
            "top level has {} members, expected exactly the root",
            o.level_members(h).len()
        ));
    }
    for ui in 0..o.node_count() {
        let u = mot_net::NodeId::from_index(ui);
        if o.station(u, 0) != [u] {
            issues.push(format!("station({u}, 0) is not [{u}]"));
        }
        if o.station(u, h) != [o.root()] {
            issues.push(format!("station({u}, {h}) does not equal the root"));
        }
        for l in 0..=h {
            let s = o.station(u, l);
            if s.is_empty() {
                issues.push(format!("station({u}, {l}) is empty"));
            }
            if !s.windows(2).all(|w| w[0] < w[1]) {
                issues.push(format!("station({u}, {l}) not sorted/deduped"));
            }
            for &member in s {
                if o.level_members(l).binary_search(&member).is_err() {
                    issues.push(format!(
                        "station({u}, {l}) member {member} is not a level-{l} node"
                    ));
                }
            }
        }
    }
    if o.kind() == OverlayKind::Doubling {
        // level-ℓ members pairwise >= 2^ℓ apart (MIS separation).
        // Checked through ball queries instead of all member pairs: a
        // violating pair (a, b) has b ∈ N(a, 2^ℓ), so scanning each
        // member's ball against the member set finds every violation
        // while asking the oracle only for neighborhood-sized work —
        // no O(k²) dist scan, hence no row warm-up on on-demand
        // backends.
        for l in 1..=h {
            let members = o.level_members(l);
            let member_set: std::collections::HashSet<_> = members.iter().copied().collect();
            let sep = (1u64 << l) as f64;
            for &a in members {
                for b in m.ball(a, sep) {
                    if a < b && member_set.contains(&b) && m.dist(a, b) < sep {
                        issues.push(format!(
                            "level {l}: members {a}, {b} violate 2^{l} separation"
                        ));
                    }
                }
            }
        }
    }
    issues
}

/// Panics with a readable report if the overlay is malformed. Handy in
/// tests and example binaries.
pub fn assert_valid(o: &Overlay, m: &dyn DistanceOracle) {
    let issues = validate(o, m);
    assert!(issues.is_empty(), "overlay invalid:\n{}", issues.join("\n"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverlayConfig;
    use crate::{build_doubling, build_general};
    use mot_net::generators;
    use mot_net::DenseOracle;

    #[test]
    fn doubling_overlays_validate() {
        for (r, c) in [(3, 3), (6, 6), (8, 8)] {
            let g = generators::grid(r, c).unwrap();
            let m = DenseOracle::build(&g).unwrap();
            for cfg in [OverlayConfig::practical(), OverlayConfig::paper_exact()] {
                let o = build_doubling(&g, &m, &cfg, 42);
                assert_valid(&o, &m);
            }
        }
    }

    #[test]
    fn general_overlays_validate() {
        for g in [
            generators::grid(6, 6).unwrap(),
            generators::ring(30).unwrap(),
            generators::random_tree(40, 5).unwrap(),
        ] {
            let m = DenseOracle::build(&g).unwrap();
            let o = build_general(&g, &m, &OverlayConfig::practical(), 42);
            assert_valid(&o, &m);
        }
    }
}
