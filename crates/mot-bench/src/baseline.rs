//! Phase-timed benchmark baseline behind `experiments bench-baseline`.
//!
//! Everything else in `mot-bench` measures *cost ratios* — numbers the
//! determinism contract (DESIGN.md §12) pins bit-exactly. This module
//! measures *wall-clock*, phase by phase, against the frozen
//! [`reference_build_doubling`] yardstick, and serializes the result as
//! the schema'd JSON committed at the repo root (`BENCH_pr5.json`).
//!
//! Per grid size the harness times, strictly in order and sequentially
//! (so phases never contend with each other):
//!
//! 1. `graph_build_secs` — CSR construction via [`generators::grid`];
//! 2. `oracle_warmup_secs` — distance-backend build
//!    ([`OracleKind::build`] after `resolve`);
//! 3. `hierarchy_secs` — the optimized [`build_doubling`];
//! 4. `hierarchy_seq_secs` — the frozen pre-optimization builder on the
//!    same inputs, whose overlay is then asserted **identical** to the
//!    optimized one (a mismatch fails the run, not just a test);
//! 5. `fig4_replay_secs` — publish + one-by-one move replay of a Fig. 4
//!    MOT arm, plus its cost ratio as a cross-check value.
//!
//! `jobs` is recorded for provenance only: timed phases are sequential
//! by design so numbers stay comparable across runs and machines.

use crate::figures::BenchError;
use mot_baselines::DetectionRates;
use mot_core::fmt_f64;
use mot_hierarchy::{build_doubling, reference_build_doubling, Overlay, OverlayConfig};
use mot_net::{generators, OracleKind};
use mot_sim::{replay_moves, run_publish, Algo, TestBed, WorkloadSpec};
use std::time::Instant;

/// Schema identifier stamped into every report this module writes.
pub const BENCH_SCHEMA: &str = "mot-bench-baseline/1";

/// Scale knobs for one `bench-baseline` run.
#[derive(Clone, Debug)]
pub struct BaselineProfile {
    /// Profile name recorded in the report (`smoke` / `full`).
    pub name: String,
    /// Grid sizes timed, in order.
    pub sizes: Vec<(usize, usize)>,
    /// Objects in the fig4-replay phase.
    pub objects: usize,
    /// Moves per object in the fig4-replay phase.
    pub moves_per_object: usize,
    /// Distance backend for the oracle-warmup and replay phases.
    pub oracle: OracleKind,
    /// Recorded for provenance; phases are timed sequentially.
    pub jobs: usize,
    /// Seed for overlay construction and the replay workload.
    pub seed: u64,
}

impl BaselineProfile {
    /// CI-scale run: three small grids, seconds of wall-clock.
    pub fn smoke() -> Self {
        BaselineProfile {
            name: "smoke".into(),
            sizes: vec![(8, 8), (12, 12), (16, 16)],
            objects: 10,
            moves_per_object: 30,
            oracle: OracleKind::Auto,
            jobs: 1,
            seed: 1,
        }
    }

    /// The committed-artifact run: up to the paper's 4096-node grid.
    pub fn full() -> Self {
        BaselineProfile {
            name: "full".into(),
            sizes: vec![(16, 16), (32, 32), (64, 64)],
            objects: 100,
            moves_per_object: 100,
            oracle: OracleKind::Auto,
            jobs: 1,
            seed: 1,
        }
    }

    /// Profile by CLI name.
    pub fn for_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Same profile on an explicit distance backend.
    pub fn with_oracle(mut self, kind: OracleKind) -> Self {
        self.oracle = kind;
        self
    }

    /// Same profile with an explicit recorded jobs value.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// Phase timings for one grid size.
#[derive(Clone, Debug)]
pub struct SizeTiming {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// `rows * cols`.
    pub nodes: usize,
    /// CSR graph construction.
    pub graph_build_secs: f64,
    /// Distance-backend build.
    pub oracle_warmup_secs: f64,
    /// Optimized doubling-overlay construction.
    pub hierarchy_secs: f64,
    /// Frozen reference doubling-overlay construction (same inputs).
    pub hierarchy_seq_secs: f64,
    /// `hierarchy_seq_secs / hierarchy_secs`.
    pub hierarchy_speedup: f64,
    /// Publish + one-by-one replay of the fig4 MOT arm.
    pub fig4_replay_secs: f64,
    /// Maintenance cost ratio of that arm (cross-check value).
    pub fig4_mot_ratio: f64,
}

/// A full `bench-baseline` report, serializable as schema'd JSON.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Always [`BENCH_SCHEMA`].
    pub schema: &'static str,
    /// Profile name the run used.
    pub profile: String,
    /// Distance-backend label.
    pub oracle: String,
    /// Recorded `--jobs` value (provenance only).
    pub jobs: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub hardware_threads: usize,
    /// One entry per grid size, in run order.
    pub sizes: Vec<SizeTiming>,
}

impl BaselineReport {
    /// Pretty-printed JSON matching the schema documented in
    /// PERFORMANCE.md.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"oracle\": \"{}\",\n", self.oracle));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str("  \"sizes\": [\n");
        for (i, s) in self.sizes.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"rows\": {},\n", s.rows));
            out.push_str(&format!("      \"cols\": {},\n", s.cols));
            out.push_str(&format!("      \"nodes\": {},\n", s.nodes));
            for (key, v) in [
                ("graph_build_secs", s.graph_build_secs),
                ("oracle_warmup_secs", s.oracle_warmup_secs),
                ("hierarchy_secs", s.hierarchy_secs),
                ("hierarchy_seq_secs", s.hierarchy_seq_secs),
                ("hierarchy_speedup", s.hierarchy_speedup),
                ("fig4_replay_secs", s.fig4_replay_secs),
                ("fig4_mot_ratio", s.fig4_mot_ratio),
            ] {
                out.push_str(&format!("      \"{}\": {},\n", key, fmt_f64(v)));
            }
            // trailing comma removal: rewrite last ",\n" as "\n"
            out.truncate(out.len() - 2);
            out.push('\n');
            out.push_str(if i + 1 == self.sizes.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl BaselineReport {
    /// Human-readable summary table (same rendering pipeline as the
    /// figure experiments; seconds, plus the speedup column).
    pub fn to_table(&self) -> crate::report::FigureTable {
        crate::report::FigureTable {
            title: format!(
                "bench-baseline phase timings, profile {}, oracle {}",
                self.profile, self.oracle
            ),
            x_label: "nodes".into(),
            columns: vec![
                "graph_s".into(),
                "oracle_s".into(),
                "hier_s".into(),
                "hier_seq_s".into(),
                "speedup".into(),
                "fig4_s".into(),
                "fig4_ratio".into(),
            ],
            rows: self
                .sizes
                .iter()
                .map(|s| {
                    (
                        s.nodes.to_string(),
                        vec![
                            s.graph_build_secs,
                            s.oracle_warmup_secs,
                            s.hierarchy_secs,
                            s.hierarchy_seq_secs,
                            s.hierarchy_speedup,
                            s.fig4_replay_secs,
                            s.fig4_mot_ratio,
                        ],
                    )
                })
                .collect(),
        }
    }
}

/// Structural equality through the public overlay accessors: kinds,
/// levels, and every per-node station must agree.
fn overlays_identical(a: &Overlay, b: &Overlay) -> bool {
    if a.kind() != b.kind()
        || a.height() != b.height()
        || a.node_count() != b.node_count()
        || a.sp_gap() != b.sp_gap()
    {
        return false;
    }
    for l in 0..=a.height() {
        if a.level_members(l) != b.level_members(l) {
            return false;
        }
    }
    for u in 0..a.node_count() {
        let u = mot_net::NodeId::from_index(u);
        for l in 0..=a.height() {
            if a.station(u, l) != b.station(u, l) {
                return false;
            }
        }
    }
    true
}

/// Runs every phase of the baseline for every size in the profile.
///
/// Fails if any phase fails or if the optimized and reference overlays
/// ever disagree — the speedup column is only meaningful while both
/// builders produce the same structure.
pub fn run_baseline(p: &BaselineProfile) -> Result<BaselineReport, BenchError> {
    let cfg = OverlayConfig::practical();
    let mut sizes = Vec::with_capacity(p.sizes.len());
    for &(rows, cols) in &p.sizes {
        let t = Instant::now();
        let g = generators::grid(rows, cols)?;
        let graph_build_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let oracle = p.oracle.build(&g)?;
        let oracle_warmup_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let fast = build_doubling(&g, &*oracle, &cfg, p.seed);
        let hierarchy_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let reference = reference_build_doubling(&g, &*oracle, &cfg, p.seed);
        let hierarchy_seq_secs = t.elapsed().as_secs_f64();

        if !overlays_identical(&fast, &reference) {
            return Err(format!(
                "optimized and reference overlays differ on {rows}x{cols} \
                 (seed {}) — speedup numbers would be meaningless",
                p.seed
            )
            .into());
        }

        let bed = TestBed::grid_with_oracle(rows, cols, p.seed, p.oracle)?;
        let w =
            WorkloadSpec::new(p.objects, p.moves_per_object, p.seed * 7 + 1).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut tracker = bed.make_tracker(Algo::Mot, &rates)?;
        let t = Instant::now();
        run_publish(tracker.as_mut(), &w)?;
        let stats = replay_moves(tracker.as_mut(), &w, &bed.oracle)?;
        let fig4_replay_secs = t.elapsed().as_secs_f64();

        sizes.push(SizeTiming {
            rows,
            cols,
            nodes: rows * cols,
            graph_build_secs,
            oracle_warmup_secs,
            hierarchy_secs,
            hierarchy_seq_secs,
            hierarchy_speedup: hierarchy_seq_secs / hierarchy_secs.max(1e-12),
            fig4_replay_secs,
            fig4_mot_ratio: stats.ratio(),
        });
    }
    Ok(BaselineReport {
        schema: BENCH_SCHEMA,
        profile: p.name.clone(),
        oracle: p.oracle.label().to_string(),
        jobs: p.jobs,
        hardware_threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BaselineProfile {
        BaselineProfile {
            name: "tiny".into(),
            sizes: vec![(4, 4), (5, 5)],
            objects: 3,
            moves_per_object: 10,
            oracle: OracleKind::Auto,
            jobs: 1,
            seed: 1,
        }
    }

    #[test]
    fn baseline_runs_and_serializes() {
        let report = run_baseline(&tiny()).unwrap();
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert_eq!(report.sizes.len(), 2);
        for s in &report.sizes {
            assert!(s.hierarchy_secs > 0.0);
            assert!(s.hierarchy_seq_secs > 0.0);
            assert!(s.hierarchy_speedup > 0.0);
            assert!(s.fig4_mot_ratio >= 1.0 - 1e-9, "ratio {}", s.fig4_mot_ratio);
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mot-bench-baseline/1\""));
        assert!(json.contains("\"nodes\": 25"));
        assert!(json.contains("\"hierarchy_speedup\""));
        // No trailing commas before closers (the usual hand-rolled bug).
        assert!(!json.contains(",\n    }"), "{json}");
        assert!(!json.contains(",\n  ]"), "{json}");
    }

    #[test]
    fn named_profiles_resolve() {
        assert_eq!(BaselineProfile::for_name("smoke").unwrap().name, "smoke");
        assert_eq!(BaselineProfile::for_name("full").unwrap().name, "full");
        assert!(BaselineProfile::for_name("nope").is_none());
    }
}
