//! Phase-timed benchmark baseline behind `experiments bench-baseline`.
//!
//! Everything else in `mot-bench` measures *cost ratios* — numbers the
//! determinism contract (DESIGN.md §12) pins bit-exactly. This module
//! measures *wall-clock*, phase by phase, and serializes the result as
//! the schema'd JSON committed at the repo root (`BENCH_pr8.json`).
//!
//! Per size the harness times, strictly in order and sequentially (so
//! phases never contend with each other):
//!
//! 1. `graph_build_secs` — CSR construction via [`generators`];
//! 2. `oracle_warmup_secs` — distance-backend build
//!    ([`OracleKind::build`] after `resolve`). Since the cached backend
//!    became the default past [`OracleKind::DENSE_NODE_LIMIT`] this is
//!    validation + bookkeeping, not an n² warm-up, and the column
//!    records exactly that collapse;
//! 3. `hierarchy_secs` — the optimized [`build_doubling_balls`] (the
//!    ball builder is timed directly so the column measures the same
//!    code path at every size, not the adaptive dispatch);
//! 4. `hierarchy_seq_secs` — the frozen pre-optimization builder on the
//!    same inputs, whose overlay is then asserted **identical** to the
//!    optimized one (a mismatch fails the run, not just a test). The
//!    reference scans full oracle rows, so this phase and the derived
//!    `hierarchy_speedup` only run up to
//!    [`REFERENCE_PHASE_NODE_LIMIT`] nodes and serialize as `null`
//!    beyond it;
//! 5. `hierarchy_dispatch_secs` — the adaptive [`build_doubling`] entry
//!    point on the same inputs, gated within [`DISPATCH_TOLERANCE`] of
//!    the better specialized builder (same size limit as phase 4);
//! 6. `fig4_replay_secs` — publish + one-by-one move replay of a Fig. 4
//!    MOT arm, plus its cost ratio as a cross-check value. The bed
//!    reuses the already-built oracle and overlay (this skips the
//!    hybrid backend's hot-row pinning — a perf-only concern that
//!    would double-build the hierarchy here).
//!
//! After the sizes, the profile's service soaks run (the `service`
//! section of the report): end-to-end wall-clock and throughput of the
//! chaos-hardened event loop plus its deterministic move/query cost
//! quantiles, turning PERFORMANCE.md's service numbers into a delta-
//! gated contract rather than a snapshot.
//!
//! After the replay the report captures the backend's
//! [`CacheLedger`](mot_net::CacheLedger) counters (zero on ledger-free
//! backends) and its `memory_bytes`, making the "no n² footprint" claim
//! auditable from the committed artifact.
//!
//! `jobs` is recorded for provenance only: timed phases are sequential
//! by design so numbers stay comparable across runs and machines.

use crate::figures::BenchError;
use crate::service::{service_run, ServiceSpec};
use mot_baselines::DetectionRates;
use mot_core::fmt_f64;
use mot_hierarchy::{
    build_doubling, build_doubling_balls, reference_build_doubling, Overlay, OverlayConfig,
};
use mot_net::{generators, Graph, OracleKind};
use mot_sim::{replay_moves, run_publish, Algo, TestBed, WorkloadSpec};
use std::time::Instant;

/// Schema identifier stamped into every report this module writes.
///
/// `/2` added `topology`, the cache hit/miss/memory counters, and made
/// `hierarchy_seq_secs` / `hierarchy_speedup` nullable past
/// [`REFERENCE_PHASE_NODE_LIMIT`]. `/3` added `hierarchy_dispatch_secs`
/// (the adaptive [`build_doubling`] entry point, timed on the same
/// sizes as the reference phase and asserted competitive — see
/// [`DISPATCH_TOLERANCE`]) and the `service` phase family: wall-clock
/// throughput plus deterministic cost quantiles from the chaos-soak
/// specs of [`crate::service`].
pub const BENCH_SCHEMA: &str = "mot-bench-baseline/3";

/// The adaptive dispatcher may cost at most this factor over the better
/// of the two specialized builders on any timed size (enforced by
/// [`run_baseline`], not just reported). Guards the
/// [`ADAPTIVE_CROSSOVER_NODES`](mot_hierarchy::ADAPTIVE_CROSSOVER_NODES)
/// threshold against rotting as the builders evolve. The headroom is
/// deliberately wide: when the dispatch picks correctly, this compares
/// two timings of the *same* code, which on a busy single-core box can
/// differ by tens of percent from jitter alone — while a genuine
/// mis-dispatch costs a multiple (3×–16× measured across backends), so
/// 1.5× still catches every real mis-tuning without flapping.
pub const DISPATCH_TOLERANCE: f64 = 1.5;

/// Dispatch timings below this are considered noise and never fail the
/// run (tiny sizes finish in microseconds, where jitter swamps any
/// real regression).
const DISPATCH_FLOOR_SECS: f64 = 0.010;

/// Largest size on which the frozen reference builder (full oracle-row
/// scans) is timed and identity-checked. Matches
/// [`OracleKind::DENSE_NODE_LIMIT`]: up to here a dense matrix is cheap
/// enough that the O(k²) reference finishes in seconds; beyond it the
/// reference would itself re-introduce the n² cost this harness exists
/// to show is gone.
pub const REFERENCE_PHASE_NODE_LIMIT: usize = 4096;

/// One benchmark topology, sized and seeded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeSpec {
    /// `rows × cols` unit grid — the paper's topology.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Random geometric graph (uniform points in a `side × side` square,
    /// edges under `radius`, bridged to connectivity).
    Geometric {
        /// Node count.
        nodes: usize,
        /// Square side length.
        side: f64,
        /// Connection radius.
        radius: f64,
        /// Placement seed.
        seed: u64,
    },
}

impl SizeSpec {
    /// Node count of the topology this spec describes.
    pub fn nodes(&self) -> usize {
        match *self {
            SizeSpec::Grid { rows, cols } => rows * cols,
            SizeSpec::Geometric { nodes, .. } => nodes,
        }
    }

    /// Topology label recorded in the report (`grid` / `geometric`).
    pub fn topology(&self) -> &'static str {
        match self {
            SizeSpec::Grid { .. } => "grid",
            SizeSpec::Geometric { .. } => "geometric",
        }
    }

    /// `(rows, cols)` for grids, `(0, 0)` for non-grid topologies.
    pub fn rows_cols(&self) -> (usize, usize) {
        match *self {
            SizeSpec::Grid { rows, cols } => (rows, cols),
            SizeSpec::Geometric { .. } => (0, 0),
        }
    }

    fn build(&self) -> Result<Graph, mot_net::NetError> {
        match *self {
            SizeSpec::Grid { rows, cols } => generators::grid(rows, cols),
            SizeSpec::Geometric {
                nodes,
                side,
                radius,
                seed,
            } => generators::random_geometric(nodes, side, radius, seed),
        }
    }
}

/// Scale knobs for one `bench-baseline` run.
#[derive(Clone, Debug)]
pub struct BaselineProfile {
    /// Profile name recorded in the report (`smoke` / `full`).
    pub name: String,
    /// Topologies timed, in order.
    pub sizes: Vec<SizeSpec>,
    /// Objects in the fig4-replay phase.
    pub objects: usize,
    /// Moves per object in the fig4-replay phase.
    pub moves_per_object: usize,
    /// Distance backend for the oracle-warmup and replay phases.
    pub oracle: OracleKind,
    /// Recorded for provenance; phases are timed sequentially.
    pub jobs: usize,
    /// Seed for overlay construction and the replay workload.
    pub seed: u64,
    /// Service-mode soaks timed after the per-size phases, as
    /// `(name, spec)` pairs; the name keys the delta gate in CI.
    pub service: Vec<(String, ServiceSpec)>,
}

impl BaselineProfile {
    /// CI-scale run: three small grids, seconds of wall-clock.
    pub fn smoke() -> Self {
        BaselineProfile {
            name: "smoke".into(),
            sizes: vec![
                SizeSpec::Grid { rows: 8, cols: 8 },
                SizeSpec::Grid { rows: 12, cols: 12 },
                SizeSpec::Grid { rows: 16, cols: 16 },
            ],
            objects: 10,
            moves_per_object: 30,
            oracle: OracleKind::Auto,
            jobs: 1,
            seed: 1,
            service: vec![("smoke".into(), ServiceSpec::smoke())],
        }
    }

    /// The committed-artifact run: from the paper's grids up to a
    /// 1024×1024 grid (2^20 nodes) and a 131072-node random-geometric
    /// network — sizes only reachable because no phase performs an n²
    /// warm-up. Runs on the cached backend at *every* size (not `Auto`,
    /// which would still pick the dense matrix at ≤4096 nodes and spend
    /// over a second of n² warm-up there): the artifact documents the
    /// on-demand cost profile, and cached-vs-dense bit-parity is pinned
    /// separately by the differential suites.
    pub fn full() -> Self {
        BaselineProfile {
            name: "full".into(),
            sizes: vec![
                SizeSpec::Grid { rows: 16, cols: 16 },
                SizeSpec::Grid { rows: 32, cols: 32 },
                SizeSpec::Grid { rows: 64, cols: 64 },
                SizeSpec::Grid {
                    rows: 256,
                    cols: 256,
                },
                SizeSpec::Grid {
                    rows: 512,
                    cols: 512,
                },
                SizeSpec::Grid {
                    rows: 1024,
                    cols: 1024,
                },
                SizeSpec::Geometric {
                    nodes: 131072,
                    side: 362.0,
                    radius: 2.0,
                    seed: 1,
                },
            ],
            objects: 100,
            moves_per_object: 100,
            oracle: OracleKind::Cached,
            jobs: 1,
            seed: 1,
            // The smoke spec rides along so CI's smoke run and the
            // committed full artifact share a delta-gate key; quick and
            // standard document the scales PERFORMANCE.md tabulates.
            service: vec![
                ("smoke".into(), ServiceSpec::smoke()),
                ("quick".into(), ServiceSpec::quick()),
                ("standard".into(), ServiceSpec::standard()),
            ],
        }
    }

    /// Profile by CLI name.
    pub fn for_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Same profile on an explicit distance backend.
    pub fn with_oracle(mut self, kind: OracleKind) -> Self {
        self.oracle = kind;
        self
    }

    /// Same profile with an explicit recorded jobs value.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// Phase timings for one size.
#[derive(Clone, Debug)]
pub struct SizeTiming {
    /// Topology label (`grid` / `geometric`).
    pub topology: &'static str,
    /// Grid rows (0 for non-grid topologies).
    pub rows: usize,
    /// Grid columns (0 for non-grid topologies).
    pub cols: usize,
    /// Node count.
    pub nodes: usize,
    /// CSR graph construction.
    pub graph_build_secs: f64,
    /// Distance-backend build.
    pub oracle_warmup_secs: f64,
    /// Optimized doubling-overlay construction (ball builder).
    pub hierarchy_secs: f64,
    /// Frozen reference doubling-overlay construction (same inputs);
    /// `None` past [`REFERENCE_PHASE_NODE_LIMIT`].
    pub hierarchy_seq_secs: Option<f64>,
    /// `hierarchy_seq_secs / hierarchy_secs`; `None` when the reference
    /// phase was skipped.
    pub hierarchy_speedup: Option<f64>,
    /// The adaptive [`build_doubling`] entry point on the same inputs —
    /// what production callers actually pay. Timed on the same sizes as
    /// the reference phase (`None` beyond them) and asserted within
    /// [`DISPATCH_TOLERANCE`] of the better specialized builder.
    pub hierarchy_dispatch_secs: Option<f64>,
    /// Publish + one-by-one replay of the fig4 MOT arm.
    pub fig4_replay_secs: f64,
    /// Maintenance cost ratio of that arm (cross-check value).
    pub fig4_mot_ratio: f64,
    /// Distance-row cache hits after the replay (0 without a ledger).
    pub oracle_cache_hits: u64,
    /// Distance-row cache misses after the replay (0 without a ledger).
    pub oracle_cache_misses: u64,
    /// Backend-reported resident bytes after the replay.
    pub oracle_memory_bytes: usize,
}

/// Wall-clock and deterministic cost numbers for one service soak.
///
/// `wall_secs` / `ops_per_sec` drift with the machine and are
/// delta-gated with a tolerance in CI; the cost quantiles come from the
/// deterministic per-op ledgers (bit-identical across `--jobs` and
/// machines) and are gated *exactly*.
#[derive(Clone, Debug)]
pub struct ServiceTiming {
    /// Spec name (`smoke` / `quick` / `standard` / `paper`).
    pub name: String,
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Node count.
    pub nodes: usize,
    /// Tracked objects.
    pub objects: usize,
    /// Ops in the stream.
    pub ops: u64,
    /// Shard count.
    pub shards: usize,
    /// Worker threads the soak ran with (`0` = auto).
    pub jobs: usize,
    /// End-to-end soak wall-clock.
    pub wall_secs: f64,
    /// `ops / wall_secs`.
    pub ops_per_sec: f64,
    /// Median move cost (deterministic).
    pub move_p50_cost: f64,
    /// 99th-percentile move cost (deterministic).
    pub move_p99_cost: f64,
    /// Median query cost (deterministic).
    pub query_p50_cost: f64,
    /// 99th-percentile query cost (deterministic).
    pub query_p99_cost: f64,
}

/// A full `bench-baseline` report, serializable as schema'd JSON.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// Always [`BENCH_SCHEMA`].
    pub schema: &'static str,
    /// Profile name the run used.
    pub profile: String,
    /// Distance-backend label.
    pub oracle: String,
    /// Recorded `--jobs` value (provenance only).
    pub jobs: usize,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub hardware_threads: usize,
    /// One entry per size, in run order.
    pub sizes: Vec<SizeTiming>,
    /// One entry per service soak, in run order.
    pub service: Vec<ServiceTiming>,
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt_f64).unwrap_or_else(|| "null".into())
}

impl BaselineReport {
    /// Pretty-printed JSON matching the schema documented in
    /// PERFORMANCE.md. Skipped phases serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"oracle\": \"{}\",\n", self.oracle));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str("  \"sizes\": [\n");
        for (i, s) in self.sizes.iter().enumerate() {
            out.push_str("    {\n");
            let fields = [
                ("topology", format!("\"{}\"", s.topology)),
                ("rows", s.rows.to_string()),
                ("cols", s.cols.to_string()),
                ("nodes", s.nodes.to_string()),
                ("graph_build_secs", fmt_f64(s.graph_build_secs)),
                ("oracle_warmup_secs", fmt_f64(s.oracle_warmup_secs)),
                ("hierarchy_secs", fmt_f64(s.hierarchy_secs)),
                ("hierarchy_seq_secs", fmt_opt(s.hierarchy_seq_secs)),
                ("hierarchy_speedup", fmt_opt(s.hierarchy_speedup)),
                (
                    "hierarchy_dispatch_secs",
                    fmt_opt(s.hierarchy_dispatch_secs),
                ),
                ("fig4_replay_secs", fmt_f64(s.fig4_replay_secs)),
                ("fig4_mot_ratio", fmt_f64(s.fig4_mot_ratio)),
                ("oracle_cache_hits", s.oracle_cache_hits.to_string()),
                ("oracle_cache_misses", s.oracle_cache_misses.to_string()),
                ("oracle_memory_bytes", s.oracle_memory_bytes.to_string()),
            ];
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("      \"{k}\": {v}"))
                .collect();
            out.push_str(&body.join(",\n"));
            out.push('\n');
            out.push_str(if i + 1 == self.sizes.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"service\": [\n");
        for (i, s) in self.service.iter().enumerate() {
            out.push_str("    {\n");
            let fields = [
                ("name", format!("\"{}\"", s.name)),
                ("rows", s.rows.to_string()),
                ("cols", s.cols.to_string()),
                ("nodes", s.nodes.to_string()),
                ("objects", s.objects.to_string()),
                ("ops", s.ops.to_string()),
                ("shards", s.shards.to_string()),
                ("jobs", s.jobs.to_string()),
                ("wall_secs", fmt_f64(s.wall_secs)),
                ("ops_per_sec", fmt_f64(s.ops_per_sec)),
                ("move_p50_cost", fmt_f64(s.move_p50_cost)),
                ("move_p99_cost", fmt_f64(s.move_p99_cost)),
                ("query_p50_cost", fmt_f64(s.query_p50_cost)),
                ("query_p99_cost", fmt_f64(s.query_p99_cost)),
            ];
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("      \"{k}\": {v}"))
                .collect();
            out.push_str(&body.join(",\n"));
            out.push('\n');
            out.push_str(if i + 1 == self.service.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl BaselineReport {
    /// Human-readable summary table (same rendering pipeline as the
    /// figure experiments; seconds, plus the speedup column). Skipped
    /// reference phases render as `NaN`.
    pub fn to_table(&self) -> crate::report::FigureTable {
        crate::report::FigureTable {
            title: format!(
                "bench-baseline phase timings, profile {}, oracle {}",
                self.profile, self.oracle
            ),
            x_label: "nodes".into(),
            columns: vec![
                "graph_s".into(),
                "oracle_s".into(),
                "hier_s".into(),
                "hier_seq_s".into(),
                "speedup".into(),
                "disp_s".into(),
                "fig4_s".into(),
                "fig4_ratio".into(),
            ],
            rows: self
                .sizes
                .iter()
                .map(|s| {
                    let x = if s.topology == "grid" {
                        s.nodes.to_string()
                    } else {
                        format!("{} ({})", s.nodes, s.topology)
                    };
                    (
                        x,
                        vec![
                            s.graph_build_secs,
                            s.oracle_warmup_secs,
                            s.hierarchy_secs,
                            s.hierarchy_seq_secs.unwrap_or(f64::NAN),
                            s.hierarchy_speedup.unwrap_or(f64::NAN),
                            s.hierarchy_dispatch_secs.unwrap_or(f64::NAN),
                            s.fig4_replay_secs,
                            s.fig4_mot_ratio,
                        ],
                    )
                })
                .collect(),
        }
    }

    /// Summary table of the service soaks; `None` when the profile ran
    /// none. Wall-clock columns are machine-dependent by nature — this
    /// table is a human summary, not a determinism surface.
    pub fn service_to_table(&self) -> Option<crate::report::FigureTable> {
        if self.service.is_empty() {
            return None;
        }
        Some(crate::report::FigureTable {
            title: format!("bench-baseline service soaks, profile {}", self.profile),
            x_label: "spec".into(),
            columns: vec![
                "wall_s".into(),
                "ops_per_s".into(),
                "move_p50".into(),
                "move_p99".into(),
                "query_p50".into(),
                "query_p99".into(),
            ],
            rows: self
                .service
                .iter()
                .map(|s| {
                    (
                        format!("{} ({}x{}, {} ops)", s.name, s.rows, s.cols, s.ops),
                        vec![
                            s.wall_secs,
                            s.ops_per_sec,
                            s.move_p50_cost,
                            s.move_p99_cost,
                            s.query_p50_cost,
                            s.query_p99_cost,
                        ],
                    )
                })
                .collect(),
        })
    }
}

/// Structural equality through the public overlay accessors: kinds,
/// levels, and every per-node station must agree.
fn overlays_identical(a: &Overlay, b: &Overlay) -> bool {
    if a.kind() != b.kind()
        || a.height() != b.height()
        || a.node_count() != b.node_count()
        || a.sp_gap() != b.sp_gap()
    {
        return false;
    }
    for l in 0..=a.height() {
        if a.level_members(l) != b.level_members(l) {
            return false;
        }
    }
    for u in 0..a.node_count() {
        let u = mot_net::NodeId::from_index(u);
        for l in 0..=a.height() {
            if a.station(u, l) != b.station(u, l) {
                return false;
            }
        }
    }
    true
}

/// Runs every phase of the baseline for every size in the profile.
///
/// Fails if any phase fails or if (on sizes where the reference phase
/// runs) the optimized and reference overlays ever disagree — the
/// speedup column is only meaningful while both builders produce the
/// same structure.
pub fn run_baseline(p: &BaselineProfile) -> Result<BaselineReport, BenchError> {
    let cfg = OverlayConfig::practical();
    let mut sizes = Vec::with_capacity(p.sizes.len());
    for &spec in &p.sizes {
        let t = Instant::now();
        let g = spec.build()?;
        let graph_build_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let oracle = p.oracle.build(&g)?;
        let oracle_warmup_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let fast = build_doubling_balls(&g, &*oracle, &cfg, p.seed);
        let hierarchy_secs = t.elapsed().as_secs_f64();

        let nodes = g.node_count();
        let (hierarchy_seq_secs, hierarchy_speedup, hierarchy_dispatch_secs) =
            if nodes <= REFERENCE_PHASE_NODE_LIMIT {
                let t = Instant::now();
                let reference = reference_build_doubling(&g, &*oracle, &cfg, p.seed);
                let seq = t.elapsed().as_secs_f64();
                if !overlays_identical(&fast, &reference) {
                    let (rows, cols) = spec.rows_cols();
                    return Err(format!(
                        "optimized and reference overlays differ on {} {rows}x{cols} \
                         ({nodes} nodes, seed {}) — speedup numbers would be meaningless",
                        spec.topology(),
                        p.seed
                    )
                    .into());
                }
                // What production callers pay: the adaptive entry point.
                // Below the crossover the reference builder legitimately
                // wins the direct comparison above, and the dispatcher's
                // job is to always take the winner — so it is gated
                // against the better of the two, not against either one.
                let t = Instant::now();
                let dispatched = build_doubling(&g, &*oracle, &cfg, p.seed);
                let disp = t.elapsed().as_secs_f64();
                debug_assert!(overlays_identical(&fast, &dispatched));
                drop(dispatched);
                let best = hierarchy_secs.min(seq);
                if disp > DISPATCH_FLOOR_SECS && disp > best * DISPATCH_TOLERANCE {
                    return Err(format!(
                        "adaptive build_doubling took {disp:.3}s on {nodes} nodes where the \
                         better specialized builder takes {best:.3}s — the \
                         ADAPTIVE_CROSSOVER_NODES threshold is mis-tuned",
                    )
                    .into());
                }
                (Some(seq), Some(seq / hierarchy_secs.max(1e-12)), Some(disp))
            } else {
                (None, None, None)
            };

        // Reuse the timed oracle and overlay instead of rebuilding a
        // bed from scratch: at these sizes a second hierarchy build
        // would dominate the phase, and the replay must bill against
        // the same backend whose warm-up was measured.
        let bed = TestBed {
            graph: g,
            oracle,
            overlay: fast,
            faults: None,
        };
        let w =
            WorkloadSpec::new(p.objects, p.moves_per_object, p.seed * 7 + 1).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut tracker = bed.make_tracker(Algo::Mot, &rates)?;
        let t = Instant::now();
        run_publish(tracker.as_mut(), &w)?;
        let stats = replay_moves(tracker.as_mut(), &w, &bed.oracle)?;
        let fig4_replay_secs = t.elapsed().as_secs_f64();
        drop(tracker);

        let ledger = bed.oracle.cache_stats().unwrap_or_default();
        let (rows, cols) = spec.rows_cols();
        sizes.push(SizeTiming {
            topology: spec.topology(),
            rows,
            cols,
            nodes,
            graph_build_secs,
            oracle_warmup_secs,
            hierarchy_secs,
            hierarchy_seq_secs,
            hierarchy_speedup,
            hierarchy_dispatch_secs,
            fig4_replay_secs,
            fig4_mot_ratio: stats.ratio(),
            oracle_cache_hits: ledger.hits,
            oracle_cache_misses: ledger.misses,
            oracle_memory_bytes: bed.oracle.memory_bytes(),
        });
    }
    let mut service = Vec::with_capacity(p.service.len());
    for (name, spec) in &p.service {
        let (_, rep) = service_run(spec)?;
        // The report's own wall clock wraps just the soak loop; bed
        // construction cost is the sizes section's concern.
        let wall_secs = rep.wall_secs;
        let (rows, cols) = spec.grid;
        let ops = spec.cfg.stream.ops;
        service.push(ServiceTiming {
            name: name.clone(),
            rows,
            cols,
            nodes: rows * cols,
            objects: spec.cfg.stream.objects,
            ops,
            shards: spec.cfg.shards,
            jobs: spec.cfg.jobs,
            wall_secs,
            ops_per_sec: ops as f64 / wall_secs.max(1e-12),
            move_p50_cost: rep.move_cost.quantile(0.5),
            move_p99_cost: rep.move_cost.quantile(0.99),
            query_p50_cost: rep.query_cost.quantile(0.5),
            query_p99_cost: rep.query_cost.quantile(0.99),
        });
    }
    Ok(BaselineReport {
        schema: BENCH_SCHEMA,
        profile: p.name.clone(),
        oracle: p.oracle.label().to_string(),
        jobs: p.jobs,
        hardware_threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        sizes,
        service,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BaselineProfile {
        BaselineProfile {
            name: "tiny".into(),
            sizes: vec![
                SizeSpec::Grid { rows: 4, cols: 4 },
                SizeSpec::Grid { rows: 5, cols: 5 },
            ],
            objects: 3,
            moves_per_object: 10,
            oracle: OracleKind::Auto,
            jobs: 1,
            seed: 1,
            service: vec![],
        }
    }

    /// A seconds-scale service spec for serialization coverage.
    fn micro_service() -> (String, ServiceSpec) {
        let mut s = ServiceSpec::smoke();
        s.cfg.stream.ops = 1_000;
        s.cfg.stream.objects = 30;
        ("micro".into(), s)
    }

    #[test]
    fn baseline_runs_and_serializes() {
        let mut p = tiny();
        p.service = vec![micro_service()];
        let report = run_baseline(&p).unwrap();
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert_eq!(report.sizes.len(), 2);
        for s in &report.sizes {
            assert_eq!(s.topology, "grid");
            assert!(s.hierarchy_secs > 0.0);
            assert!(s.hierarchy_seq_secs.unwrap() > 0.0);
            assert!(s.hierarchy_speedup.unwrap() > 0.0);
            assert!(s.hierarchy_dispatch_secs.unwrap() > 0.0);
            assert!(s.fig4_mot_ratio >= 1.0 - 1e-9, "ratio {}", s.fig4_mot_ratio);
        }
        assert_eq!(report.service.len(), 1);
        let sv = &report.service[0];
        assert_eq!((sv.name.as_str(), sv.nodes, sv.ops), ("micro", 144, 1_000));
        assert!(sv.wall_secs > 0.0 && sv.ops_per_sec > 0.0);
        assert!(sv.move_p99_cost >= sv.move_p50_cost);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mot-bench-baseline/3\""));
        assert!(json.contains("\"topology\": \"grid\""));
        assert!(json.contains("\"nodes\": 25"));
        assert!(json.contains("\"hierarchy_speedup\""));
        assert!(json.contains("\"hierarchy_dispatch_secs\""));
        assert!(json.contains("\"oracle_cache_hits\""));
        assert!(json.contains("\"name\": \"micro\""));
        assert!(json.contains("\"ops_per_sec\""));
        // No trailing commas before closers (the usual hand-rolled bug).
        assert!(!json.contains(",\n    }"), "{json}");
        assert!(!json.contains(",\n  ]"), "{json}");
        let service_table = report.service_to_table().unwrap();
        assert_eq!(service_table.rows.len(), 1);
    }

    #[test]
    fn geometric_sizes_run_and_are_labelled() {
        let mut p = tiny();
        p.sizes = vec![SizeSpec::Geometric {
            nodes: 60,
            side: 8.0,
            radius: 2.0,
            seed: 2,
        }];
        let report = run_baseline(&p).unwrap();
        let s = &report.sizes[0];
        assert_eq!(
            (s.topology, s.rows, s.cols, s.nodes),
            ("geometric", 0, 0, 60)
        );
        let json = report.to_json();
        assert!(json.contains("\"topology\": \"geometric\""));
        let table = report.to_table();
        assert_eq!(table.rows[0].0, "60 (geometric)");
    }

    #[test]
    fn cached_backend_reports_ledger_counters() {
        let mut p = tiny();
        p.sizes = vec![SizeSpec::Grid { rows: 5, cols: 5 }];
        p.oracle = OracleKind::Cached;
        let report = run_baseline(&p).unwrap();
        let s = &report.sizes[0];
        assert!(s.oracle_cache_misses > 0, "no misses recorded");
        assert!(s.oracle_memory_bytes > 0, "no resident bytes recorded");
        // Dense has no ledger: counters stay zero.
        let dense = run_baseline(&tiny()).unwrap();
        assert_eq!(dense.sizes[0].oracle_cache_hits, 0);
        assert_eq!(dense.sizes[0].oracle_cache_misses, 0);
    }

    #[test]
    fn skipped_reference_phase_serializes_as_null() {
        // Past REFERENCE_PHASE_NODE_LIMIT the seq phase is skipped;
        // exercise the serialization without running a 4096+-node bench.
        let report = BaselineReport {
            schema: BENCH_SCHEMA,
            profile: "test".into(),
            oracle: "cached".into(),
            jobs: 1,
            hardware_threads: 1,
            sizes: vec![SizeTiming {
                topology: "grid",
                rows: 256,
                cols: 256,
                nodes: 65536,
                graph_build_secs: 0.1,
                oracle_warmup_secs: 0.1,
                hierarchy_secs: 0.1,
                hierarchy_seq_secs: None,
                hierarchy_speedup: None,
                hierarchy_dispatch_secs: None,
                fig4_replay_secs: 0.1,
                fig4_mot_ratio: 1.5,
                oracle_cache_hits: 10,
                oracle_cache_misses: 5,
                oracle_memory_bytes: 1024,
            }],
            service: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"hierarchy_seq_secs\": null"), "{json}");
        assert!(json.contains("\"hierarchy_speedup\": null"), "{json}");
        assert!(json.contains("\"hierarchy_dispatch_secs\": null"), "{json}");
        assert!(!json.contains(",\n    }"), "{json}");
        let table = report.to_table();
        assert!(table.rows[0].1[3].is_nan());
        assert!(report.service_to_table().is_none());
    }

    #[test]
    fn named_profiles_resolve() {
        let smoke = BaselineProfile::for_name("smoke").unwrap();
        assert_eq!(smoke.name, "smoke");
        assert_eq!(smoke.service[0].0, "smoke");
        let full = BaselineProfile::for_name("full").unwrap();
        assert_eq!(full.name, "full");
        assert!(full.sizes.iter().any(|s| s.nodes() >= 100_000));
        // CI delta-gates service phases by name against the committed
        // full artifact, so the smoke spec must appear in both.
        assert!(full.service.iter().any(|(n, _)| n == "smoke"));
        // The committed artifact documents the on-demand cost profile,
        // so the full run must not fall back to a dense warm-up at any
        // size.
        assert_eq!(full.oracle, OracleKind::Cached);
        assert!(BaselineProfile::for_name("nope").is_none());
    }
}
