//! `--profile-phases`: self-timing breakdowns of the two hot
//! experiments, printed to stderr so the deterministic stdout tables
//! stay byte-identical with and without the flag.
//!
//! Where `bench-baseline` commits coarse per-phase numbers as the CI
//! contract, this module answers the *why is it slow* question during
//! optimization work: a fig4 replay split into graph/oracle/hierarchy/
//! publish/replay/queries, and a service soak split into bed build vs
//! the soak loop, each phase with its share of the total. For
//! instruction-level attribution below this granularity, PERFORMANCE.md
//! documents the flamegraph recipe (`perf record` against the
//! `experiments` binary — no extra tooling baked into the crate).

use crate::figures::BenchError;
use crate::service::{service_run, ServiceSpec};
use crate::SizeSpec;
use mot_baselines::DetectionRates;
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::OracleKind;
use mot_sim::{replay_moves, run_publish, run_queries, Algo, TestBed, WorkloadSpec};
use std::time::Instant;

/// A labelled sequence of phase durations with a one-line context
/// header. Rendering is fixed-width and stderr-friendly.
#[derive(Clone, Debug)]
pub struct PhaseTimings {
    /// What was profiled (topology, scale, backend).
    pub title: String,
    /// `(phase name, seconds)`, in execution order.
    pub phases: Vec<(String, f64)>,
}

impl PhaseTimings {
    /// Sum over all phases.
    pub fn total(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Aligned text table: one row per phase with seconds and share of
    /// the total, then a total row.
    pub fn render(&self) -> String {
        let width = self
            .phases
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let total = self.total();
        let mut out = format!("profile-phases: {}\n", self.title);
        for (name, secs) in &self.phases {
            let share = if total > 0.0 {
                secs / total * 100.0
            } else {
                0.0
            };
            out.push_str(&format!("  {name:width$}  {secs:>10.4}s  {share:>5.1}%\n"));
        }
        out.push_str(&format!("  {:width$}  {total:>10.4}s\n", "total"));
        out
    }
}

/// Times every phase of one fig4-style replay: graph build, oracle
/// build, hierarchy build (the adaptive dispatch production callers
/// use), publish, the one-by-one move replay, and a query batch.
pub fn profile_fig4_phases(
    spec: SizeSpec,
    objects: usize,
    moves_per_object: usize,
    oracle: OracleKind,
    seed: u64,
) -> Result<PhaseTimings, BenchError> {
    let mut phases = Vec::new();
    let mut timed = |name: &str, secs: f64| phases.push((name.to_string(), secs));

    let t = Instant::now();
    let g = match spec {
        SizeSpec::Grid { rows, cols } => mot_net::generators::grid(rows, cols)?,
        SizeSpec::Geometric {
            nodes,
            side,
            radius,
            seed,
        } => mot_net::generators::random_geometric(nodes, side, radius, seed)?,
    };
    timed("graph", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let m = oracle.build(&g)?;
    timed("oracle", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let overlay = build_doubling(&g, &*m, &OverlayConfig::practical(), seed);
    timed("hierarchy", t.elapsed().as_secs_f64());

    let bed = TestBed {
        graph: g,
        oracle: m,
        overlay,
        faults: None,
    };
    let w = WorkloadSpec::new(objects, moves_per_object, seed * 7 + 1).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let mut tracker = bed.make_tracker(Algo::Mot, &rates)?;

    let t = Instant::now();
    run_publish(tracker.as_mut(), &w)?;
    timed("publish", t.elapsed().as_secs_f64());

    let t = Instant::now();
    replay_moves(tracker.as_mut(), &w, &bed.oracle)?;
    timed("replay", t.elapsed().as_secs_f64());

    let queries = (objects * 10).max(100);
    let t = Instant::now();
    run_queries(tracker.as_ref(), &bed.oracle, objects, queries, seed + 2)?;
    timed("queries", t.elapsed().as_secs_f64());

    let (rows, cols) = spec.rows_cols();
    Ok(PhaseTimings {
        title: format!(
            "fig4 replay, {} {rows}x{cols} ({} nodes), {objects} objects x \
             {moves_per_object} moves, oracle {}",
            spec.topology(),
            spec.nodes(),
            oracle.label(),
        ),
        phases,
    })
}

/// Times a service soak split into bed construction and the soak loop
/// itself, with throughput in the title. The soak number is the
/// report's own wall clock (the same value `bench-baseline` gates).
pub fn profile_service_phases(spec: &ServiceSpec) -> Result<PhaseTimings, BenchError> {
    let t = Instant::now();
    let (_, rep) = service_run(spec)?;
    Ok(service_phase_timings(spec, &rep, t.elapsed().as_secs_f64()))
}

/// The breakdown behind [`profile_service_phases`], for callers that
/// already ran the soak (the `experiments` binary times its normal
/// `service` run and feeds it here, avoiding a second soak).
pub fn service_phase_timings(
    spec: &ServiceSpec,
    rep: &mot_sim::ServiceReport,
    end_to_end_secs: f64,
) -> PhaseTimings {
    let setup = (end_to_end_secs - rep.wall_secs).max(0.0);
    let (rows, cols) = spec.grid;
    PhaseTimings {
        title: format!(
            "service soak, {rows}x{cols} grid, {} objects, {} ops, {} shards, jobs {} \
             ({:.0} ops/s)",
            spec.cfg.stream.objects,
            spec.cfg.stream.ops,
            spec.cfg.shards,
            spec.cfg.jobs,
            spec.cfg.stream.ops as f64 / rep.wall_secs.max(1e-12),
        ),
        phases: vec![("bed_build".into(), setup), ("soak".into(), rep.wall_secs)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_profile_times_every_phase() {
        let t = profile_fig4_phases(
            SizeSpec::Grid { rows: 6, cols: 6 },
            4,
            20,
            OracleKind::Auto,
            1,
        )
        .unwrap();
        let names: Vec<&str> = t.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "graph",
                "oracle",
                "hierarchy",
                "publish",
                "replay",
                "queries"
            ]
        );
        assert!(t.phases.iter().all(|&(_, s)| s >= 0.0));
        assert!(t.total() > 0.0);
        let rendered = t.render();
        assert!(rendered.contains("hierarchy"));
        assert!(rendered.contains("total"));
        assert!(rendered.contains('%'));
    }

    #[test]
    fn service_profile_reports_setup_and_soak() {
        let mut s = ServiceSpec::smoke();
        s.cfg.stream.ops = 500;
        s.cfg.stream.objects = 20;
        let t = profile_service_phases(&s).unwrap();
        assert_eq!(t.phases.len(), 2);
        assert!(t.phases[1].1 > 0.0, "soak wall clock missing");
        assert!(t.title.contains("ops/s"));
    }
}
