//! Workload persistence: save generated traces, replay recorded ones.
//!
//! Reproducibility beyond seeds: a workload can be written to JSON and
//! replayed later (or shipped alongside results). `validate_against`
//! guards replays on the wrong topology — a trace is only meaningful on
//! the graph whose adjacencies it walks.
//!
//! The on-disk format is plain JSON; the codec is hand-rolled (the
//! build environment vendors no serde) and intentionally tiny: a
//! workload is two arrays of unsigned integers.

use crate::mobility::{MoveOp, Workload};
use mot_core::ObjectId;
use mot_net::{Graph, NodeId};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Errors raised by workload I/O.
#[derive(Debug)]
pub enum IoError {
    /// An underlying filesystem read/write failed.
    Io(std::io::Error),
    /// Malformed JSON, with a human-readable position/diagnosis.
    Json(String),
    /// The trace references nodes or adjacencies the graph lacks.
    TopologyMismatch(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "workload i/o failed: {e}"),
            IoError::Json(e) => write!(f, "workload (de)serialization failed: {e}"),
            IoError::TopologyMismatch(what) => {
                write!(f, "trace does not fit the topology: {what}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a workload as pretty JSON.
pub fn save_workload(w: &Workload, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{{")?;
    let initial: Vec<String> = w.initial.iter().map(|p| p.index().to_string()).collect();
    writeln!(out, "  \"initial\": [{}],", initial.join(", "))?;
    writeln!(out, "  \"moves\": [")?;
    for (i, m) in w.moves.iter().enumerate() {
        let comma = if i + 1 < w.moves.len() { "," } else { "" };
        writeln!(
            out,
            "    {{ \"object\": {}, \"from\": {}, \"to\": {} }}{comma}",
            m.object.index(),
            m.from.index(),
            m.to.index()
        )?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    out.flush()?;
    Ok(())
}

/// Reads a workload back from JSON.
pub fn load_workload(path: impl AsRef<Path>) -> Result<Workload, IoError> {
    let text = std::fs::read_to_string(path)?;
    parse_workload(&text)
}

/// Byte-level parser for the workload JSON subset: one object with an
/// `initial` array of integers and a `moves` array of
/// `{object, from, to}` objects, in either order.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> IoError {
        IoError::Json(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), IoError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn integer(&mut self) -> Result<u64, IoError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|e| self.err(&format!("integer out of range ({e})")))
    }

    fn string_key(&mut self) -> Result<String, IoError> {
        self.expect(b'"')?;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos == self.bytes.len() {
            return Err(self.err("unterminated string"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 string"))?
            .to_string();
        self.pos += 1; // closing quote
        Ok(s)
    }

    fn int_array(&mut self) -> Result<Vec<u64>, IoError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.integer()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn move_op(&mut self) -> Result<MoveOp, IoError> {
        self.expect(b'{')?;
        let (mut object, mut from, mut to) = (None, None, None);
        loop {
            let key = self.string_key()?;
            self.expect(b':')?;
            let v = self.integer()?;
            match key.as_str() {
                "object" => object = Some(v),
                "from" => from = Some(v),
                "to" => to = Some(v),
                other => return Err(self.err(&format!("unknown move field '{other}'"))),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in move")),
            }
        }
        match (object, from, to) {
            (Some(o), Some(f), Some(t)) => Ok(MoveOp {
                object: ObjectId(u32::try_from(o).map_err(|_| self.err("object id exceeds u32"))?),
                from: NodeId(u32::try_from(f).map_err(|_| self.err("node id exceeds u32"))?),
                to: NodeId(u32::try_from(t).map_err(|_| self.err("node id exceeds u32"))?),
            }),
            _ => Err(self.err("move missing one of object/from/to")),
        }
    }

    fn move_array(&mut self) -> Result<Vec<MoveOp>, IoError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.move_op()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']' in moves")),
            }
        }
    }
}

fn parse_workload(text: &str) -> Result<Workload, IoError> {
    let mut p = Parser::new(text);
    p.expect(b'{')?;
    let (mut initial, mut moves) = (None, None);
    loop {
        let key = p.string_key()?;
        p.expect(b':')?;
        match key.as_str() {
            "initial" => {
                let raw = p.int_array()?;
                let mut ids = Vec::with_capacity(raw.len());
                for v in raw {
                    ids.push(NodeId(
                        u32::try_from(v).map_err(|_| p.err("node id exceeds u32"))?,
                    ));
                }
                initial = Some(ids);
            }
            "moves" => moves = Some(p.move_array()?),
            other => return Err(p.err(&format!("unknown workload field '{other}'"))),
        }
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return Err(p.err("expected ',' or '}' in workload")),
        }
    }
    if p.peek().is_some() {
        return Err(p.err("trailing data after workload"));
    }
    match (initial, moves) {
        (Some(initial), Some(moves)) => Ok(Workload { initial, moves }),
        _ => Err(IoError::Json(
            "workload missing 'initial' or 'moves'".into(),
        )),
    }
}

/// Checks that a (possibly externally produced) trace is executable on
/// `g`: nodes in range, every move leaving the object's current proxy
/// along an existing adjacency.
pub fn validate_against(w: &Workload, g: &Graph) -> Result<(), IoError> {
    let n = g.node_count();
    for (oi, &p) in w.initial.iter().enumerate() {
        if p.index() >= n {
            return Err(IoError::TopologyMismatch(format!(
                "initial proxy {p} of object {oi} out of range (n = {n})"
            )));
        }
    }
    let mut pos = w.initial.clone();
    for (step, m) in w.moves.iter().enumerate() {
        if m.object.index() >= pos.len() {
            return Err(IoError::TopologyMismatch(format!(
                "move {step} references unknown object {}",
                m.object
            )));
        }
        if m.from != pos[m.object.index()] {
            return Err(IoError::TopologyMismatch(format!(
                "move {step}: object {} is at {}, not {}",
                m.object,
                pos[m.object.index()],
                m.from
            )));
        }
        if m.to.index() >= n || !g.has_edge(m.from, m.to) {
            return Err(IoError::TopologyMismatch(format!(
                "move {step}: ({}, {}) is not an adjacency",
                m.from, m.to
            )));
        }
        pos[m.object.index()] = m.to;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{MoveOp, WorkloadSpec};
    use mot_core::ObjectId;
    use mot_net::{generators, NodeId};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mot-sim-io-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_the_trace() {
        let g = generators::grid(4, 4).unwrap();
        let w = WorkloadSpec::new(3, 25, 7).generate(&g);
        let path = tmp("roundtrip");
        save_workload(&w, &path).unwrap();
        let back = load_workload(&path).unwrap();
        assert_eq!(w, back);
        validate_against(&back, &g).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parses_foreign_formatting() {
        // Same schema, different whitespace and key order than we emit.
        let text = r#"{"moves":[{"to":1,"from":0,"object":0}],
                       "initial" : [ 0 ]}"#;
        let w = parse_workload(text).unwrap();
        assert_eq!(w.initial, vec![NodeId(0)]);
        assert_eq!(
            w.moves,
            vec![MoveOp {
                object: ObjectId(0),
                from: NodeId(0),
                to: NodeId(1)
            }]
        );
    }

    #[test]
    fn empty_workload_roundtrips() {
        let w = Workload {
            initial: vec![],
            moves: vec![],
        };
        let path = tmp("empty");
        save_workload(&w, &path).unwrap();
        assert_eq!(load_workload(&path).unwrap(), w);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn validation_rejects_wrong_topology() {
        let g = generators::grid(4, 4).unwrap();
        let small = generators::grid(2, 2).unwrap();
        let w = WorkloadSpec::new(2, 30, 3).generate(&g);
        assert!(matches!(
            validate_against(&w, &small),
            Err(IoError::TopologyMismatch(_))
        ));
    }

    #[test]
    fn validation_rejects_broken_chains() {
        let g = generators::grid(3, 3).unwrap();
        let w = Workload {
            initial: vec![NodeId(0)],
            moves: vec![MoveOp {
                object: ObjectId(0),
                from: NodeId(4),
                to: NodeId(5),
            }],
        };
        let err = validate_against(&w, &g).unwrap_err();
        assert!(err.to_string().contains("is at 0, not 4"), "{err}");
    }

    #[test]
    fn validation_rejects_teleports() {
        let g = generators::grid(3, 3).unwrap();
        let w = Workload {
            initial: vec![NodeId(0)],
            moves: vec![MoveOp {
                object: ObjectId(0),
                from: NodeId(0),
                to: NodeId(8),
            }],
        };
        assert!(matches!(
            validate_against(&w, &g),
            Err(IoError::TopologyMismatch(_))
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"{ not json").unwrap();
        assert!(matches!(load_workload(&path), Err(IoError::Json(_))));
        std::fs::remove_file(path).ok();
        assert!(matches!(
            load_workload("/no/such/file.json"),
            Err(IoError::Io(_))
        ));
    }
}
