//! Service-mode soak (ISSUE 7 acceptance): ≥10⁵ ops through the
//! long-lived sharded event loop under a composed
//! drop+dup+delay+link+crash fault plan, asserting
//!
//! * **zero silent loss** — `sent == applied + shed + recorded-lost`
//!   with nothing unaccounted,
//! * **chaos transparency** — the end-state object→location map is
//!   bit-identical to the fault-free oracle run (the stream generator's
//!   own ground truth),
//! * **jobs parity** — the deterministic report slice and the final map
//!   are byte-identical for `--jobs 1` and `--jobs 4`.

use mot_sim::{run_service, FaultConfig, OpStream, ServiceConfig, StreamSpec, TestBed};

const SOAK_OPS: u64 = 100_000;

fn soak_spec() -> StreamSpec {
    StreamSpec::new(1_000, SOAK_OPS, 1234)
}

fn soak_config(jobs: usize, faults: FaultConfig) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(soak_spec());
    cfg.shards = 8;
    cfg.jobs = jobs;
    cfg.batch = 512;
    cfg.faults = faults;
    cfg
}

fn composed_plan() -> FaultConfig {
    FaultConfig {
        seed: 77,
        drop_rate: 0.15,
        duplicate_rate: 0.05,
        delay_rate: 0.05,
        link_failure_rate: 0.02,
        crashes: 6,
        max_attempts: 8,
    }
}

#[test]
fn soak_100k_ops_survives_composed_faults_with_zero_silent_loss() {
    let bed = TestBed::grid(8, 8, 99).unwrap();

    // Fault-free oracle: the generator replayed to the end.
    let mut oracle = OpStream::new(&bed.graph, soak_spec());
    while oracle.next_op().is_some() {}

    let faulty = run_service(&bed, &soak_config(4, composed_plan())).unwrap();
    let r = &faulty.report;
    assert_eq!(r.sent, SOAK_OPS);
    assert!(
        r.accounted(),
        "zero silent loss: {}",
        r.deterministic_json()
    );
    assert_eq!(r.lost, 0, "an 8-attempt budget absorbs this plan");
    assert_eq!(r.queries_wrong, 0, "trackers never disagree with ledgers");

    // The chaos actually happened…
    assert!(r.dropped_attempts > 0, "drops injected");
    assert!(r.dup_deliveries > 0, "duplicates injected");
    assert!(r.delayed > 0, "delays injected");
    assert!(r.crash_events > 0, "shard crashes injected");
    assert!(r.fenced > 0, "duplicate deliveries were fenced");
    assert!(r.superseded > 0, "stale state ops were fenced");
    assert!(r.replayed_ops > 0, "crash re-adoption replayed the ledger");

    // …and left no trace on the end state.
    assert_eq!(
        faulty.final_positions,
        oracle.positions(),
        "end state is bit-identical to the fault-free oracle"
    );

    // A fault-free service run lands on the same map.
    let clean = run_service(&bed, &soak_config(2, FaultConfig::default())).unwrap();
    assert_eq!(clean.final_positions, faulty.final_positions);
    assert_eq!(clean.report.final_map_fnv, faulty.report.final_map_fnv);
}

#[test]
fn soak_report_is_byte_identical_for_jobs_1_and_4() {
    let bed = TestBed::grid(8, 8, 99).unwrap();
    let one = run_service(&bed, &soak_config(1, composed_plan())).unwrap();
    let four = run_service(&bed, &soak_config(4, composed_plan())).unwrap();
    assert_eq!(
        one.report.deterministic_json(),
        four.report.deterministic_json(),
        "the deterministic report slice is jobs-independent"
    );
    assert_eq!(one.final_positions, four.final_positions);
    // The quantiles the soak profile reports are part of that slice.
    assert_eq!(
        one.report.move_cost.quantile(0.99),
        four.report.move_cost.quantile(0.99)
    );
}
