//! Network-level metrics: diameter, doubling dimension, growth restriction.
//!
//! MOT's constant-doubling bounds are parameterized by the doubling
//! constant `ρ` (any `δ`-ball is coverable by `2^ρ` balls of radius
//! `δ/2`); `estimate_doubling_dimension` measures an empirical `ρ` so
//! experiments can report the constants their topology actually exhibits.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::oracle::DistanceOracle;

/// Summary statistics of a deployed sensor network.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Sensor count `|V|`.
    pub nodes: usize,
    /// Undirected edge count `|E|`.
    pub edges: usize,
    /// Weighted shortest-path diameter `D`.
    pub diameter: f64,
    /// Mean node degree `2|E|/|V|`.
    pub avg_degree: f64,
    /// Largest node degree.
    pub max_degree: usize,
    /// Empirical doubling dimension `ρ` (see
    /// [`estimate_doubling_dimension`]).
    pub doubling_dimension: f64,
}

impl GraphStats {
    /// Gathers statistics for `g`, reusing a prebuilt distance oracle.
    pub fn compute(g: &Graph, m: &dyn DistanceOracle) -> GraphStats {
        let nodes = g.node_count();
        let max_degree = g.nodes().map(|u| g.degree(u)).max().unwrap_or(0);
        GraphStats {
            nodes,
            edges: g.edge_count(),
            diameter: m.diameter(),
            avg_degree: if nodes == 0 {
                0.0
            } else {
                2.0 * g.edge_count() as f64 / nodes as f64
            },
            max_degree,
            doubling_dimension: estimate_doubling_dimension(m),
        }
    }
}

/// Empirical doubling dimension: the maximum over sampled centers `u` and
/// radii `r` of `log2(|B(u, 2r)| / |B(u, r)|)`.
///
/// This is the *growth-restriction* form of the dimension (the paper's §5
/// load result assumes growth-restricted networks); for finite metrics it
/// tracks the ball-cover doubling constant up to small factors and is the
/// standard measurable proxy.
pub fn estimate_doubling_dimension(m: &dyn DistanceOracle) -> f64 {
    let n = m.node_count();
    if n <= 1 {
        return 0.0;
    }
    let mut worst: f64 = 0.0;
    // Deterministic sample of centers to keep this O(n sqrt(n)) - ish.
    let stride = (n / 64).max(1);
    let mut r = 1.0;
    while r <= m.diameter() {
        for i in (0..n).step_by(stride) {
            let u = NodeId::from_index(i);
            let small = m.ball_size(u, r);
            let big = m.ball_size(u, 2.0 * r);
            if small > 0 {
                worst = worst.max((big as f64 / small as f64).log2());
            }
        }
        r *= 2.0;
    }
    worst
}

/// Growth ratio `|B(u, 2r)| / |B(u, r)|` for a specific center and radius.
pub fn growth_ratio(m: &dyn DistanceOracle, u: NodeId, r: f64) -> f64 {
    let small = m.ball_size(u, r);
    if small == 0 {
        return 0.0;
    }
    m.ball_size(u, 2.0 * r) as f64 / small as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn grid_has_small_doubling_dimension() {
        let g = generators::grid(16, 16).unwrap();
        let m = crate::oracle::DenseOracle::build(&g).unwrap();
        let rho = estimate_doubling_dimension(&m);
        // A 2-D grid is constant-doubling; growth ratio of interior balls
        // approaches 4 (rho = 2) with boundary effects pushing it a little
        // higher for small radii.
        assert!(rho > 0.5 && rho < 3.5, "rho = {rho}");
    }

    #[test]
    fn line_has_dimension_about_one() {
        let g = generators::line(128).unwrap();
        let m = crate::oracle::DenseOracle::build(&g).unwrap();
        let rho = estimate_doubling_dimension(&m);
        assert!(rho <= 1.2, "rho = {rho}");
    }

    #[test]
    fn stats_populate_all_fields() {
        let g = generators::grid(4, 4).unwrap();
        let m = crate::oracle::DenseOracle::build(&g).unwrap();
        let s = GraphStats::compute(&g, &m);
        assert_eq!(s.nodes, 16);
        assert_eq!(s.edges, 24);
        assert_eq!(s.diameter, 6.0);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 3.0).abs() < 1e-12);
    }

    #[test]
    fn growth_ratio_on_grid_interior() {
        let g = generators::grid(9, 9).unwrap();
        let m = crate::oracle::DenseOracle::build(&g).unwrap();
        let center = NodeId(40); // middle
        let ratio = growth_ratio(&m, center, 2.0);
        assert!(ratio > 1.0 && ratio <= 8.0, "ratio = {ratio}");
    }
}
