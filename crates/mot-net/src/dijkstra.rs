//! Single-source shortest paths and shortest-path trees.
//!
//! These are the classic one-shot entry points; each call runs a fresh
//! [`DijkstraWorkspace`]. Hot callers that run
//! Dijkstra many times over the same graph (the oracle backends, the
//! hierarchy builders) hold a workspace and reuse it — see
//! [`crate::workspace`] for the zero-allocation variant. Both paths
//! produce bit-identical distances, parents, and settle orders.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::workspace::DijkstraWorkspace;

/// Shortest-path distances from `source` to every node.
///
/// Unreachable nodes get `f64::INFINITY` (cannot happen for the connected
/// graphs the suite uses, but kept well-defined for robustness).
pub fn dijkstra(g: &Graph, source: NodeId) -> Vec<f64> {
    let mut ws = DijkstraWorkspace::with_capacity(g.node_count());
    ws.sssp(g, source);
    let mut dist = Vec::new();
    ws.fill_dist(&mut dist);
    dist
}

/// Shortest-path distance from `source` to a single `target`, stopping
/// early once the target is settled.
pub fn dijkstra_targeted(g: &Graph, source: NodeId, target: NodeId) -> f64 {
    let mut ws = DijkstraWorkspace::with_capacity(g.node_count());
    ws.sssp_targeted(g, source, target)
}

/// A shortest-path tree rooted at `root`.
///
/// `parent[root] = None`; every other node's parent lies on a shortest path
/// to the root. Used for cost accounting (overlay edges are simulated by
/// shortest physical paths) and by the DAT baseline, which is a
/// deviation-free shortest-path tree.
#[derive(Clone, Debug)]
pub struct PathTree {
    /// The node the tree is rooted at.
    pub root: NodeId,
    /// `dist[u]` = shortest-path distance from `u` to the root.
    pub dist: Vec<f64>,
    /// `parent[u]` = next hop toward the root (`None` at the root).
    pub parent: Vec<Option<NodeId>>,
}

impl PathTree {
    /// Extracts the node sequence from `from` up to the root.
    pub fn path_to_root(&self, from: NodeId) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Distance from `u` to the root along the tree (equals the graph
    /// shortest-path distance by construction).
    pub fn dist_to_root(&self, u: NodeId) -> f64 {
        self.dist[u.index()]
    }
}

/// Builds a shortest-path tree from `root`.
pub fn shortest_path_tree(g: &Graph, root: NodeId) -> PathTree {
    let mut ws = DijkstraWorkspace::with_capacity(g.node_count());
    ws.sssp(g, root);
    let mut dist = Vec::new();
    ws.fill_dist(&mut dist);
    let parent = g.nodes().map(|u| ws.parent(u)).collect();
    PathTree { root, dist, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    fn weighted_square() -> Graph {
        // 0 --1-- 1
        // |       |
        // 4       1
        // |       |
        // 3 --1-- 2
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_cheaper_long_path() {
        let g = weighted_square();
        let d = dijkstra(&g, NodeId(0));
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        // direct edge costs 4, the 3-hop path costs 3
        assert_eq!(d[3], 3.0);
    }

    #[test]
    fn targeted_matches_full() {
        let g = generators::grid(5, 7).unwrap();
        let full = dijkstra(&g, NodeId(3));
        for t in g.nodes() {
            assert_eq!(dijkstra_targeted(&g, NodeId(3), t), full[t.index()]);
        }
    }

    #[test]
    fn path_tree_paths_have_shortest_length() {
        let g = weighted_square();
        let tree = shortest_path_tree(&g, NodeId(0));
        let path = tree.path_to_root(NodeId(3));
        assert_eq!(path, vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]);
        assert_eq!(tree.dist_to_root(NodeId(3)), 3.0);
    }

    #[test]
    fn dijkstra_on_grid_matches_manhattan() {
        let g = generators::grid(4, 4).unwrap();
        let d = dijkstra(&g, NodeId(0));
        // unit-weight grid: distance = Manhattan distance from (0,0)
        for r in 0..4 {
            for c in 0..4 {
                let idx = r * 4 + c;
                assert_eq!(d[idx], (r + c) as f64, "node ({r},{c})");
            }
        }
    }

    #[test]
    fn tree_parent_edges_exist_in_graph() {
        let g = generators::grid(6, 6).unwrap();
        let tree = shortest_path_tree(&g, NodeId(20));
        for u in g.nodes() {
            if let Some(p) = tree.parent[u.index()] {
                assert!(g.has_edge(u, p));
            } else {
                assert_eq!(u, tree.root);
            }
        }
    }
}
