//! The distributed rendering of MOT: per-node state machines exchanging
//! typed messages.
//!
//! ```text
//! cargo run --release --example distributed_runtime
//! ```
//!
//! Algorithm 1 "can be immediately converted to a message-passing based
//! distributed algorithm" (paper, footnote 2) — this example runs that
//! conversion (`mot_proto::ProtoTracker`), shows the message-kind
//! breakdown of real operations, verifies cost-exact agreement with the
//! direct implementation, and demonstrates cross-object concurrency with
//! the §4.1.2 period-gated timed transport.

use mot_tracking::prelude::*;
use mot_tracking::proto::BatchOp;

fn main() {
    let bed = TestBed::grid(8, 8, 42).unwrap();
    let cfg = MotConfig::plain();
    let mut direct = MotTracker::new(&bed.overlay, &bed.oracle, cfg.clone());
    let mut proto = ProtoTracker::new(&bed.overlay, &bed.oracle, &cfg);

    // Identical operations through both renderings.
    let o = ObjectId(0);
    let pd = direct.publish(o, NodeId(0)).unwrap();
    let pp = proto.publish(o, NodeId(0)).unwrap();
    println!("publish cost: direct {pd:.1}, message-passing {pp:.1}");
    assert!((pd - pp).abs() < 1e-6);

    let mut dtotal = 0.0;
    let mut ptotal = 0.0;
    for hop in [1u32, 9, 10, 18, 26, 34, 42, 50, 58, 59] {
        dtotal += direct.move_object(o, NodeId(hop)).unwrap().cost;
        ptotal += proto.move_object(o, NodeId(hop)).unwrap().cost;
    }
    println!("10 moves:     direct {dtotal:.1}, message-passing {ptotal:.1}");
    assert!((dtotal - ptotal).abs() < 1e-6);

    let qd = direct.query(NodeId(7), o).unwrap();
    let qp = proto.query(NodeId(7), o).unwrap();
    println!(
        "query from 7: direct {:.1}, message-passing {:.1} (proxy {})\n",
        qd.cost, qp.cost, qp.proxy
    );
    assert_eq!(qd.proxy, qp.proxy);

    // Cross-object concurrency on the timed transport: 12 animals are
    // collared simultaneously; messages race, climbs wait at level-period
    // boundaries.
    let pubs: Vec<BatchOp> = (1..=12u32)
        .map(|k| BatchOp::Publish {
            object: ObjectId(k),
            proxy: NodeId(k * 5 % 64),
        })
        .collect();
    let mut fresh = ProtoTracker::new(&bed.overlay, &bed.oracle, &cfg);
    let free = fresh.run_batch(&pubs, 0.0).unwrap();
    let mut fresh2 = ProtoTracker::new(&bed.overlay, &bed.oracle, &cfg);
    let gated = fresh2.run_batch(&pubs, 1.0).unwrap();
    println!("12 concurrent publishes:");
    println!(
        "  ungated:      total cost {:7.1}, makespan {:6.1}",
        free.total_cost, free.makespan
    );
    println!(
        "  period-gated: total cost {:7.1}, makespan {:6.1}  (Φ(i) = 2^i)",
        gated.total_cost, gated.makespan
    );
    assert!((free.total_cost - gated.total_cost).abs() < 1e-6);
    assert!(
        free.makespan < free.total_cost,
        "parallelism must beat serialization"
    );

    // Mixed racing batch: moves and queries on distinct objects.
    let ops = vec![
        BatchOp::Move {
            object: ObjectId(1),
            to: NodeId(6),
        },
        BatchOp::Move {
            object: ObjectId(2),
            to: NodeId(11),
        },
        BatchOp::Query {
            object: ObjectId(3),
            from: NodeId(63),
        },
        BatchOp::Query {
            object: ObjectId(4),
            from: NodeId(56),
        },
    ];
    let out = fresh.run_batch(&ops, 0.0).unwrap();
    println!(
        "\nmixed batch (2 moves + 2 queries): makespan {:.1}",
        out.makespan
    );
    for (obj, proxy) in &out.replies {
        println!("  query answer: object {obj} is at sensor {proxy}");
    }
    assert_eq!(out.replies.len(), 2);
    println!("\nmessage-passing and direct implementations agree to < 1e-6.");
}
