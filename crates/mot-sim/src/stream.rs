//! Seeded generation of the service-mode operation stream.
//!
//! Service mode (DESIGN.md §15) ingests an unbounded sequence of
//! publish/move/query operations instead of a fixed [`crate::Workload`].
//! [`OpStream`] produces that sequence lazily: the first `objects` ops
//! publish each object at a random sensor, and every subsequent op picks
//! a published object and either hops it to an adjacent sensor (the
//! paper's bounded-speed mobility assumption) or queries it from a
//! random origin. Every envelope carries a dense global [`OpId`] and a
//! per-object sequence number, the handles the delivery layer needs for
//! exactly-once admission and staleness fencing.
//!
//! The generator doubles as the fault-free oracle: [`OpStream::positions`]
//! is the ground-truth object→location map after the ops emitted so far,
//! so any run of the service — however faulty its transport — can be
//! checked bit-for-bit against it.

use mot_core::{ObjectId, OpId};
use mot_net::{Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of one generated operation stream. The same spec over the
/// same graph always yields the same stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamSpec {
    /// Tracked objects; the stream opens by publishing each one.
    pub objects: usize,
    /// Total operations to emit (publishes included).
    pub ops: u64,
    /// Probability an op after the publish prefix is a query (the rest
    /// are adjacent-hop moves).
    pub query_fraction: f64,
    /// Stream RNG seed.
    pub seed: u64,
}

impl StreamSpec {
    /// A stream of `ops` operations over `objects` objects with the
    /// default 20% query share.
    pub fn new(objects: usize, ops: u64, seed: u64) -> Self {
        StreamSpec {
            objects,
            ops,
            query_fraction: 0.2,
            seed,
        }
    }
}

/// One operation of the service stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceOp {
    /// Start tracking the object at sensor `at`.
    Publish {
        /// The object's first proxy.
        at: NodeId,
    },
    /// The object hands off to the adjacent sensor `to`. Targets are
    /// absolute, so a skipped or reordered move never derails later
    /// ones — only the *newest* applied move defines the position.
    Move {
        /// The object's next proxy.
        to: NodeId,
    },
    /// Locate the object from sensor `from`.
    Query {
        /// The querying sensor.
        from: NodeId,
    },
}

/// An operation with its delivery identity: the dense global [`OpId`]
/// and the object's own sequence number (the fencing order — a move is
/// stale iff a higher `obj_seq` for the same object already applied).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpEnvelope {
    /// Globally unique, dense operation id.
    pub id: OpId,
    /// The object the op concerns.
    pub object: ObjectId,
    /// Position of this op in its object's own sequence.
    pub obj_seq: u32,
    /// The operation itself.
    pub op: ServiceOp,
}

/// The lazy, deterministic op generator. See the module docs.
pub struct OpStream<'g> {
    graph: &'g Graph,
    spec: StreamSpec,
    rng: ChaCha8Rng,
    /// Ground truth: where each published object is after the emitted
    /// prefix (`None` = not yet published).
    positions: Vec<Option<NodeId>>,
    obj_seq: Vec<u32>,
    emitted: u64,
}

impl<'g> OpStream<'g> {
    /// A stream over `graph`. Panics on a zero-object spec or a query
    /// fraction outside `[0, 1]` — both are configuration errors.
    pub fn new(graph: &'g Graph, spec: StreamSpec) -> Self {
        assert!(spec.objects > 0, "a stream needs at least one object");
        assert!(
            (0.0..=1.0).contains(&spec.query_fraction),
            "query fraction is a probability"
        );
        OpStream {
            graph,
            spec,
            rng: ChaCha8Rng::seed_from_u64(spec.seed),
            positions: vec![None; spec.objects],
            obj_seq: vec![0; spec.objects],
            emitted: 0,
        }
    }

    /// Ops emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total ops the stream will emit.
    pub fn total(&self) -> u64 {
        self.spec.ops
    }

    /// Ground-truth position per object after the emitted prefix
    /// (`None` = not yet published).
    pub fn positions(&self) -> &[Option<NodeId>] {
        &self.positions
    }

    /// The next operation, or `None` once `spec.ops` were emitted.
    pub fn next_op(&mut self) -> Option<OpEnvelope> {
        if self.emitted >= self.spec.ops {
            return None;
        }
        let id = OpId(self.emitted);
        let n = self.graph.node_count();
        let published = (self.emitted as usize).min(self.spec.objects);
        let (object, op) = if published < self.spec.objects {
            // Publish prefix: object ids in order, uniform start sensors.
            let o = published;
            let at = NodeId::from_index(self.rng.gen_range(0..n));
            self.positions[o] = Some(at);
            (o, ServiceOp::Publish { at })
        } else {
            let o = self.rng.gen_range(0..self.spec.objects);
            if self.rng.gen::<f64>() < self.spec.query_fraction {
                let from = NodeId::from_index(self.rng.gen_range(0..n));
                (o, ServiceOp::Query { from })
            } else {
                let cur = self.positions[o].expect("published object has a position");
                let nbrs = self.graph.neighbors(cur);
                let to = nbrs[self.rng.gen_range(0..nbrs.len())].to;
                self.positions[o] = Some(to);
                (o, ServiceOp::Move { to })
            }
        };
        let obj_seq = self.obj_seq[object];
        self.obj_seq[object] += 1;
        self.emitted += 1;
        Some(OpEnvelope {
            id,
            object: ObjectId(object as u32),
            obj_seq,
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;

    fn collect(spec: StreamSpec) -> (Vec<OpEnvelope>, Vec<Option<NodeId>>) {
        let g = generators::grid(6, 6).unwrap();
        let mut s = OpStream::new(&g, spec);
        let mut ops = Vec::new();
        while let Some(e) = s.next_op() {
            ops.push(e);
        }
        (ops, s.positions().to_vec())
    }

    #[test]
    fn same_spec_generates_the_same_stream() {
        let spec = StreamSpec::new(7, 300, 42);
        let (a, pa) = collect(spec);
        let (b, pb) = collect(spec);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
        assert_eq!(a.len(), 300);
    }

    #[test]
    fn publish_prefix_then_adjacent_moves_and_ground_truth_replay() {
        let g = generators::grid(6, 6).unwrap();
        let spec = StreamSpec::new(5, 200, 9);
        let mut s = OpStream::new(&g, spec);
        let mut replay: Vec<Option<NodeId>> = vec![None; 5];
        let mut expected_id = 0u64;
        let mut seqs = [0u32; 5];
        while let Some(e) = s.next_op() {
            assert_eq!(e.id, OpId(expected_id), "ids are dense");
            expected_id += 1;
            assert_eq!(e.obj_seq, seqs[e.object.index()], "per-object order");
            seqs[e.object.index()] += 1;
            match e.op {
                ServiceOp::Publish { at } => {
                    assert!(expected_id <= 5, "publishes form the prefix");
                    replay[e.object.index()] = Some(at);
                }
                ServiceOp::Move { to } => {
                    let cur = replay[e.object.index()].expect("move after publish");
                    assert!(
                        g.neighbors(cur).iter().any(|edge| edge.to == to),
                        "moves hop one adjacency"
                    );
                    replay[e.object.index()] = Some(to);
                }
                ServiceOp::Query { .. } => {}
            }
        }
        assert_eq!(replay, s.positions(), "generator tracks its own truth");
        assert!(replay.iter().all(Option::is_some));
    }

    #[test]
    fn query_fraction_bounds_are_respected() {
        let (ops, _) = collect(StreamSpec {
            objects: 3,
            ops: 100,
            query_fraction: 0.0,
            seed: 1,
        });
        assert!(
            !ops.iter().any(|e| matches!(e.op, ServiceOp::Query { .. })),
            "zero fraction means no queries"
        );
        let (ops, _) = collect(StreamSpec {
            objects: 3,
            ops: 100,
            query_fraction: 1.0,
            seed: 1,
        });
        let queries = ops
            .iter()
            .filter(|e| matches!(e.op, ServiceOp::Query { .. }))
            .count();
        assert_eq!(queries, 97, "everything after the publish prefix");
    }
}
