//! Query-popularity models for the scenario suite (DESIGN.md §18).
//!
//! The paper's query batches pick objects uniformly; real deployments
//! ask overwhelmingly about a few popular objects. [`QueryModel`] makes
//! the popularity distribution pluggable: [`QueryModel::Uniform`] keeps
//! the classic batch, [`QueryModel::Zipf`] draws objects from a Zipf
//! law with skew `s` (rank-`r` object drawn proportionally to
//! `1/(r+1)^s`; `s = 0` degenerates to uniform). [`run_queries_model`]
//! is the model-aware twin of [`crate::run_queries`]: same correctness
//! and cost accounting, plus a per-object hit census whose Jain index
//! quantifies the skew actually delivered — the load-report path the
//! Zipf sanity tests gate on (`s = 0` ⇒ Jain ≈ 1).

use crate::metrics::LoadStats;
use crate::run::QueryBatchStats;
use mot_core::{ObjectId, Result, Tracker};
use mot_net::{DistanceOracle, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How query batches pick the object they ask about.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryModel {
    /// Uniform over all published objects (the paper's batches).
    Uniform,
    /// Zipf-skewed popularity: object of rank `r` (= its id) is drawn
    /// proportionally to `1/(r+1)^s`. Skew `0` is uniform; web/query
    /// traces typically sit near `s ≈ 1`.
    Zipf {
        /// Skew exponent (`0` = uniform, larger = more concentrated).
        s: f64,
    },
}

impl QueryModel {
    /// A Zipf model with skew `s`.
    pub fn zipf(s: f64) -> Self {
        QueryModel::Zipf { s }
    }
}

/// Seedable Zipf sampler over ranks `0..n` via CDF inversion.
///
/// ```
/// use mot_sim::ZipfSampler;
/// use rand::SeedableRng;
/// let z = ZipfSampler::new(10, 1.2);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// use rand::Rng;
/// let first: Vec<usize> = (0..5).map(|_| z.sample(&mut rng)).collect();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let again: Vec<usize> = (0..5).map(|_| z.sample(&mut rng)).collect();
/// assert_eq!(first, again); // same seed ⇒ same ranks
/// assert!(first.iter().all(|&r| r < 10));
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative, normalized weights; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over ranks `0..n` with skew `s` (`s = 0` ⇒ uniform).
    /// Panics on `n = 0` or a negative/non-finite skew — configuration
    /// errors, not data.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "skew must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / (r as f64 + 1.0).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank (consumes exactly one `f64` from `rng`).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// A model-aware query batch: the classic correctness/cost accounting
/// plus the per-object popularity census the scenario tables report.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioQueryStats {
    /// Correctness and cost-vs-optimal accounting, identical in shape
    /// to [`crate::run_queries`]'s output.
    pub batch: QueryBatchStats,
    /// Queries issued per object (index = object id).
    pub object_hits: Vec<usize>,
}

impl ScenarioQueryStats {
    /// Jain fairness of the per-object hit counts: ≈ 1 under
    /// [`QueryModel::Uniform`] (or Zipf skew 0), dropping toward
    /// `1/objects` as the skew concentrates demand on rank 0.
    pub fn popularity_jain(&self) -> f64 {
        LoadStats::from_loads(&self.object_hits).jain_index
    }
}

/// Issues `count` queries from uniform random origins for objects drawn
/// from `model`, scoring each against the optimal cost
/// `dist(requester, proxy)` exactly as [`crate::run_queries`] does.
pub fn run_queries_model(
    tracker: &dyn Tracker,
    oracle: &dyn DistanceOracle,
    object_count: usize,
    count: usize,
    seed: u64,
    model: QueryModel,
) -> Result<ScenarioQueryStats> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = oracle.node_count();
    let sampler = match model {
        QueryModel::Uniform => None,
        QueryModel::Zipf { s } => Some(ZipfSampler::new(object_count, s)),
    };
    let mut out = ScenarioQueryStats {
        batch: QueryBatchStats::default(),
        object_hits: vec![0; object_count],
    };
    for _ in 0..count {
        let from = NodeId::from_index(rng.gen_range(0..n));
        let oi = match &sampler {
            None => rng.gen_range(0..object_count),
            Some(z) => z.sample(&mut rng),
        };
        let o = ObjectId(oi as u32);
        out.object_hits[oi] += 1;
        let truth = tracker
            .proxy_of(o)
            .expect("workload published every object");
        let r = tracker.query(from, o)?;
        if r.proxy == truth {
            out.batch.correct += 1;
        }
        let optimal = oracle.dist(from, truth);
        if optimal <= 0.0 {
            out.batch.zero_distance += 1;
        } else {
            out.batch.cost.record(r.cost, optimal);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WorkloadSpec;
    use crate::run::run_publish;
    use crate::testbed::{Algo, TestBed};
    use mot_baselines::DetectionRates;

    #[test]
    fn zipf_skew_zero_is_uniform() {
        let z = ZipfSampler::new(20, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut hits = vec![0usize; 20];
        for _ in 0..20_000 {
            hits[z.sample(&mut rng)] += 1;
        }
        let jain = LoadStats::from_loads(&hits).jain_index;
        assert!(jain > 0.99, "skew-0 Zipf must be uniform, Jain {jain}");
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let z = ZipfSampler::new(20, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut hits = vec![0usize; 20];
        for _ in 0..20_000 {
            hits[z.sample(&mut rng)] += 1;
        }
        assert!(
            hits[0] > hits[10] && hits[0] > 20_000 / 20 * 3,
            "rank 0 got {} of 20000 draws — not skewed",
            hits[0]
        );
        let jain = LoadStats::from_loads(&hits).jain_index;
        assert!(jain < 0.8, "skew-1.5 Zipf left Jain at {jain}");
    }

    #[test]
    fn model_aware_queries_stay_correct_and_report_popularity() {
        let bed = TestBed::grid(6, 6, 3).unwrap();
        let w = WorkloadSpec::new(8, 30, 1).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();

        let uniform =
            run_queries_model(t.as_ref(), &bed.oracle, 8, 400, 5, QueryModel::Uniform).unwrap();
        assert_eq!(uniform.batch.correct, 400);
        assert_eq!(uniform.object_hits.iter().sum::<usize>(), 400);
        assert!(
            uniform.popularity_jain() > 0.9,
            "uniform popularity Jain {}",
            uniform.popularity_jain()
        );

        let skewed =
            run_queries_model(t.as_ref(), &bed.oracle, 8, 400, 5, QueryModel::zipf(1.6)).unwrap();
        assert_eq!(skewed.batch.correct, 400);
        assert!(
            skewed.popularity_jain() < uniform.popularity_jain(),
            "skewed Jain {} vs uniform {}",
            skewed.popularity_jain(),
            uniform.popularity_jain()
        );
    }

    #[test]
    fn model_aware_runner_is_deterministic() {
        let bed = TestBed::grid(5, 5, 2).unwrap();
        let w = WorkloadSpec::new(4, 20, 9).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        let a = run_queries_model(t.as_ref(), &bed.oracle, 4, 100, 3, QueryModel::zipf(1.0));
        let b = run_queries_model(t.as_ref(), &bed.oracle, 4, 100, 3, QueryModel::zipf(1.0));
        assert_eq!(a.unwrap(), b.unwrap());
    }
}
