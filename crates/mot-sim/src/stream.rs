//! Seeded generation of the service-mode operation stream.
//!
//! Service mode (DESIGN.md §15) ingests an unbounded sequence of
//! publish/move/query operations instead of a fixed [`crate::Workload`].
//! [`OpStream`] produces that sequence lazily: the first `objects` ops
//! publish each object at a random sensor, and every subsequent op picks
//! a published object and either hops it to an adjacent sensor (the
//! paper's bounded-speed mobility assumption) or queries it from a
//! random origin. Every envelope carries a dense global [`OpId`] and a
//! per-object sequence number, the handles the delivery layer needs for
//! exactly-once admission and staleness fencing.
//!
//! The generator doubles as the fault-free oracle: [`OpStream::positions`]
//! is the ground-truth object→location map after the ops emitted so far,
//! so any run of the service — however faulty its transport — can be
//! checked bit-for-bit against it.
//!
//! With [`StreamSpec::churn_every`] set, the stream additionally
//! interleaves [`ServiceOp::Topology`] control ops that walk a seeded
//! [`mot_net::ChurnSchedule`], and steers data-plane sensors away from
//! the schedule's removable pool (§7 churn, DESIGN.md §17).
//!
//! The scenario layer (DESIGN.md §18) plugs in here too:
//! [`StreamSpec::mobility`] swaps the adjacent-hop mover for any
//! [`MobilityModel`] (flights are walked one hop per move op, so the
//! bounded-speed contract holds for every model), and
//! [`StreamSpec::query_model`] skews which object each query asks
//! about. With the defaults ([`MobilityModel::RandomWalk`] +
//! [`QueryModel::Uniform`]) the generator consumes the *identical* RNG
//! draw sequence it did before the scenario layer existed, so static
//! streams are bit-identical to pre-scenario output.

use crate::mobility::{flight_to, hotspot_target, levy_target, MobilityModel};
use crate::scenario::{QueryModel, ZipfSampler};
use mot_core::{ObjectId, OpId};
use mot_net::{ChurnSchedule, ChurnSpec, Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Salt folded into the stream seed to derive the churn-schedule seed,
/// so the op coins and the topology coins are independent streams.
const CHURN_SEED_SALT: u64 = 0x43_48_55_52;

/// Parameters of one generated operation stream. The same spec over the
/// same graph always yields the same stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamSpec {
    /// Tracked objects; the stream opens by publishing each one.
    pub objects: usize,
    /// Total operations to emit (publishes included).
    pub ops: u64,
    /// Probability an op after the publish prefix is a query (the rest
    /// are adjacent-hop moves).
    pub query_fraction: f64,
    /// Stream RNG seed.
    pub seed: u64,
    /// Emit a [`ServiceOp::Topology`] delta every this many ops after
    /// the publish prefix (`0` = static topology, the default — and
    /// bit-identical to pre-churn streams). Churn streams steer
    /// publish/query origins and move targets away from the schedule's
    /// removable pool, so data-plane ops never land on a sensor that
    /// may currently be departed (DESIGN.md §17). Requires the default
    /// random-walk mobility (path movers cannot steer).
    pub churn_every: u64,
    /// How moves pick their targets. The default,
    /// [`MobilityModel::RandomWalk`], reproduces the pre-scenario
    /// stream bit-for-bit; every other model walks planned flights one
    /// adjacent hop per move op.
    pub mobility: MobilityModel,
    /// How queries pick their object. The default,
    /// [`QueryModel::Uniform`], reproduces the pre-scenario stream
    /// bit-for-bit.
    pub query_model: QueryModel,
}

impl StreamSpec {
    /// A stream of `ops` operations over `objects` objects with the
    /// default 20% query share, uniform queries, random-walk mobility,
    /// and a static topology.
    pub fn new(objects: usize, ops: u64, seed: u64) -> Self {
        StreamSpec {
            objects,
            ops,
            query_fraction: 0.2,
            seed,
            churn_every: 0,
            mobility: MobilityModel::RandomWalk,
            query_model: QueryModel::Uniform,
        }
    }

    /// This spec with a different mobility model.
    pub fn with_mobility(mut self, m: MobilityModel) -> Self {
        self.mobility = m;
        self
    }

    /// This spec with a different query-popularity model.
    pub fn with_query_model(mut self, q: QueryModel) -> Self {
        self.query_model = q;
        self
    }

    /// The churn schedule parameters this spec implies on an `n`-node
    /// graph, or `None` for a static topology: one delta per
    /// `churn_every` ops, with up to `max(1, n/8)` concurrently
    /// departed sensors.
    pub fn churn_plan(&self, n: usize) -> Option<ChurnSpec> {
        if self.churn_every == 0 {
            return None;
        }
        let deltas = (self.ops / self.churn_every) as usize;
        let max_departed = (n / 8).clamp(1, n.saturating_sub(1).max(1));
        Some(ChurnSpec::new(
            deltas,
            max_departed,
            self.seed ^ CHURN_SEED_SALT,
        ))
    }
}

/// One operation of the service stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceOp {
    /// Start tracking the object at sensor `at`.
    Publish {
        /// The object's first proxy.
        at: NodeId,
    },
    /// The object hands off to the adjacent sensor `to`. Targets are
    /// absolute, so a skipped or reordered move never derails later
    /// ones — only the *newest* applied move defines the position.
    Move {
        /// The object's next proxy.
        to: NodeId,
    },
    /// Locate the object from sensor `from`.
    Query {
        /// The querying sensor.
        from: NodeId,
    },
    /// Control plane: apply delta `delta` of the stream's churn
    /// schedule to the topology. The coordinator intercepts these
    /// before transport — they ride no fault coins, count toward no
    /// data-plane account, and carry the sentinel object
    /// `ObjectId(u32::MAX)`.
    Topology {
        /// Index into [`OpStream::churn_schedule`].
        delta: u32,
    },
}

/// An operation with its delivery identity: the dense global [`OpId`]
/// and the object's own sequence number (the fencing order — a move is
/// stale iff a higher `obj_seq` for the same object already applied).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpEnvelope {
    /// Globally unique, dense operation id.
    pub id: OpId,
    /// The object the op concerns.
    pub object: ObjectId,
    /// Position of this op in its object's own sequence.
    pub obj_seq: u32,
    /// The operation itself.
    pub op: ServiceOp,
}

/// The lazy, deterministic op generator. See the module docs.
pub struct OpStream<'g> {
    graph: &'g Graph,
    spec: StreamSpec,
    rng: ChaCha8Rng,
    /// Ground truth: where each published object is after the emitted
    /// prefix (`None` = not yet published).
    positions: Vec<Option<NodeId>>,
    obj_seq: Vec<u32>,
    emitted: u64,
    /// Publishes emitted so far (tracked separately because topology
    /// ops also consume `emitted` slots).
    published: usize,
    /// Seeded churn schedule when `spec.churn_every > 0`.
    schedule: Option<ChurnSchedule>,
    next_delta: usize,
    /// Sensors outside the schedule's removable pool — where steered
    /// publishes/queries land. With a static topology this is every
    /// node in id order, so indexing it draws the same values the
    /// unsteered generator drew.
    allowed: Vec<NodeId>,
    /// Reusable per-move buffer of steered hop targets (the service
    /// allocation regression budget covers this path).
    move_scratch: Vec<NodeId>,
    /// Pending flight hops per object (reversed, `pop()`ed one hop per
    /// move op) — only populated under non-random-walk mobility.
    flights: Vec<Vec<NodeId>>,
    /// Commuter state per object: `(home, far_anchor, heading_out)`,
    /// established on the object's first planned flight.
    commuter: Vec<Option<(NodeId, NodeId, bool)>>,
    /// Shared hotspot anchors (drawn at construction, hotspot mode only).
    hotspot_anchors: Vec<NodeId>,
    /// Zipf popularity sampler when the query model is skewed.
    zipf: Option<ZipfSampler>,
}

impl<'g> OpStream<'g> {
    /// A stream over `graph`. Panics on a zero-object spec, a query
    /// fraction outside `[0, 1]`, a churn spec the graph cannot
    /// support, or churn combined with a non-random-walk mobility
    /// model — all configuration errors.
    pub fn new(graph: &'g Graph, spec: StreamSpec) -> Self {
        assert!(spec.objects > 0, "a stream needs at least one object");
        assert!(
            (0.0..=1.0).contains(&spec.query_fraction),
            "query fraction is a probability"
        );
        assert!(
            matches!(spec.mobility, MobilityModel::RandomWalk) || spec.churn_every == 0,
            "churn streams require random-walk mobility \
             (path movers cannot steer around the removable pool)"
        );
        let schedule = spec
            .churn_plan(graph.node_count())
            .map(|plan| ChurnSchedule::generate(graph, &plan).expect("churn schedule"));
        let allowed: Vec<NodeId> = match &schedule {
            None => graph.nodes().collect(),
            Some(s) => graph
                .nodes()
                .filter(|u| s.removable().binary_search(u).is_err())
                .collect(),
        };
        assert!(!allowed.is_empty(), "churn pool may not cover every sensor");
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        // Hotspot anchors are drawn before any op, and only in hotspot
        // mode — every other mobility model leaves the op draw sequence
        // exactly where it always started.
        let hotspot_anchors: Vec<NodeId> = match spec.mobility {
            MobilityModel::Hotspot { hotspots, .. } => {
                let n = graph.node_count();
                let k = hotspots.clamp(1, n);
                let mut anchors: Vec<NodeId> = Vec::with_capacity(k);
                while anchors.len() < k {
                    let t = NodeId::from_index(rng.gen_range(0..n));
                    if !anchors.contains(&t) {
                        anchors.push(t);
                    }
                }
                anchors
            }
            _ => Vec::new(),
        };
        let zipf = match spec.query_model {
            QueryModel::Uniform => None,
            QueryModel::Zipf { s } => Some(ZipfSampler::new(spec.objects, s)),
        };
        OpStream {
            graph,
            spec,
            rng,
            positions: vec![None; spec.objects],
            obj_seq: vec![0; spec.objects],
            emitted: 0,
            published: 0,
            schedule,
            next_delta: 0,
            allowed,
            move_scratch: Vec::new(),
            flights: vec![Vec::new(); spec.objects],
            commuter: vec![None; spec.objects],
            hotspot_anchors,
            zipf,
        }
    }

    /// Ops emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total ops the stream will emit.
    pub fn total(&self) -> u64 {
        self.spec.ops
    }

    /// Ground-truth position per object after the emitted prefix
    /// (`None` = not yet published).
    pub fn positions(&self) -> &[Option<NodeId>] {
        &self.positions
    }

    /// The seeded churn schedule [`ServiceOp::Topology`] ops index
    /// into, when this is a churn stream.
    pub fn churn_schedule(&self) -> Option<&ChurnSchedule> {
        self.schedule.as_ref()
    }

    /// Draws one steered sensor (uniform over the non-removable set;
    /// with a static topology, uniform over all sensors — consuming
    /// the identical RNG draw).
    fn draw_sensor(&mut self) -> NodeId {
        let i = self.rng.gen_range(0..self.allowed.len());
        self.allowed[i]
    }

    /// Advances object `o` one hop per its mobility model and returns
    /// the move op. Random walks draw single adjacent hops (with churn
    /// steering) exactly as the pre-scenario generator did; every other
    /// model pops the next hop of a planned flight, planning a fresh
    /// one when the current flight is exhausted.
    fn next_move(&mut self, o: usize) -> ServiceOp {
        let cur = self.positions[o].expect("published object has a position");
        let to = match self.spec.mobility {
            MobilityModel::RandomWalk => {
                let nbrs = self.graph.neighbors(cur);
                match &self.schedule {
                    None => nbrs[self.rng.gen_range(0..nbrs.len())].to,
                    Some(sched) => {
                        // Steer the hop toward non-removable neighbors;
                        // if the object is cornered, any hop will do —
                        // the data plane runs on the static base graph.
                        self.move_scratch.clear();
                        for e in nbrs {
                            if sched.removable().binary_search(&e.to).is_err() {
                                self.move_scratch.push(e.to);
                            }
                        }
                        if self.move_scratch.is_empty() {
                            nbrs[self.rng.gen_range(0..nbrs.len())].to
                        } else {
                            let i = self.rng.gen_range(0..self.move_scratch.len());
                            self.move_scratch[i]
                        }
                    }
                }
            }
            _ => {
                if self.flights[o].is_empty() {
                    self.flights[o] = self.plan_flight(o, cur);
                }
                self.flights[o].pop().expect("planned flight is non-empty")
            }
        };
        self.positions[o] = Some(to);
        ServiceOp::Move { to }
    }

    /// Plans the next flight for object `o` at `cur` under the spec's
    /// (non-random-walk) mobility model. Mirrors
    /// [`crate::WorkloadSpec::generate`]'s per-model target selection.
    fn plan_flight(&mut self, o: usize, cur: NodeId) -> Vec<NodeId> {
        let g = self.graph;
        let n = g.node_count();
        match self.spec.mobility {
            MobilityModel::RandomWalk => unreachable!("random walks plan single hops"),
            MobilityModel::Waypoint => {
                let target = loop {
                    let t = NodeId::from_index(self.rng.gen_range(0..n));
                    if t != cur {
                        break t;
                    }
                };
                flight_to(g, cur, target)
            }
            MobilityModel::Commuter => {
                if self.commuter[o].is_none() {
                    let far = loop {
                        let t = NodeId::from_index(self.rng.gen_range(0..n));
                        if t != cur {
                            break t;
                        }
                    };
                    self.commuter[o] = Some((cur, far, true));
                }
                let (home, far, heading_out) = self.commuter[o].expect("established above");
                self.commuter[o] = Some((home, far, !heading_out));
                let target = if heading_out { far } else { home };
                if target == cur {
                    vec![g.neighbors(cur)[0].to]
                } else {
                    flight_to(g, cur, target)
                }
            }
            MobilityModel::Levy { alpha } => {
                let target = levy_target(g, cur, alpha, &mut self.rng);
                flight_to(g, cur, target)
            }
            MobilityModel::Hotspot { locality, .. } => {
                let target = hotspot_target(g, &self.hotspot_anchors, locality, &mut self.rng);
                if target == cur {
                    let nbrs = g.neighbors(cur);
                    vec![nbrs[self.rng.gen_range(0..nbrs.len())].to]
                } else {
                    flight_to(g, cur, target)
                }
            }
            MobilityModel::PingPong { a, b } => {
                let target = if cur == a { b } else { a };
                if target == cur {
                    vec![g.neighbors(cur)[0].to]
                } else {
                    flight_to(g, cur, target)
                }
            }
        }
    }

    /// The next operation, or `None` once `spec.ops` were emitted.
    pub fn next_op(&mut self) -> Option<OpEnvelope> {
        if self.emitted >= self.spec.ops {
            return None;
        }
        let id = OpId(self.emitted);
        // Control plane: after the publish prefix, every
        // `churn_every`-th slot carries the next topology delta (no
        // RNG draws, so the data-plane coin stream is untouched).
        if let Some(sched) = &self.schedule {
            if self.published >= self.spec.objects
                && self.emitted.is_multiple_of(self.spec.churn_every)
                && self.next_delta < sched.len()
            {
                let delta = self.next_delta as u32;
                self.next_delta += 1;
                self.emitted += 1;
                return Some(OpEnvelope {
                    id,
                    object: ObjectId(u32::MAX),
                    obj_seq: 0,
                    op: ServiceOp::Topology { delta },
                });
            }
        }
        let (object, op) = if self.published < self.spec.objects {
            // Publish prefix: object ids in order, uniform start sensors.
            let o = self.published;
            self.published += 1;
            let at = self.draw_sensor();
            self.positions[o] = Some(at);
            (o, ServiceOp::Publish { at })
        } else {
            match self.spec.query_model {
                // Frozen draw order: object, coin, then the op's own
                // draws — identical to the pre-scenario generator.
                QueryModel::Uniform => {
                    let o = self.rng.gen_range(0..self.spec.objects);
                    if self.rng.gen::<f64>() < self.spec.query_fraction {
                        let from = self.draw_sensor();
                        (o, ServiceOp::Query { from })
                    } else {
                        (o, self.next_move(o))
                    }
                }
                // Skewed popularity applies to *queries* only, so the
                // coin flips first and the query path draws its object
                // from the Zipf sampler; moves keep uniform coverage.
                QueryModel::Zipf { .. } => {
                    if self.rng.gen::<f64>() < self.spec.query_fraction {
                        let o = self
                            .zipf
                            .as_ref()
                            .expect("zipf model builds a sampler")
                            .sample(&mut self.rng);
                        let from = self.draw_sensor();
                        (o, ServiceOp::Query { from })
                    } else {
                        let o = self.rng.gen_range(0..self.spec.objects);
                        (o, self.next_move(o))
                    }
                }
            }
        };
        let obj_seq = self.obj_seq[object];
        self.obj_seq[object] += 1;
        self.emitted += 1;
        Some(OpEnvelope {
            id,
            object: ObjectId(object as u32),
            obj_seq,
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;

    fn collect(spec: StreamSpec) -> (Vec<OpEnvelope>, Vec<Option<NodeId>>) {
        let g = generators::grid(6, 6).unwrap();
        let mut s = OpStream::new(&g, spec);
        let mut ops = Vec::new();
        while let Some(e) = s.next_op() {
            ops.push(e);
        }
        (ops, s.positions().to_vec())
    }

    #[test]
    fn same_spec_generates_the_same_stream() {
        let spec = StreamSpec::new(7, 300, 42);
        let (a, pa) = collect(spec);
        let (b, pb) = collect(spec);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
        assert_eq!(a.len(), 300);
    }

    #[test]
    fn publish_prefix_then_adjacent_moves_and_ground_truth_replay() {
        let g = generators::grid(6, 6).unwrap();
        let spec = StreamSpec::new(5, 200, 9);
        let mut s = OpStream::new(&g, spec);
        let mut replay: Vec<Option<NodeId>> = vec![None; 5];
        let mut expected_id = 0u64;
        let mut seqs = [0u32; 5];
        while let Some(e) = s.next_op() {
            assert_eq!(e.id, OpId(expected_id), "ids are dense");
            expected_id += 1;
            assert_eq!(e.obj_seq, seqs[e.object.index()], "per-object order");
            seqs[e.object.index()] += 1;
            match e.op {
                ServiceOp::Publish { at } => {
                    assert!(expected_id <= 5, "publishes form the prefix");
                    replay[e.object.index()] = Some(at);
                }
                ServiceOp::Move { to } => {
                    let cur = replay[e.object.index()].expect("move after publish");
                    assert!(
                        g.neighbors(cur).iter().any(|edge| edge.to == to),
                        "moves hop one adjacency"
                    );
                    replay[e.object.index()] = Some(to);
                }
                ServiceOp::Query { .. } => {}
                ServiceOp::Topology { .. } => unreachable!("static spec emits no topology ops"),
            }
        }
        assert_eq!(replay, s.positions(), "generator tracks its own truth");
        assert!(replay.iter().all(Option::is_some));
    }

    #[test]
    fn query_fraction_bounds_are_respected() {
        let (ops, _) = collect(StreamSpec {
            query_fraction: 0.0,
            ..StreamSpec::new(3, 100, 1)
        });
        assert!(
            !ops.iter().any(|e| matches!(e.op, ServiceOp::Query { .. })),
            "zero fraction means no queries"
        );
        let (ops, _) = collect(StreamSpec {
            query_fraction: 1.0,
            ..StreamSpec::new(3, 100, 1)
        });
        let queries = ops
            .iter()
            .filter(|e| matches!(e.op, ServiceOp::Query { .. }))
            .count();
        assert_eq!(queries, 97, "everything after the publish prefix");
    }

    #[test]
    fn churn_stream_interleaves_topology_ops_and_steers_data_ops() {
        let g = generators::grid(6, 6).unwrap();
        let spec = StreamSpec {
            churn_every: 25,
            ..StreamSpec::new(4, 200, 5)
        };
        let mut s = OpStream::new(&g, spec);
        let removable: Vec<NodeId> = s.churn_schedule().unwrap().removable().to_vec();
        assert!(!removable.is_empty());
        let mut topo = Vec::new();
        let mut steered = 0u64;
        while let Some(e) = s.next_op() {
            match e.op {
                ServiceOp::Topology { delta } => {
                    assert_eq!(e.object, ObjectId(u32::MAX), "sentinel control object");
                    assert_eq!(e.obj_seq, 0);
                    topo.push(delta);
                }
                ServiceOp::Publish { at } | ServiceOp::Query { from: at } => {
                    assert!(
                        removable.binary_search(&at).is_err(),
                        "publish/query sensors avoid the removable pool"
                    );
                    steered += 1;
                }
                ServiceOp::Move { .. } => {}
            }
        }
        assert_eq!(s.emitted(), 200);
        assert!(steered > 0);
        // Deltas arrive in order and index into the schedule.
        assert!(!topo.is_empty());
        assert!(topo.windows(2).all(|w| w[1] == w[0] + 1));
        assert!((*topo.last().unwrap() as usize) < s.churn_schedule().unwrap().len());
    }

    #[test]
    fn scenario_streams_stay_adjacent_and_deterministic() {
        for mobility in [
            MobilityModel::Waypoint,
            MobilityModel::Commuter,
            MobilityModel::levy(1.6),
            MobilityModel::hotspot(3, 0.8),
            MobilityModel::ping_pong(NodeId(14), NodeId(15)),
        ] {
            let spec = StreamSpec::new(4, 250, 8).with_mobility(mobility);
            let run = || {
                let g = generators::grid(6, 6).unwrap();
                let mut s = OpStream::new(&g, spec);
                let mut ops = Vec::new();
                let mut replay: Vec<Option<NodeId>> = vec![None; 4];
                while let Some(e) = s.next_op() {
                    match e.op {
                        ServiceOp::Publish { at } => replay[e.object.index()] = Some(at),
                        ServiceOp::Move { to } => {
                            let cur = replay[e.object.index()].expect("move after publish");
                            assert!(
                                g.neighbors(cur).iter().any(|edge| edge.to == to),
                                "{mobility:?}: move {cur} -> {to} not an adjacency"
                            );
                            replay[e.object.index()] = Some(to);
                        }
                        _ => {}
                    }
                    ops.push(e);
                }
                assert_eq!(replay, s.positions(), "{mobility:?}: ground truth diverged");
                ops
            };
            assert_eq!(run(), run(), "{mobility:?}: stream not deterministic");
        }
    }

    #[test]
    fn zipf_queries_concentrate_on_low_object_ids() {
        let g = generators::grid(6, 6).unwrap();
        let spec = StreamSpec {
            query_fraction: 0.5,
            ..StreamSpec::new(10, 2_000, 17)
        }
        .with_query_model(QueryModel::zipf(1.5));
        let mut s = OpStream::new(&g, spec);
        let mut query_hits = [0usize; 10];
        let mut move_hits = [0usize; 10];
        while let Some(e) = s.next_op() {
            match e.op {
                ServiceOp::Query { .. } => query_hits[e.object.index()] += 1,
                ServiceOp::Move { .. } => move_hits[e.object.index()] += 1,
                _ => {}
            }
        }
        let queries: usize = query_hits.iter().sum();
        assert!(
            query_hits[0] * 3 > queries,
            "rank 0 drew {}/{queries} queries — not skewed",
            query_hits[0]
        );
        // Moves stay uniform: skew applies to query popularity only.
        let moves: usize = move_hits.iter().sum();
        assert!(
            move_hits.iter().all(|&m| m * 20 > moves),
            "move coverage collapsed: {move_hits:?}"
        );
    }

    #[test]
    #[should_panic(expected = "churn streams require random-walk mobility")]
    fn churn_rejects_path_movers() {
        let g = generators::grid(6, 6).unwrap();
        let spec = StreamSpec {
            churn_every: 20,
            ..StreamSpec::new(4, 100, 3)
        }
        .with_mobility(MobilityModel::Waypoint);
        let _ = OpStream::new(&g, spec);
    }

    #[test]
    fn churn_stream_is_deterministic() {
        let g = generators::grid(6, 6).unwrap();
        let spec = StreamSpec {
            query_fraction: 0.3,
            churn_every: 20,
            ..StreamSpec::new(4, 150, 11)
        };
        let run = || {
            let mut s = OpStream::new(&g, spec);
            let mut ops = Vec::new();
            while let Some(e) = s.next_op() {
                ops.push(e);
            }
            (ops, s.positions().to_vec())
        };
        assert_eq!(run(), run());
    }
}
