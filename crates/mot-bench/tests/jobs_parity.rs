//! The determinism contract of the fan-out engine (DESIGN.md §12):
//! every figure table, CSV file, and metrics report must be
//! byte-identical whatever `--jobs` says. Cells derive their randomness
//! from their own (figure, size, algo, seed) key and merge in canonical
//! cell order, so worker count and scheduling can only change
//! wall-clock time — these tests fail on the first byte that differs.

use mot_bench::{
    churn_table, faults_table, locality_table, maintenance_figure, mobility_table, query_figure,
    FigureTable, Profile,
};
use mot_sim::{CellKey, Keyed, ParallelRunner, SimError};

/// A small but non-trivial profile: 3 grids × 2 seeds × the full
/// algorithm lineup per sweep figure.
fn profile(jobs: usize) -> Profile {
    Profile::quick(8).with_jobs(jobs)
}

fn bytes_of(t: &FigureTable) -> (String, String) {
    (t.to_csv(), t.to_json())
}

#[test]
fn tables_are_byte_identical_for_1_and_4_jobs() {
    let runs: Vec<Vec<(String, String)>> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let p = profile(jobs);
            vec![
                bytes_of(&maintenance_figure(&p, false).expect("maintenance")),
                bytes_of(&query_figure(&p, false).expect("query")),
                bytes_of(&locality_table(&p).expect("locality")),
                bytes_of(&mobility_table(&p).expect("mobility")),
            ]
        })
        .collect();
    for (i, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_eq!(a.0, b.0, "CSV bytes differ for table {i}");
        assert_eq!(a.1, b.1, "JSON bytes differ for table {i}");
    }
}

#[test]
fn churn_experiment_is_byte_identical_for_1_and_4_jobs() {
    // The churn table's cells mutate per-cell hierarchy state; parity
    // proves the repair replay never leans on shared mutable state.
    let a = churn_table(1).expect("churn jobs=1");
    let b = churn_table(4).expect("churn jobs=4");
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn fault_sweep_is_byte_identical_for_1_and_4_jobs() {
    // The faults table exercises the widest cell fan-out (crashes ×
    // drop × algo × seed) and the most merge accumulation.
    let mut p = profile(1);
    p.moves_per_object = 20;
    p.queries = 40;
    let a = faults_table(&p, (8, 8)).expect("faults jobs=1");
    let b = faults_table(&p.clone().with_jobs(4), (8, 8)).expect("faults jobs=4");
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

/// End-to-end parity through the `experiments` binary: identical CSV
/// files and identical `--metrics` JSON (after dropping the wall-clock
/// `timings_secs` span, the one intentionally non-deterministic field).
#[test]
fn binary_output_is_byte_identical_across_jobs() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let tmp = std::env::temp_dir().join(format!("jobs-parity-{}", std::process::id()));
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let dir = tmp.join(format!("j{jobs}"));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let csv = dir.join("csv");
        let metrics = dir.join("metrics.json");
        let status = std::process::Command::new(exe)
            .args([
                "--profile",
                "quick",
                "--jobs",
                jobs,
                "--csv",
                csv.to_str().unwrap(),
                "--metrics",
                metrics.to_str().unwrap(),
                "fig4",
                "fig6",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run experiments");
        assert!(status.success(), "experiments --jobs {jobs} failed");
        let fig4 = std::fs::read(csv.join("fig4.csv")).expect("fig4.csv");
        let fig6 = std::fs::read(csv.join("fig6.csv")).expect("fig6.csv");
        let json = std::fs::read_to_string(&metrics).expect("metrics.json");
        outputs.push((fig4, fig6, strip_timings(&json)));
    }
    let _ = std::fs::remove_dir_all(&tmp);
    assert_eq!(outputs[0].0, outputs[1].0, "fig4.csv differs across --jobs");
    assert_eq!(outputs[0].1, outputs[1].1, "fig6.csv differs across --jobs");
    assert_eq!(
        outputs[0].2, outputs[1].2,
        "metrics JSON differs across --jobs (timings stripped)"
    );
}

/// Removes the `"timings_secs":{...}` span — wall-clock measurements,
/// the only part of the report allowed to vary between runs.
fn strip_timings(json: &str) -> String {
    let start = json
        .find("\"timings_secs\":{")
        .expect("report has timings_secs");
    let rest = &json[start..];
    let close = rest.find('}').expect("timings object closes");
    format!("{}{}", &json[..start], &rest[close + 1..])
}

#[test]
fn worker_panic_is_reported_as_the_cell_and_others_complete() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cells: Vec<Keyed<usize>> = (0..9)
        .map(|i| Keyed::new(CellKey::new("poison", 64, "MOT", i as u64), i))
        .collect();
    let completed = AtomicUsize::new(0);
    let err = ParallelRunner::new(4)
        .run(&cells, |cell| -> Result<usize, SimError> {
            if cell.data == 5 {
                panic!("poisoned cell");
            }
            completed.fetch_add(1, Ordering::SeqCst);
            Ok(cell.data)
        })
        .expect_err("poisoned cell must fail the run");
    match err {
        SimError::Cell { key, cause } => {
            assert_eq!(key.seed, 5, "wrong cell blamed: {key}");
            assert!(cause.contains("poisoned cell"), "cause lost: {cause}");
        }
        other => panic!("expected SimError::Cell, got {other}"),
    }
    // The panic poisons one cell, not the pool: every other cell ran.
    assert_eq!(completed.load(Ordering::SeqCst), 8);
}
