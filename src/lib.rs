//! # mot-tracking
//!
//! A from-scratch Rust reproduction of *"Near-Optimal Location Tracking
//! Using Sensor Networks"* (Sharma, Krishnan, Busch, Brandt; IPPS 2014 /
//! IJNC 2015): the MOT distributed tracking algorithm, every substrate it
//! depends on, the traffic-conscious baselines it is evaluated against,
//! and a benchmark harness regenerating every figure of the paper's
//! evaluation.
//!
//! This facade crate re-exports the workspace members and offers a
//! [`prelude`] for examples and downstream users:
//!
//! ```
//! use mot_tracking::prelude::*;
//!
//! // A 8x8 sensor grid with its distance oracle and overlay hierarchy.
//! let bed = TestBed::grid(8, 8, 42).unwrap();
//! let mut tracker = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
//!
//! // An object appears at sensor 0, wanders, and is queried.
//! tracker.publish(ObjectId(0), NodeId(0)).unwrap();
//! tracker.move_object(ObjectId(0), NodeId(1)).unwrap();
//! let found = tracker.query(NodeId(63), ObjectId(0)).unwrap();
//! assert_eq!(found.proxy, NodeId(1));
//! ```
//!
//! Crate map:
//!
//! * [`net`] (`mot-net`) — weighted sensor graphs, generators, shortest
//!   paths, the all-pairs distance oracle;
//! * [`hierarchy`] (`mot-hierarchy`) — the overlay `HS`: Luby-MIS
//!   coarsening (constant-doubling model) and sparse partitions (general
//!   model);
//! * [`debruijn`] (`mot-debruijn`) — de Bruijn graphs embedded in
//!   clusters for load-balanced routing;
//! * [`core`] (`mot-core`) — MOT itself: publish / maintenance / query
//!   over detection lists and special detection lists, plus §5 load
//!   balancing and §7 dynamics;
//! * [`baselines`] (`mot-baselines`) — STUN (DAB), DAT, Z-DAT,
//!   Z-DAT+shortcuts;
//! * [`proto`] (`mot-proto`) — the message-passing rendering of MOT:
//!   per-node state machines exchanging typed messages, differentially
//!   tested to be cost- and state-identical with the direct
//!   implementation;
//! * [`sim`] (`mot-sim`) — workloads, one-by-one and concurrent
//!   executors, metrics, test beds.

pub use mot_baselines as baselines;
pub use mot_core as core;
pub use mot_debruijn as debruijn;
pub use mot_hierarchy as hierarchy;
pub use mot_net as net;
pub use mot_proto as proto;
pub use mot_sim as sim;

/// Everything a typical user or example needs in scope.
pub mod prelude {
    pub use mot_baselines::{
        build_dat, build_stun, build_zdat, DetectionRates, TrackingTree, TreeTracker, ZdatParams,
    };
    pub use mot_core::{
        CoreError, MotConfig, MotTracker, MoveOutcome, ObjectId, QueryResult, Tracker,
    };
    pub use mot_debruijn::{DeBruijnGraph, DynamicCluster, Embedding};
    pub use mot_hierarchy::{build_doubling, build_general, Overlay, OverlayConfig};
    pub use mot_net::{
        dijkstra, generators, DenseOracle, DistanceOracle, Graph, GraphBuilder, HybridOracle,
        LazyOracle, NodeId, OracleKind, Point,
    };
    pub use mot_proto::ProtoTracker;
    pub use mot_sim::{
        replay_moves, run_publish, run_queries, Algo, ConcurrentConfig, ConcurrentEngine,
        CostStats, LoadStats, MobilityModel, SimError, TestBed, Workload, WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart_flow() {
        let bed = TestBed::grid(4, 4, 1).unwrap();
        let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
        t.publish(ObjectId(0), NodeId(0)).unwrap();
        let q = t.query(NodeId(15), ObjectId(0)).unwrap();
        assert_eq!(q.proxy, NodeId(0));
    }
}
