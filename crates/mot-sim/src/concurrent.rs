//! Concurrent execution engine (paper §4.1.2, §4.2.2, §8).
//!
//! A discrete-event simulation in which message latency equals message
//! distance (one time unit per distance unit). Maintenance operations for
//! one object race: up to `max_inflight_per_object` requests climb their
//! detection paths simultaneously, each probing the *committed* tracking
//! state as it goes; an operation commits the moment its probe finds a
//! node that currently knows the object. Operations crossing into level
//! `i` wait for the end of the current level-`i` period `Φ(i) ∝ 2^i`
//! (the synchronization discipline of §4.1.2). Racing requests that lose
//! a meet point to an earlier commit climb higher and pay more — exactly
//! the concurrency overhead Figs. 12–15 measure.
//!
//! Queries may overlap maintenance (§4.2.2): a query locates the object
//! against the committed state, descends, and — if the object moved while
//! the result message was in flight — chases the forwarding pointer the
//! delete message left behind, until it lands on the live proxy.

use crate::metrics::CostStats;
use crate::mobility::Workload;
use mot_baselines::TreeTracker;
use mot_core::{MotTracker, ObjectId, Result, Tracker};
use mot_net::{DistanceOracle, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A tracking structure the event engine can drive: a climb order, a
/// committed-state probe, a locate probe for queries, and the forwarding
/// period per level.
pub trait ClimbStructure: Tracker {
    /// The visiting sequence of a maintenance/query climb from `v`:
    /// `(station node, level)` pairs in order, ending at the root.
    fn climb_sequence(&self, v: NodeId) -> Vec<(NodeId, usize)>;

    /// Whether `node` holds `o` at role `level` in the committed state.
    fn committed_holds(&self, node: NodeId, level: usize, o: ObjectId) -> bool;

    /// If a query probing `(node, level)` can locate `o`, the cost of its
    /// downward phase against the committed state.
    fn locate(&self, node: NodeId, level: usize, o: ObjectId) -> Option<f64>;

    /// Forwarding period `Φ(level)`; 0 disables period synchronization
    /// (tree baselines forward immediately).
    fn level_period(&self, level: usize) -> f64;
}

impl ClimbStructure for MotTracker<'_> {
    fn climb_sequence(&self, v: NodeId) -> Vec<(NodeId, usize)> {
        let overlay = self.overlay();
        (0..=overlay.height())
            .flat_map(|l| overlay.station(v, l).iter().map(move |&s| (s, l)))
            .collect()
    }

    fn committed_holds(&self, node: NodeId, level: usize, o: ObjectId) -> bool {
        self.holds(node, level, o)
    }

    fn locate(&self, node: NodeId, level: usize, o: ObjectId) -> Option<f64> {
        self.locate_cost(node, level, o)
    }

    fn level_period(&self, level: usize) -> f64 {
        (1u64 << level) as f64
    }
}

impl ClimbStructure for TreeTracker<'_> {
    fn climb_sequence(&self, v: NodeId) -> Vec<(NodeId, usize)> {
        let mut seq = Vec::new();
        let mut cur = Some(v);
        let mut level = 0usize;
        while let Some(u) = cur {
            seq.push((u, level));
            cur = self.tree().parent(u);
            level += 1;
        }
        seq
    }

    fn committed_holds(&self, node: NodeId, _level: usize, o: ObjectId) -> bool {
        self.holds(node, o)
    }

    fn locate(&self, node: NodeId, _level: usize, o: ObjectId) -> Option<f64> {
        if self.queries_via_root() && node != self.tree().root() {
            // STUN routes queries to the sink; intermediate ancestors
            // never answer.
            return None;
        }
        if self.holds(node, o) {
            self.descend_cost(o, node)
        } else {
            None
        }
    }

    fn level_period(&self, _level: usize) -> f64 {
        0.0
    }
}

/// Engine parameters.
#[derive(Clone, Debug)]
pub struct ConcurrentConfig {
    /// Maximum simultaneously in-flight maintenance operations per object
    /// (the paper's experiments fix this at 10).
    pub max_inflight_per_object: usize,
    /// Queries injected per batch, racing the batch's maintenance
    /// operations (0 reproduces the maintenance-only figures).
    pub queries_per_batch: usize,
    /// Seed for query placement.
    pub seed: u64,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            max_inflight_per_object: 10,
            queries_per_batch: 0,
            seed: 0,
        }
    }
}

/// Aggregate results of a concurrent run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConcurrentOutcome {
    /// Effective maintenance traffic vs the optimal `C*(E)`.
    pub maintenance: CostStats,
    /// Query traffic vs each query's optimal distance at issue time.
    pub queries: CostStats,
    /// Queries the engine issued while maintenance was in flight.
    pub queries_issued: usize,
    /// Queries that located the true proxy despite racing moves.
    pub queries_correct: usize,
}

enum Task {
    /// A maintenance request heading to `to`, currently probing
    /// `path[pos]`. `optimal` is the operation's share of `C*(E)` — the
    /// distance the object physically moved for this trace step (the
    /// paper's optimal is defined on the operation *set*, independent of
    /// the realized commit order).
    Move { to: NodeId, optimal: f64 },
    /// A query from `from`, climbing; after locating it verifies/chases.
    QueryClimb { from: NodeId },
    /// A query result in flight toward `expected` proxy; on arrival the
    /// proxy may have moved again.
    QueryChase {
        from: NodeId,
        expected: NodeId,
        cost_so_far: f64,
    },
}

struct Op {
    task: Task,
    path: Vec<(NodeId, usize)>,
    pos: usize,
}

struct Event {
    time: f64,
    op: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.op == other.op
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by (time, op id)
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.op.cmp(&self.op))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event concurrent executor.
///
/// # Example
///
/// Replay a workload with up to 10 racing requests per object; the
/// concurrency overhead shows up as a maintenance ratio at or above
/// the one-by-one replay's (Figs. 12–15):
///
/// ```
/// use mot_sim::{run_publish, Algo, ConcurrentConfig, ConcurrentEngine, TestBed, WorkloadSpec};
/// use mot_baselines::DetectionRates;
///
/// let bed = TestBed::grid(4, 4, 1)?;
/// let w = WorkloadSpec::new(2, 20, 3).generate(&bed.graph);
/// let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
/// let mut t = bed.make_tracker(Algo::Mot, &rates)?;
/// run_publish(t.as_mut(), &w)?;
/// let out = ConcurrentEngine::run(
///     t.as_mut(),
///     &w,
///     &bed.oracle,
///     &ConcurrentConfig { queries_per_batch: 1, ..ConcurrentConfig::default() },
/// )?;
/// assert!(out.maintenance.ratio() >= 1.0);
/// assert_eq!(out.queries_correct, out.queries_issued);
/// # Ok::<(), mot_sim::SimError>(())
/// ```
pub struct ConcurrentEngine;

impl ConcurrentEngine {
    /// Runs `workload` concurrently: each object's moves are cut into
    /// batches of `max_inflight_per_object` simultaneous requests
    /// (batches for one object run in trace order; objects never
    /// interact, so batch order across objects is immaterial). Optional
    /// queries race each batch.
    pub fn run<S: ClimbStructure + ?Sized>(
        tracker: &mut S,
        workload: &Workload,
        oracle: &dyn DistanceOracle,
        cfg: &ConcurrentConfig,
    ) -> Result<ConcurrentOutcome> {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut outcome = ConcurrentOutcome::default();
        let k = cfg.max_inflight_per_object.max(1);

        // Group moves per object, keeping trace order.
        let mut per_object: Vec<Vec<crate::mobility::MoveOp>> =
            vec![Vec::new(); workload.object_count()];
        for m in &workload.moves {
            per_object[m.object.index()].push(*m);
        }

        for (oi, destinations) in per_object.iter().enumerate() {
            let object = ObjectId(oi as u32);
            for batch in destinations.chunks(k) {
                Self::run_batch(tracker, object, batch, oracle, cfg, &mut rng, &mut outcome)?;
            }
        }
        Ok(outcome)
    }

    fn run_batch<S: ClimbStructure + ?Sized>(
        tracker: &mut S,
        object: ObjectId,
        destinations: &[crate::mobility::MoveOp],
        oracle: &dyn DistanceOracle,
        cfg: &ConcurrentConfig,
        rng: &mut ChaCha8Rng,
        outcome: &mut ConcurrentOutcome,
    ) -> Result<()> {
        // One op per move plus the query batch: reserving up front keeps
        // the event loop free of heap regrowth.
        let capacity = destinations.len() + cfg.queries_per_batch;
        let mut ops: Vec<Op> = Vec::with_capacity(capacity);
        let mut heap = BinaryHeap::with_capacity(capacity);
        for mv in destinations {
            let path = tracker.climb_sequence(mv.to);
            heap.push(Event {
                time: 0.0,
                op: ops.len(),
            });
            ops.push(Op {
                task: Task::Move {
                    to: mv.to,
                    optimal: oracle.dist(mv.from, mv.to),
                },
                path,
                pos: 0,
            });
        }
        let n = oracle.node_count();
        for _ in 0..cfg.queries_per_batch {
            let from = NodeId::from_index(rng.gen_range(0..n));
            // Queries start staggered through the batch's early phase so
            // some overlap the racing maintenance mid-flight.
            let start = rng.gen_range(0.0..oracle.diameter().max(1.0));
            let path = tracker.climb_sequence(from);
            heap.push(Event {
                time: start,
                op: ops.len(),
            });
            ops.push(Op {
                task: Task::QueryClimb { from },
                path,
                pos: 0,
            });
            outcome.queries_issued += 1;
        }

        while let Some(Event { time, op: op_idx }) = heap.pop() {
            let (node, level) = ops[op_idx].path[ops[op_idx].pos];
            match ops[op_idx].task {
                Task::Move { to, optimal } => {
                    if tracker.committed_holds(node, level, object) {
                        // The request found the object's information: the
                        // update commits against the committed state. The
                        // request may have climbed past levels that were
                        // empty when it probed them but have been
                        // re-populated by a racing commit since —
                        // `move_object`'s fresh climb stops at the first
                        // holder *now*, so bill the difference between
                        // the distance this op actually traveled and the
                        // fresh climb (the wasted racing distance).
                        let travelled = Self::climb_cost(&ops[op_idx], oracle);
                        let fresh = Self::fresh_climb_cost(tracker, &ops[op_idx], object, oracle);
                        let mv = tracker.move_object(object, to)?;
                        let waste = (travelled - fresh).max(0.0);
                        outcome.maintenance.record(mv.cost + waste, optimal);
                    } else {
                        Self::advance(tracker, &mut ops, op_idx, time, oracle, &mut heap);
                    }
                }
                Task::QueryClimb { from } => {
                    if let Some(descend) = tracker.locate(node, level, object) {
                        let climbed = Self::climb_cost(&ops[op_idx], oracle);
                        let expected = tracker.proxy_of(object).expect("object is published");
                        let cost_so_far = climbed + descend;
                        ops[op_idx].task = Task::QueryChase {
                            from,
                            expected,
                            cost_so_far,
                        };
                        heap.push(Event {
                            time: time + descend,
                            op: op_idx,
                        });
                    } else {
                        Self::advance(tracker, &mut ops, op_idx, time, oracle, &mut heap);
                    }
                }
                Task::QueryChase {
                    from,
                    expected,
                    cost_so_far,
                } => {
                    let live = tracker.proxy_of(object).expect("object is published");
                    if live == expected {
                        // Query settled on the true proxy.
                        outcome.queries_correct += 1;
                        let optimal = oracle.dist(from, live);
                        if optimal > 0.0 {
                            outcome.queries.record(cost_so_far, optimal);
                        }
                    } else {
                        // The object moved while the result was in
                        // flight: the stale proxy forwards the query
                        // along the location carried by the delete.
                        let hop = oracle.dist(expected, live);
                        ops[op_idx].task = Task::QueryChase {
                            from,
                            expected: live,
                            cost_so_far: cost_so_far + hop,
                        };
                        heap.push(Event {
                            time: time + hop.max(1e-9),
                            op: op_idx,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Distance already travelled along an op's climb path up to its
    /// current position.
    fn climb_cost(op: &Op, oracle: &dyn DistanceOracle) -> f64 {
        op.path[..=op.pos]
            .windows(2)
            .map(|w| oracle.dist(w[0].0, w[1].0))
            .sum()
    }

    /// Distance a climb along `op.path` would travel against the current
    /// committed state (stopping at the first holder) — what
    /// `move_object` is about to recompute and charge internally.
    fn fresh_climb_cost<S: ClimbStructure + ?Sized>(
        tracker: &S,
        op: &Op,
        object: ObjectId,
        oracle: &dyn DistanceOracle,
    ) -> f64 {
        let mut cost = 0.0;
        for w in op.path.windows(2) {
            let (node, level) = w[0];
            if tracker.committed_holds(node, level, object) {
                break;
            }
            cost += oracle.dist(node, w[1].0);
        }
        cost
    }

    /// Schedules the next probe of a climbing op: travel time plus the
    /// period barrier when crossing into a higher level.
    fn advance<S: ClimbStructure + ?Sized>(
        tracker: &S,
        ops: &mut [Op],
        op_idx: usize,
        now: f64,
        oracle: &dyn DistanceOracle,
        heap: &mut BinaryHeap<Event>,
    ) {
        let op = &mut ops[op_idx];
        debug_assert!(
            op.pos + 1 < op.path.len(),
            "climb ran past the root without meeting the object"
        );
        let (cur, cur_level) = op.path[op.pos];
        op.pos += 1;
        let (next, next_level) = op.path[op.pos];
        let mut t = now + oracle.dist(cur, next).max(1e-9);
        if next_level > cur_level {
            let phi = tracker.level_period(next_level);
            if phi > 0.0 {
                t = (t / phi).ceil() * phi;
            }
        }
        heap.push(Event {
            time: t,
            op: op_idx,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WorkloadSpec;
    use crate::run::run_publish;
    use mot_baselines::{build_stun, DetectionRates, TrackingTree, TreeTracker};
    use mot_core::{MotConfig, MotTracker};
    use mot_hierarchy::{build_doubling, OverlayConfig};
    use mot_net::generators;
    use mot_net::DenseOracle;

    fn grid_env() -> (mot_net::Graph, DenseOracle, mot_hierarchy::Overlay) {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 5);
        (g, m, o)
    }

    #[test]
    fn concurrent_moves_commit_every_operation() {
        let (g, m, overlay) = grid_env();
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        let w = WorkloadSpec::new(3, 50, 2).generate(&g);
        run_publish(&mut t, &w).unwrap();
        let out = ConcurrentEngine::run(
            &mut t,
            &w,
            &m,
            &ConcurrentConfig {
                max_inflight_per_object: 10,
                queries_per_batch: 0,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(out.maintenance.operations, 150);
        assert!(out.maintenance.ratio() >= 1.0);
        t.check_invariants();
        // the final proxy of each object is one of its trace destinations
        for (oi, _) in w.initial.iter().enumerate() {
            let o = ObjectId(oi as u32);
            let p = t.proxy_of(o).unwrap();
            let dests: Vec<NodeId> = w
                .moves
                .iter()
                .filter(|mv| mv.object == o)
                .map(|mv| mv.to)
                .collect();
            assert!(dests.contains(&p) || w.initial[oi] == p);
        }
    }

    #[test]
    fn inflight_one_matches_one_by_one_costs() {
        // With a single in-flight op per object the engine degenerates to
        // one-by-one execution: identical total maintenance cost.
        let (g, m, overlay) = grid_env();
        let w = WorkloadSpec::new(2, 40, 8).generate(&g);

        let mut seq = MotTracker::new(&overlay, &m, MotConfig::plain());
        run_publish(&mut seq, &w).unwrap();
        let seq_stats = crate::run::replay_moves(&mut seq, &w, &m).unwrap();

        let mut con = MotTracker::new(&overlay, &m, MotConfig::plain());
        run_publish(&mut con, &w).unwrap();
        let out = ConcurrentEngine::run(
            &mut con,
            &w,
            &m,
            &ConcurrentConfig {
                max_inflight_per_object: 1,
                queries_per_batch: 0,
                seed: 1,
            },
        )
        .unwrap();
        assert!(
            (out.maintenance.total - seq_stats.total).abs() < 1e-6,
            "k=1 concurrent {} != sequential {}",
            out.maintenance.total,
            seq_stats.total
        );
        assert!((out.maintenance.optimal - seq_stats.optimal).abs() < 1e-6);
    }

    #[test]
    fn overlapping_queries_always_settle_on_the_live_proxy() {
        let (g, m, overlay) = grid_env();
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        let w = WorkloadSpec::new(2, 60, 3).generate(&g);
        run_publish(&mut t, &w).unwrap();
        let out = ConcurrentEngine::run(
            &mut t,
            &w,
            &m,
            &ConcurrentConfig {
                max_inflight_per_object: 10,
                queries_per_batch: 4,
                seed: 7,
            },
        )
        .unwrap();
        assert!(out.queries_issued > 0);
        assert_eq!(out.queries_correct, out.queries_issued);
        assert!(out.queries.ratio() >= 1.0);
    }

    #[test]
    fn tree_trackers_run_concurrently_too() {
        let g = generators::grid(5, 5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let w = WorkloadSpec::new(2, 30, 4).generate(&g);
        let rates = DetectionRates::from_moves(&g, &w.move_pairs());
        let tree: TrackingTree = build_stun(&g, &rates);
        let mut t = TreeTracker::new("STUN", tree, &m, false);
        run_publish(&mut t, &w).unwrap();
        let out = ConcurrentEngine::run(
            &mut t,
            &w,
            &m,
            &ConcurrentConfig {
                max_inflight_per_object: 5,
                queries_per_batch: 2,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(out.maintenance.operations, 60);
        assert_eq!(out.queries_correct, out.queries_issued);
    }

    #[test]
    fn concurrency_does_not_undershoot_sequential_ratio_much() {
        // Racing requests can only climb at least as far as the
        // sequential execution for the same committed meets; the ratio
        // should be in the same ballpark or above.
        let (g, m, overlay) = grid_env();
        let w = WorkloadSpec::new(4, 80, 12).generate(&g);

        let mut seq = MotTracker::new(&overlay, &m, MotConfig::plain());
        run_publish(&mut seq, &w).unwrap();
        let s = crate::run::replay_moves(&mut seq, &w, &m).unwrap();

        let mut con = MotTracker::new(&overlay, &m, MotConfig::plain());
        run_publish(&mut con, &w).unwrap();
        let c = ConcurrentEngine::run(&mut con, &w, &m, &ConcurrentConfig::default()).unwrap();
        assert!(
            c.maintenance.ratio() > 0.3 * s.ratio(),
            "concurrent ratio {} collapsed vs sequential {}",
            c.maintenance.ratio(),
            s.ratio()
        );
    }
}
