//! Dynamic networks: sensors failing and rejoining under tracking (§7).
//!
//! ```text
//! cargo run --release --example dynamic_network
//! ```
//!
//! Batteries die, nodes get replaced. §7's protocol keeps the overlay's
//! clusters usable by handing leadership off, relabelling the embedded de
//! Bruijn graphs (`O(1)` amortized updates per event), and recommending a
//! rebuild once a cluster drifts too far. This example runs a year of
//! simulated churn and reports the adaptability statistics.

use mot_core::dynamics::ChurnSimulator;
use mot_tracking::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let bed = TestBed::grid(16, 16, 23).unwrap();
    println!(
        "deployment: {} sensors; overlay has {} levels",
        bed.graph.node_count(),
        bed.overlay.height() + 1
    );

    let mut sim = ChurnSimulator::new(&bed.overlay, &bed.oracle, 3.0);
    println!("simulating {} clusters under churn\n", sim.cluster_count());

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = bed.graph.node_count();
    let mut offline: Vec<NodeId> = Vec::new();
    let mut alive = vec![true; n];
    let (mut failures, mut replacements, mut handoffs, mut updates) = (0u32, 0u32, 0u32, 0usize);
    for _day in 0..365 {
        // a battery dies...
        let candidates: Vec<NodeId> = bed.graph.nodes().filter(|u| alive[u.index()]).collect();
        if candidates.len() > n / 2 {
            let victim = candidates[rng.gen_range(0..candidates.len())];
            let report = sim.node_leaves(victim);
            alive[victim.index()] = false;
            offline.push(victim);
            failures += 1;
            handoffs += report.leader_changes as u32;
            updates += report.nodes_updated;
        }
        // ...and sometimes a technician replaces one
        if !offline.is_empty() && rng.gen_bool(0.8) {
            let back = offline.swap_remove(rng.gen_range(0..offline.len()));
            let report = sim.node_joins(back);
            alive[back.index()] = true;
            replacements += 1;
            updates += report.nodes_updated;
        }
    }

    println!("events: {failures} failures, {replacements} replacements");
    println!("leadership handoffs: {handoffs}");
    println!("total member updates: {updates}");
    println!(
        "amortized adaptability: {:.2} updates per cluster event (§7: O(1))",
        sim.amortized_adaptability()
    );
    println!(
        "rebuilds recommended by the drift threshold: {}",
        sim.rebuilds_recommended
    );
    assert!(sim.amortized_adaptability() < 8.0);
}
