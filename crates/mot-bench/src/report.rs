//! Plain-text / CSV rendering of experiment tables.

/// One regenerated figure: a labelled series per algorithm over an x axis
/// (network size, usually).
#[derive(Clone, Debug)]
pub struct FigureTable {
    pub title: String,
    /// x-axis label (e.g. "nodes").
    pub x_label: String,
    /// Series names (e.g. algorithm labels).
    pub columns: Vec<String>,
    /// Rows: x value + one y value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(x, _)| x.len())
                .chain([self.x_label.len()])
                .max()
                .unwrap_or(4),
        );
        for (i, c) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, ys)| format!("{:.3}", ys[i]).len())
                .chain([c.len()])
                .max()
                .unwrap_or(6);
            widths.push(w);
        }
        out.push_str(&format!("{:>w$}", self.x_label, w = widths[0]));
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", c, w = widths[i + 1]));
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            out.push_str(&format!("{:>w$}", x, w = widths[0]));
            for (i, y) in ys.iter().enumerate() {
                out.push_str(&format!("  {:>w$.3}", y, w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            out.push_str(x);
            for y in ys {
                out.push_str(&format!(",{y:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// The series values of a named column (testing aid).
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, ys)| ys[idx]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        FigureTable {
            title: "t".into(),
            x_label: "nodes".into(),
            columns: vec!["MOT".into(), "STUN".into()],
            rows: vec![
                ("9".into(), vec![1.5, 4.0]),
                ("1024".into(), vec![2.25, 30.125]),
            ],
        }
    }

    #[test]
    fn render_contains_all_cells() {
        let r = sample().render();
        assert!(r.contains("MOT"));
        assert!(r.contains("STUN"));
        assert!(r.contains("1024"));
        assert!(r.contains("30.125"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "nodes,MOT,STUN");
        assert!(lines[2].starts_with("1024,"));
    }

    #[test]
    fn column_lookup() {
        let t = sample();
        assert_eq!(t.column("MOT"), Some(vec![1.5, 2.25]));
        assert_eq!(t.column("nope"), None);
    }
}
