//! Overlay construction for constant-doubling networks (§2.2).
//!
//! Level 0 contains every sensor. Level `ℓ+1` is a maximal independent set
//! of the connectivity graph `I_ℓ = (V_ℓ, E_ℓ)` where `E_ℓ` joins level-ℓ
//! members closer than `2^{ℓ+1}`; consequently level-(ℓ+1) members are
//! pairwise `≥ 2^{ℓ+1}` apart and every level-ℓ member lies within
//! `2^{ℓ+1}` of one (its *default parent*). Construction ends when a level
//! holds a single member — the root. `h ≤ ⌈log D⌉ + 1` levels.

use crate::config::OverlayConfig;
use crate::mis::luby_mis;
use crate::overlay::{Overlay, OverlayKind};
use crate::path::DetectionPath;
use mot_net::{DistanceOracle, Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Builds the MIS-coarsened overlay for a (constant-doubling) network.
///
/// `seed` drives Luby's random priorities; identical seeds yield identical
/// overlays.
pub fn build_doubling(
    g: &Graph,
    m: &dyn DistanceOracle,
    cfg: &OverlayConfig,
    seed: u64,
) -> Overlay {
    assert_eq!(
        g.node_count(),
        m.node_count(),
        "graph and oracle disagree on n"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = g.node_count();

    // --- level sets -----------------------------------------------------
    let mut levels: Vec<Vec<NodeId>> = vec![g.nodes().collect()];
    // Hard cap: radii double each level, so ⌈log2 D⌉ + 2 levels always
    // suffice; 64 guards against pathological float behaviour.
    for level in 1..=64usize {
        let prev = &levels[level - 1];
        if prev.len() == 1 {
            break;
        }
        let radius = (1u64 << level) as f64; // edges join nodes with dist < 2^ℓ at stage ℓ-1→ℓ
        let adjacency: Vec<Vec<usize>> = prev
            .iter()
            .map(|&u| {
                prev.iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != u && m.dist(u, v) < radius)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        let mis = luby_mis(prev, &adjacency, &mut rng);
        levels.push(mis);
    }
    // The loop above always terminates with a singleton: once
    // 2^ℓ > diameter the connectivity graph is complete.
    assert_eq!(
        levels.last().map(Vec::len),
        Some(1),
        "doubling construction did not converge to a root (n = {n}, D = {})",
        m.diameter()
    );
    let height = levels.len() - 1;

    // --- default parents (per level: member -> nearest next-level node) --
    let default_parent: Vec<HashMap<NodeId, NodeId>> = (0..height)
        .map(|l| {
            levels[l]
                .iter()
                .map(|&w| {
                    let p = m
                        .nearest_in(w, &levels[l + 1])
                        .expect("non-empty upper level");
                    debug_assert!(
                        m.dist(w, p) < (1u64 << (l + 1)) as f64 + 1e-6,
                        "default parent must lie within 2^(l+1): dist({w},{p}) = {}",
                        m.dist(w, p)
                    );
                    (w, p)
                })
                .collect()
        })
        .collect();

    // --- detection paths -------------------------------------------------
    let paths: Vec<DetectionPath> = g
        .nodes()
        .map(|u| {
            let mut stations = Vec::with_capacity(height + 1);
            stations.push(vec![u]);
            let mut home = u;
            for l in 1..=height {
                let dp = default_parent[l - 1][&home];
                let radius = cfg.parent_set_radius_mult * (1u64 << l) as f64;
                let mut station: Vec<NodeId> = levels[l]
                    .iter()
                    .copied()
                    .filter(|&v| m.dist(home, v) <= radius)
                    .collect();
                if !station.contains(&dp) {
                    station.push(dp);
                }
                station.sort();
                stations.push(station);
                home = dp;
            }
            DetectionPath { stations }
        })
        .collect();

    Overlay::new(OverlayKind::Doubling, levels, paths, cfg.sp_gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;
    use mot_net::DenseOracle;

    fn build(rows: usize, cols: usize, cfg: OverlayConfig) -> (Overlay, DenseOracle) {
        let g = generators::grid(rows, cols).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let o = build_doubling(&g, &m, &cfg, 7);
        (o, m)
    }

    #[test]
    fn single_node_graph_degenerates_gracefully() {
        let g = generators::line(1).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        assert_eq!(o.height(), 0);
        assert_eq!(o.root(), NodeId(0));
        assert_eq!(o.station(NodeId(0), 0), &[NodeId(0)]);
    }

    #[test]
    fn level_counts_shrink_to_root() {
        let (o, m) = build(8, 8, OverlayConfig::practical());
        let h = o.height();
        assert_eq!(o.level_members(h).len(), 1);
        for l in 0..h {
            assert!(
                o.level_members(l).len() >= o.level_members(l + 1).len(),
                "level {l} smaller than level {}",
                l + 1
            );
        }
        // h <= ceil(log2 D) + 1
        let bound = (m.diameter().log2().ceil() as usize) + 1;
        assert!(h <= bound, "h = {h} > {bound}");
    }

    #[test]
    fn levels_are_nested_independent_sets() {
        let (o, m) = build(8, 8, OverlayConfig::practical());
        for l in 1..=o.height() {
            let cur = o.level_members(l);
            let prev: std::collections::HashSet<_> =
                o.level_members(l - 1).iter().copied().collect();
            for &v in cur {
                assert!(
                    prev.contains(&v),
                    "level {l} member {v} missing from level below"
                );
            }
            // pairwise separation >= 2^l
            let sep = (1u64 << l) as f64;
            for (i, &a) in cur.iter().enumerate() {
                for &b in &cur[i + 1..] {
                    assert!(
                        m.dist(a, b) >= sep,
                        "level {l}: dist({a},{b}) = {} < {sep}",
                        m.dist(a, b)
                    );
                }
            }
        }
    }

    #[test]
    fn every_node_covered_by_next_level() {
        let (o, m) = build(12, 12, OverlayConfig::practical());
        for l in 0..o.height() {
            let next = o.level_members(l + 1);
            let cover = (1u64 << (l + 1)) as f64;
            for &w in o.level_members(l) {
                let nearest = m.nearest_in(w, next).unwrap();
                assert!(
                    m.dist(w, nearest) < cover + 1e-6,
                    "level {l} node {w} uncovered at radius {cover}"
                );
            }
        }
    }

    #[test]
    fn stations_start_at_self_and_end_at_root() {
        let (o, _) = build(6, 6, OverlayConfig::practical());
        for u in 0..o.node_count() {
            let u = NodeId::from_index(u);
            assert_eq!(o.station(u, 0), &[u]);
            assert_eq!(o.station(u, o.height()), &[o.root()]);
            for l in 0..=o.height() {
                let s = o.station(u, l);
                assert!(!s.is_empty());
                assert!(s.windows(2).all(|w| w[0] < w[1]), "station not sorted");
            }
        }
    }

    #[test]
    fn singleton_profile_yields_single_parent_stations() {
        let (o, _) = build(8, 8, OverlayConfig::singleton_parents());
        for u in 0..o.node_count() {
            let u = NodeId::from_index(u);
            for l in 0..=o.height() {
                assert_eq!(o.station(u, l).len(), 1, "node {u} level {l}");
            }
        }
    }

    #[test]
    fn observation_1_station_size_bounded() {
        // Obs. 1: at most 2^{3ρ} parents; on a 2-D grid with the paper
        // radius multiplier the packing bound gives a modest constant.
        let (o, _) = build(16, 16, OverlayConfig::paper_exact());
        assert!(
            o.max_station_size() <= 64,
            "station size {} exceeds the 2-D packing bound",
            o.max_station_size()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(8, 8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let a = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let b = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        for l in 0..=a.height() {
            assert_eq!(a.level_members(l), b.level_members(l));
        }
    }

    #[test]
    fn meet_lemma_2_1_with_paper_constants() {
        // Lemma 2.1: DPath(u), DPath(v) meet by level ⌈log dist(u,v)⌉ + 1.
        let (o, m) = build(8, 8, OverlayConfig::paper_exact());
        for u in 0..o.node_count() {
            for v in 0..o.node_count() {
                let (u, v) = (NodeId::from_index(u), NodeId::from_index(v));
                if u == v {
                    continue;
                }
                let d = m.dist(u, v);
                let bound = ((d.log2().ceil() as i64).max(0) as usize + 1).min(o.height());
                assert!(
                    o.meet_level(u, v) <= bound,
                    "meet({u},{v}) = {} > {bound} (d = {d})",
                    o.meet_level(u, v)
                );
            }
        }
    }

    #[test]
    fn path_length_grows_geometrically_lemma_2_2() {
        // Lemma 2.2: length(DPath_j(u)) ≤ c · 2^j for a topology-dependent
        // constant c. Verify the ratio length/2^j is bounded uniformly.
        let (o, m) = build(16, 16, OverlayConfig::practical());
        let mut worst: f64 = 0.0;
        for u in (0..o.node_count()).step_by(7) {
            let u = NodeId::from_index(u);
            for j in 1..=o.height() {
                let len = o.path_length(u, j, &m);
                worst = worst.max(len / (1u64 << j) as f64);
            }
        }
        assert!(worst <= 64.0, "path length ratio {worst} not geometric");
    }
}
