//! Bench for Figures 4 & 5: one-by-one maintenance across algorithms.
//!
//! Prints the quick-profile figure tables once, then times the
//! maintenance replay per algorithm on a fixed grid (the code path the
//! figures exercise; run the `experiments` binary for full-scale cost
//! tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_baselines::DetectionRates;
use mot_bench::{maintenance_figure, Profile};
use mot_sim::{replay_moves, run_publish, Algo, TestBed, WorkloadSpec};

fn bench(c: &mut Criterion) {
    // Regenerate the figure (quick profile) so `cargo bench` output
    // carries the cost-ratio series alongside the timings.
    eprintln!(
        "{}",
        maintenance_figure(&Profile::quick(20), false)
            .expect("figure")
            .render()
    );

    let bed = TestBed::grid(12, 12, 1).unwrap();
    let w = WorkloadSpec::new(10, 100, 2).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());

    let mut group = c.benchmark_group("maintenance_one_by_one_12x12");
    group.sample_size(20);
    for algo in Algo::paper_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    let mut t = bed.make_tracker(algo, &rates).unwrap();
                    run_publish(t.as_mut(), &w).unwrap();
                    replay_moves(t.as_mut(), &w, &bed.oracle).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
