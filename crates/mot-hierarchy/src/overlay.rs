//! The assembled overlay `HS` consumed by the tracking algorithms.

use crate::path::DetectionPath;
use mot_net::{DistanceOracle, NodeId};

/// Which construction produced the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayKind {
    /// MIS coarsening for constant-doubling networks (§2.2).
    Doubling,
    /// Sparse-partition scheme for general networks (§6).
    General,
}

/// The hierarchical overlay `HS = (V_T, E_T)`.
///
/// Exposes exactly what MOT needs: per bottom node the [`DetectionPath`]
/// (stations per level in visiting order), the level membership sets, and
/// the special-parent pairing of Definition 3 extended to parent sets
/// (station index `j` at level `ℓ` pairs with station index
/// `j mod |station(ℓ + gap)|` at level `ℓ + gap`, wrapping as §3 puts it:
/// "start again from the smallest ID node").
#[derive(Clone, Debug)]
pub struct Overlay {
    kind: OverlayKind,
    height: usize,
    levels: Vec<Vec<NodeId>>,
    paths: Vec<DetectionPath>,
    sp_gap: usize,
}

impl Overlay {
    pub(crate) fn new(
        kind: OverlayKind,
        levels: Vec<Vec<NodeId>>,
        paths: Vec<DetectionPath>,
        sp_gap: usize,
    ) -> Self {
        let height = levels.len() - 1;
        debug_assert!(levels.last().map(|top| top.len() == 1).unwrap_or(false));
        debug_assert!(paths.iter().all(|p| p.height() == height));
        Overlay {
            kind,
            height,
            levels,
            paths,
            sp_gap,
        }
    }

    /// Which construction produced this overlay.
    pub fn kind(&self) -> OverlayKind {
        self.kind
    }

    /// Top level index `h` (`stations` run `0..=h`).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of bottom-level sensor nodes.
    pub fn node_count(&self) -> usize {
        self.paths.len()
    }

    /// The single root node `r` (the paper notes the sink typically plays
    /// this role in deployments).
    pub fn root(&self) -> NodeId {
        self.levels[self.height][0]
    }

    /// Members of level `ℓ` (for the general model: the distinct cluster
    /// leaders of that level).
    pub fn level_members(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// Detection path of bottom node `u`.
    pub fn path(&self, u: NodeId) -> &DetectionPath {
        &self.paths[u.index()]
    }

    /// Station (ordered parent set) of `u` at `level`.
    pub fn station(&self, u: NodeId, level: usize) -> &[NodeId] {
        self.paths[u.index()].station(level)
    }

    /// The configured special-parent level gap.
    pub fn sp_gap(&self) -> usize {
        self.sp_gap
    }

    /// Level at which the special parents of level-`ℓ` stations sit
    /// (clamped at the root level; the paper notes special parents near
    /// the root are undefined / collapse to it without harming the
    /// algorithm).
    pub fn sp_level(&self, level: usize) -> usize {
        (level + self.sp_gap).min(self.height)
    }

    /// Special parent (host of the SDL entry) for the `j`-th member of
    /// `u`'s level-`ℓ` station.
    pub fn sp_host(&self, u: NodeId, level: usize, j: usize) -> NodeId {
        let sp_station = self.station(u, self.sp_level(level));
        sp_station[j % sp_station.len()]
    }

    /// Lowest level where the detection paths of `u` and `v` share a
    /// station member (Lemma 2.1's quantity).
    pub fn meet_level(&self, u: NodeId, v: NodeId) -> usize {
        self.paths[u.index()].meet_level(&self.paths[v.index()])
    }

    /// `length(DPath_j(u))` per Lemma 2.2.
    pub fn path_length(&self, u: NodeId, up_to_level: usize, m: &dyn DistanceOracle) -> f64 {
        self.paths[u.index()].length_up_to(up_to_level, m)
    }

    /// Largest station size over all nodes and levels (Observation 1
    /// bounds this by `2^{3ρ}` in the doubling model, `O(log n)` in the
    /// general model).
    pub fn max_station_size(&self) -> usize {
        self.paths
            .iter()
            .flat_map(|p| p.stations.iter().map(|s| s.len()))
            .max()
            .unwrap_or(0)
    }

    /// Number of distinct (level ≥ 1) parent roles a physical node plays —
    /// the bookkeeping footprint used by the load experiments.
    pub fn parent_roles(&self, u: NodeId) -> usize {
        (1..=self.height)
            .filter(|&l| self.levels[l].binary_search(&u).is_ok())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_overlay() -> Overlay {
        // 4 bottom nodes, 3 levels: {0,1,2,3} -> {0,2} -> {0}
        let levels = vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(0)],
        ];
        let paths = (0..4)
            .map(|i| DetectionPath {
                stations: vec![
                    vec![NodeId(i)],
                    if i < 2 {
                        vec![NodeId(0)]
                    } else {
                        vec![NodeId(0), NodeId(2)]
                    },
                    vec![NodeId(0)],
                ],
            })
            .collect();
        Overlay::new(OverlayKind::Doubling, levels, paths, 1)
    }

    #[test]
    fn accessors() {
        let o = toy_overlay();
        assert_eq!(o.height(), 2);
        assert_eq!(o.node_count(), 4);
        assert_eq!(o.root(), NodeId(0));
        assert_eq!(o.level_members(1), &[NodeId(0), NodeId(2)]);
        assert_eq!(o.station(NodeId(3), 1), &[NodeId(0), NodeId(2)]);
        assert_eq!(o.kind(), OverlayKind::Doubling);
    }

    #[test]
    fn sp_levels_clamp_at_root() {
        let o = toy_overlay();
        assert_eq!(o.sp_level(0), 1);
        assert_eq!(o.sp_level(1), 2);
        assert_eq!(o.sp_level(2), 2);
    }

    #[test]
    fn sp_host_pairs_by_index_with_wrap() {
        let o = toy_overlay();
        // node 3's level-1 station has two members; sp station at level 2
        // has one member -> both pair to the root.
        assert_eq!(o.sp_host(NodeId(3), 1, 0), NodeId(0));
        assert_eq!(o.sp_host(NodeId(3), 1, 1), NodeId(0));
        // level-0 station pairs into level-1 station
        assert_eq!(o.sp_host(NodeId(3), 0, 0), NodeId(0));
    }

    #[test]
    fn meet_level_via_overlay() {
        let o = toy_overlay();
        assert_eq!(o.meet_level(NodeId(0), NodeId(1)), 1);
        assert_eq!(o.meet_level(NodeId(2), NodeId(3)), 1);
        assert_eq!(o.meet_level(NodeId(1), NodeId(3)), 1); // share node 0 at level 1
    }

    #[test]
    fn parent_roles_counts_levels() {
        let o = toy_overlay();
        assert_eq!(o.parent_roles(NodeId(0)), 2);
        assert_eq!(o.parent_roles(NodeId(2)), 1);
        assert_eq!(o.parent_roles(NodeId(1)), 0);
        assert_eq!(o.max_station_size(), 2);
    }
}
