//! Pluggable distance oracles.
//!
//! Every cost account and hierarchy radius query in the suite goes
//! through the [`DistanceOracle`] trait: "how far apart are `u` and
//! `v`?", "which nodes lie within `r` of `u`?", "what is the network
//! diameter?". Four backends implement it:
//!
//! * [`DenseOracle`] — the precomputed all-pairs matrix (parallel
//!   Dijkstra, O(n²) f32 storage). Exact everything; the right choice
//!   up to a few thousand nodes ([`OracleKind::DENSE_NODE_LIMIT`]),
//!   and the parity yardstick every other backend is tested against.
//! * [`LazyOracle`] — per-source Dijkstra rows computed on demand and
//!   kept in a sharded LRU cache. O(cached · n) memory; the diameter is
//!   a double-sweep estimate (a lower bound within 2× of the true
//!   diameter, exact on trees and grids). Every first-touch query
//!   still pays for a *full* row.
//! * [`CachedOracle`] — bounded solves on miss (targeted Dijkstra for
//!   `dist`, radius-bounded for `ball`) plus a byte-budgeted LRU of
//!   full rows for sources hot enough to earn one. The default at
//!   scale: no query ever costs more than what it touches.
//! * [`HybridOracle`] — lazy rows plus an explicitly pinned hot set
//!   (hierarchy-internal nodes: every detection-list probe and
//!   parent-set scan hits them), so the hot rows never churn out of
//!   cache.
//!
//! All four quantize distances through `f32` exactly like the dense
//! matrix always has, so switching backends never changes a cost
//! account (see the `oracle_differential` integration tests).
//!
//! [`OracleKind`] is the configuration-level selector; consumers take
//! `&dyn DistanceOracle` and never name a concrete backend.

mod cached;
mod dense;
mod hybrid;
mod lazy;

pub use cached::{CachedOracle, DeltaInvalidation};
pub use dense::DenseOracle;
pub use hybrid::HybridOracle;
pub use lazy::LazyOracle;

use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// Shortest-path distance queries over a fixed connected graph.
///
/// Implementations are thread-safe (`Send + Sync`) so one oracle can
/// back parallel construction and concurrent replay. Distances are
/// quantized through `f32` by every backend, which keeps cost accounts
/// bit-identical when backends are swapped.
///
/// # Example
///
/// ```
/// use mot_net::{generators, DenseOracle, DistanceOracle, NodeId};
///
/// let g = generators::grid(3, 3)?; // unit-weight 3×3 grid
/// let m = DenseOracle::build(&g)?;
/// assert_eq!(m.dist(NodeId(0), NodeId(8)), 4.0); // corner to corner
/// assert_eq!(m.diameter(), 4.0);
/// // N(u, r): nodes within distance 1 of the center, itself included
/// assert_eq!(m.ball(NodeId(4), 1.0).len(), 5);
/// # Ok::<(), mot_net::NetError>(())
/// ```
pub trait DistanceOracle: Send + Sync {
    /// Number of nodes covered by the oracle.
    fn node_count(&self) -> usize;

    /// Shortest-path distance between `u` and `v`.
    fn dist(&self, u: NodeId, v: NodeId) -> f64;

    /// Network diameter `D = max_{u,v} dist(u, v)` — or, for lazy
    /// backends, a documented estimate `est` with `D/2 ≤ est ≤ D`.
    fn diameter(&self) -> f64;

    /// All nodes within distance `r` of `u` (inclusive; includes `u`) —
    /// the paper's neighborhood `N(u, r)` — sorted by distance from
    /// `u`, ties by node id.
    fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId>;

    /// Number of nodes within distance `r` of `u` (inclusive).
    fn ball_size(&self, u: NodeId, r: f64) -> usize {
        self.ball(u, r).len()
    }

    /// [`ball`](Self::ball) into a caller-owned buffer (cleared first),
    /// so tight query loops can reuse one allocation. The default
    /// delegates to `ball`; backends with a sorted row override it to
    /// copy the prefix directly.
    fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.ball(u, r));
    }

    /// The member of `candidates` nearest to `u`, ties broken by
    /// smallest node id (the paper breaks parent ties arbitrarily; ID
    /// order keeps runs reproducible). `None` on an empty list.
    fn nearest_in(&self, u: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates.iter().copied().min_by(|&a, &b| {
            self.dist(u, a)
                .partial_cmp(&self.dist(u, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        })
    }

    /// Total length of a node walk `p_0 → p_1 → … → p_k` where
    /// consecutive hops travel along shortest physical paths (the cost
    /// model for all overlay messages).
    fn walk_length(&self, walk: &[NodeId]) -> f64 {
        walk.windows(2).map(|w| self.dist(w[0], w[1])).sum()
    }

    /// Approximate heap footprint of the backend's distance storage at
    /// call time, in bytes: the full matrix for dense, the cached /
    /// pinned rows for the lazy backends. Experiment reports use this to
    /// compare backends at scale.
    fn memory_bytes(&self) -> usize;

    /// Row-cache counters for backends that keep one ([`CachedOracle`]);
    /// `None` for backends without a hit/miss ledger. Experiment
    /// reports surface these to show how much distance work a replay
    /// actually performed.
    fn cache_stats(&self) -> Option<CacheLedger> {
        None
    }

    /// Whether every distance read is a plain lookup into fully
    /// precomputed storage (true only for the dense matrix), as opposed
    /// to potentially triggering an on-demand single-source solve.
    /// Purely a performance hint — adaptive overlay construction uses
    /// it to decide whether full-row oracle scans are affordable — and
    /// never affects any result bit (all backends answer identically).
    fn rows_precomputed(&self) -> bool {
        false
    }
}

/// Snapshot of a row cache's activity and footprint (see
/// [`DistanceOracle::cache_stats`] and [`CachedOracle::ledger`]).
///
/// For a single-threaded query stream the counters are deterministic:
/// the same queries against the same budget produce the same ledger
/// (pinned by the `cached_churn` test suite).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLedger {
    /// Queries answered from a resident row.
    pub hits: u64,
    /// Queries that ran a (bounded or full) Dijkstra.
    pub misses: u64,
    /// Rows dropped by the byte-budget LRU.
    pub evictions: u64,
    /// Full rows computed and cached for hot sources.
    pub promotions: u64,
    /// Rows resident when the snapshot was taken.
    pub resident_rows: usize,
    /// Bytes held by resident rows (equals `memory_bytes()`).
    pub resident_bytes: usize,
}

/// Boxed oracles are oracles, so owners of a `Box<dyn DistanceOracle>`
/// can hand out `&self.oracle` wherever `&dyn DistanceOracle` is asked
/// for.
impl<T: DistanceOracle + ?Sized> DistanceOracle for Box<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        (**self).dist(u, v)
    }

    fn diameter(&self) -> f64 {
        (**self).diameter()
    }

    fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        (**self).ball(u, r)
    }

    fn ball_size(&self, u: NodeId, r: f64) -> usize {
        (**self).ball_size(u, r)
    }

    fn ball_into(&self, u: NodeId, r: f64, out: &mut Vec<NodeId>) {
        (**self).ball_into(u, r, out)
    }

    fn nearest_in(&self, u: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        (**self).nearest_in(u, candidates)
    }

    fn walk_length(&self, walk: &[NodeId]) -> f64 {
        (**self).walk_length(walk)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn cache_stats(&self) -> Option<CacheLedger> {
        (**self).cache_stats()
    }

    fn rows_precomputed(&self) -> bool {
        (**self).rows_precomputed()
    }
}

impl std::fmt::Debug for dyn DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceOracle")
            .field("node_count", &self.node_count())
            .finish()
    }
}

/// One source node's distances, shared by the lazy backends and the
/// dense sorted index: distances by node index plus a
/// sorted-by-(distance, id) view so `ball` is a binary search + slice.
#[derive(Clone, Debug)]
pub(crate) struct DistRow {
    /// f32-quantized distance to every node, indexed by node id.
    by_node: Vec<f32>,
    /// `(dist, node)` ascending by distance, ties by node id.
    sorted: Vec<(f32, u32)>,
}

impl DistRow {
    /// Builds a row straight from a just-run [`DijkstraWorkspace`]
    /// (same f32 quantization, no intermediate f64 vector).
    pub(crate) fn from_workspace(ws: &crate::workspace::DijkstraWorkspace, n: usize) -> Self {
        let by_node: Vec<f32> = (0..n)
            .map(|v| ws.dist(NodeId::from_index(v)) as f32)
            .collect();
        Self::from_f32(by_node)
    }

    pub(crate) fn from_f32(by_node: Vec<f32>) -> Self {
        let mut sorted: Vec<(f32, u32)> = by_node
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        DistRow { by_node, sorted }
    }

    #[inline]
    pub(crate) fn dist(&self, v: NodeId) -> f64 {
        self.by_node[v.index()] as f64
    }

    /// The quantized distance array, indexed by node id (for cache
    /// patching under topology deltas — see `CachedOracle::apply_delta`).
    #[inline]
    pub(crate) fn values(&self) -> &[f32] {
        &self.by_node
    }

    #[inline]
    pub(crate) fn max(&self) -> f64 {
        self.sorted.last().map(|&(d, _)| d as f64).unwrap_or(0.0)
    }

    /// The node farthest from the source (deterministic under ties),
    /// `None` on an empty row.
    #[inline]
    pub(crate) fn farthest(&self) -> Option<NodeId> {
        self.sorted.last().map(|&(_, i)| NodeId(i))
    }

    /// Index of the first sorted entry strictly beyond `r`.
    #[inline]
    fn cut(&self, r: f64) -> usize {
        self.sorted.partition_point(|&(d, _)| (d as f64) <= r)
    }

    /// Nodes within `r`, sorted by (distance, id).
    pub(crate) fn ball(&self, r: f64) -> Vec<NodeId> {
        self.sorted[..self.cut(r)]
            .iter()
            .map(|&(_, i)| NodeId(i))
            .collect()
    }

    /// [`ball`](Self::ball) into a caller-owned buffer (cleared first).
    pub(crate) fn ball_into(&self, r: f64, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.sorted[..self.cut(r)].iter().map(|&(_, i)| NodeId(i)));
    }

    pub(crate) fn ball_size(&self, r: f64) -> usize {
        self.cut(r)
    }

    /// Approximate heap footprint, for cache accounting.
    pub(crate) fn bytes(&self) -> usize {
        self.by_node.len() * std::mem::size_of::<f32>()
            + self.sorted.len() * std::mem::size_of::<(f32, u32)>()
    }
}

/// Which distance backend to run an experiment on.
///
/// # Selection rule (`Auto`)
///
/// `Auto` picks [`DenseOracle`] up to [`OracleKind::DENSE_NODE_LIMIT`]
/// nodes — the n² matrix is cheap there, exact, and the fastest thing
/// to query — and [`CachedOracle`] beyond it: bounded Dijkstra solves
/// on miss with a **byte-budgeted** row cache, so neither query time
/// nor memory grows with n² ([`LazyOracle`], the previous fallback,
/// computes a full O(n) row on every first-touch source and its
/// row-count cap still admits O(n²/16) bytes of growth). Dense past
/// the limit — and lazy/hybrid anywhere — stay available as explicit
/// opt-ins, chiefly as parity verifiers (`--oracle dense`).
///
/// Re-exported through `mot_core::config` for experiment
/// configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleKind {
    /// Dense for small deployments, cached past the node limit.
    #[default]
    Auto,
    /// Full n² matrix of exact distances ([`DenseOracle`]).
    Dense,
    /// Bounded LRU of on-demand Dijkstra rows ([`LazyOracle`]).
    Lazy,
    /// Bounded solves on miss + byte-budgeted LRU of promoted rows
    /// ([`CachedOracle`]).
    Cached,
    /// Landmark upper bounds refined to exact rows on demand
    /// ([`HybridOracle`]).
    Hybrid,
}

impl OracleKind {
    /// Largest node count `Auto` still solves densely: a 64×64 grid,
    /// 4096² f32 entries = 64 MiB. A 128×128 grid would already need
    /// 1 GiB — that is what the lazy backends exist for.
    pub const DENSE_NODE_LIMIT: usize = 4096;

    /// The concrete backend `Auto` resolves to for an `n`-node graph:
    /// [`OracleKind::Dense`] up to [`OracleKind::DENSE_NODE_LIMIT`],
    /// [`OracleKind::Cached`] beyond (see the type-level docs for why).
    pub fn resolve(self, n: usize) -> OracleKind {
        match self {
            OracleKind::Auto => {
                if n <= Self::DENSE_NODE_LIMIT {
                    OracleKind::Dense
                } else {
                    OracleKind::Cached
                }
            }
            other => other,
        }
    }

    /// Builds the selected backend for `g`.
    pub fn build(self, g: &Graph) -> Result<Box<dyn DistanceOracle>> {
        Ok(match self.resolve(g.node_count()) {
            OracleKind::Dense => Box::new(DenseOracle::build(g)?),
            OracleKind::Lazy => Box::new(LazyOracle::new(g)?),
            OracleKind::Cached => Box::new(CachedOracle::new(g)?),
            OracleKind::Hybrid => Box::new(HybridOracle::new(g)?),
            OracleKind::Auto => unreachable!("resolve never returns Auto"),
        })
    }

    /// CLI / config spelling.
    pub fn parse(s: &str) -> Option<OracleKind> {
        match s {
            "auto" => Some(OracleKind::Auto),
            "dense" => Some(OracleKind::Dense),
            "lazy" => Some(OracleKind::Lazy),
            "cached" => Some(OracleKind::Cached),
            "hybrid" => Some(OracleKind::Hybrid),
            _ => None,
        }
    }

    /// Stable lowercase name (the inverse of [`OracleKind::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::Auto => "auto",
            OracleKind::Dense => "dense",
            OracleKind::Lazy => "lazy",
            OracleKind::Cached => "cached",
            OracleKind::Hybrid => "hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dist_row_ball_is_binary_search_prefix() {
        let row = DistRow::from_f32(vec![0.0, 1.0, 1.0, 2.0, 5.0]);
        assert_eq!(row.dist(NodeId(3)), 2.0);
        assert_eq!(row.ball(1.0), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(row.ball_size(1.0), 3);
        assert_eq!(row.ball_size(4.999), 4);
        assert_eq!(row.ball(-1.0), Vec::<NodeId>::new());
        assert_eq!(row.max(), 5.0);
    }

    #[test]
    fn auto_resolves_by_node_count() {
        assert_eq!(OracleKind::Auto.resolve(4096), OracleKind::Dense);
        assert_eq!(OracleKind::Auto.resolve(4097), OracleKind::Cached);
        assert_eq!(OracleKind::Lazy.resolve(10), OracleKind::Lazy);
        assert_eq!(OracleKind::Cached.resolve(10), OracleKind::Cached);
        assert_eq!(OracleKind::Hybrid.resolve(10_000), OracleKind::Hybrid);
    }

    #[test]
    fn kind_parse_and_label_roundtrip() {
        for kind in [
            OracleKind::Auto,
            OracleKind::Dense,
            OracleKind::Lazy,
            OracleKind::Cached,
            OracleKind::Hybrid,
        ] {
            assert_eq!(OracleKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(OracleKind::parse("sparse"), None);
    }

    #[test]
    fn factory_builds_every_backend() {
        let g = generators::grid(4, 4).unwrap();
        for kind in [
            OracleKind::Auto,
            OracleKind::Dense,
            OracleKind::Lazy,
            OracleKind::Cached,
            OracleKind::Hybrid,
        ] {
            let o = kind.build(&g).unwrap();
            assert_eq!(o.node_count(), 16);
            assert_eq!(o.dist(NodeId(0), NodeId(15)), 6.0);
        }
    }

    #[test]
    fn cache_stats_default_is_none_and_forwards_through_box() {
        let g = generators::grid(4, 4).unwrap();
        assert!(OracleKind::Dense.build(&g).unwrap().cache_stats().is_none());
        let cached = OracleKind::Cached.build(&g).unwrap();
        cached.dist(NodeId(0), NodeId(15));
        let ledger = cached.cache_stats().expect("cached keeps a ledger");
        assert_eq!(ledger.misses, 1);
    }

    #[test]
    fn trait_object_debug_is_printable() {
        let g = generators::grid(3, 3).unwrap();
        let o = OracleKind::Dense.build(&g).unwrap();
        assert!(format!("{o:?}").contains("node_count"));
    }
}
