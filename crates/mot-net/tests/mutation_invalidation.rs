//! Eviction-under-mutation differential suite (DESIGN.md §17).
//!
//! After every delta of a seeded churn schedule, a `CachedOracle` that
//! absorbed the deltas via `apply_delta` must answer every `dist` and
//! `ball` query bit-identically to a fresh `DenseOracle` rebuilt on the
//! mutated topology — the rebuild-only verifier. The suite also pins
//! the patch-vs-evict split itself: leave events near a resident row's
//! shortest-path structure evict, provably untouched rows patch in
//! place, and the whole invalidation stream is deterministic.

use mot_net::{
    generators, CachedOracle, ChurnSchedule, ChurnSpec, DeltaInvalidation, DenseOracle,
    DistanceOracle, NodeId, TopologyDelta,
};

/// Promote a handful of rows by issuing far-apart targeted queries
/// (two full-length solves cross the promotion threshold).
fn promote_rows(cached: &CachedOracle, sources: &[u32], n: usize) {
    for &s in sources {
        for t in [(s as usize + n / 2) % n, (s as usize + n / 2 + 1) % n] {
            cached.dist(NodeId(s), NodeId::from_index(t));
            cached.dist(NodeId(s), NodeId::from_index(t));
        }
    }
}

/// Full-pair differential against the rebuild-only dense verifier.
fn assert_matches_dense(cached: &CachedOracle, g: &mot_net::Graph, ctx: &str) {
    let dense = DenseOracle::build(g).expect("dense rebuild");
    let d = dense.diameter();
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(
                cached.dist(u, v).to_bits(),
                dense.dist(u, v).to_bits(),
                "{ctx}: dist({u},{v})"
            );
        }
        for r in [1.0, 2.0, d / 2.0, d] {
            assert_eq!(cached.ball(u, r), dense.ball(u, r), "{ctx}: ball({u},{r})");
        }
    }
}

#[test]
fn cached_matches_dense_rebuild_after_every_delta() {
    for (name, g, seed) in [
        ("grid", generators::grid(6, 6).unwrap(), 5u64),
        (
            "geometric",
            generators::random_geometric(48, 8.0, 2.2, 21).unwrap(),
            6,
        ),
    ] {
        let sched = ChurnSchedule::generate(&g, &ChurnSpec::new(10, 4, seed)).unwrap();
        let mut cached = CachedOracle::new(&g).unwrap();
        let n = g.node_count();
        promote_rows(&cached, &[0, (n as u32) / 3, (n as u32) - 1], n);
        let mut live = g.clone();
        for (i, delta) in sched.deltas().iter().enumerate() {
            delta.apply(&mut live).unwrap();
            cached.apply_delta(delta).unwrap();
            assert_matches_dense(&cached, &live, &format!("{name} delta {i}"));
        }
    }
}

#[test]
fn dead_end_leave_patches_resident_rows() {
    // Removing corner (0,0) of a grid cannot lie on any other pair's
    // shortest path: a resident row at the far corner survives as an
    // in-place patch, and its other entries keep serving exact hits.
    let g = generators::grid(5, 5).unwrap();
    let mut cached = CachedOracle::new(&g).unwrap();
    promote_rows(&cached, &[24], 25);
    assert!(cached.ledger().resident_rows >= 1);
    let report = cached
        .apply_delta(&TopologyDelta::leave(NodeId(0)))
        .unwrap();
    assert!(report.rows_patched >= 1, "{report:?}");
    assert_eq!(report.rows_evicted, 0, "{report:?}");
    assert_eq!(cached.dist(NodeId(24), NodeId(0)), f64::INFINITY);
    let hits_before = cached.ledger().hits;
    assert_eq!(cached.dist(NodeId(24), NodeId(12)), 4.0);
    assert_eq!(
        cached.ledger().hits,
        hits_before + 1,
        "patched row must hit"
    );
}

#[test]
fn central_leave_evicts_rows_whose_paths_crossed_it() {
    // Removing the center of a grid: corner rows route through it (or
    // tie through it), so the conservative test must evict them.
    let g = generators::grid(5, 5).unwrap();
    let mut cached = CachedOracle::new(&g).unwrap();
    promote_rows(&cached, &[0], 25);
    let report = cached
        .apply_delta(&TopologyDelta::leave(NodeId(12)))
        .unwrap();
    assert!(report.rows_evicted >= 1, "{report:?}");
    assert_eq!(cached.ledger().resident_rows, 0);
    // Re-solves on the mutated topology are exact: the detour around
    // the missing center costs nothing on a grid's L1 geometry...
    assert_eq!(cached.dist(NodeId(0), NodeId(24)), 8.0);
    // ...but the removed node itself is unreachable.
    assert_eq!(cached.dist(NodeId(0), NodeId(12)), f64::INFINITY);
}

#[test]
fn join_evicts_every_resident_row() {
    let g = generators::grid(5, 5).unwrap();
    let mut cached = CachedOracle::new(&g).unwrap();
    let star = {
        let mut live = g.clone();
        live.remove_node(NodeId(7)).unwrap()
    };
    cached
        .apply_delta(&TopologyDelta::leave(NodeId(7)))
        .unwrap();
    promote_rows(&cached, &[24, 0], 25);
    let resident = cached.ledger().resident_rows as u64;
    assert!(resident >= 1);
    let report = cached
        .apply_delta(&TopologyDelta::join(NodeId(7), star))
        .unwrap();
    assert_eq!(report.rows_evicted, resident, "{report:?}");
    assert_eq!(report.rows_patched, 0);
    assert_eq!(cached.ledger().resident_rows, 0);
    assert_eq!(cached.dist(NodeId(24), NodeId(7)), 5.0);
}

#[test]
fn invalidation_reports_are_deterministic() {
    let g = generators::random_geometric(40, 8.0, 2.2, 33).unwrap();
    let sched = ChurnSchedule::generate(&g, &ChurnSpec::new(12, 5, 9)).unwrap();
    let run = || -> Vec<DeltaInvalidation> {
        let mut cached = CachedOracle::new(&g).unwrap();
        promote_rows(&cached, &[0, 13, 37], 40);
        sched
            .deltas()
            .iter()
            .map(|d| cached.apply_delta(d).unwrap())
            .collect()
    };
    assert_eq!(run(), run());
}

#[test]
fn generation_stamps_advance_with_deltas() {
    let g = generators::grid(4, 4).unwrap();
    let mut cached = CachedOracle::new(&g).unwrap();
    assert_eq!(cached.graph().generation(), 0);
    cached
        .apply_delta(&TopologyDelta::leave(NodeId(5)))
        .unwrap();
    assert_eq!(cached.graph().generation(), 1);
    assert!(cached.graph().node_generation(NodeId(5)) == 1);
    assert_eq!(cached.graph().node_generation(NodeId(15)), 0);
}
