//! Allocation-count regression gate for the replay hot path.
//!
//! A counting global allocator wraps the system allocator; a small
//! fixed replay runs twice on the same tracker state — once to warm
//! every freelist and cache, once under the counter — and the test
//! fails if the steady-state allocation count per operation creeps
//! past a generous ceiling. Wall-clock benchmarks drift with the
//! machine; allocation counts are deterministic, so this is the CI-safe
//! witness that the arena/freelist work keeps paying.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use mot_core::{MotConfig, ObjectId, Tracker};
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::{generators, DenseOracle, NodeId};
use mot_proto::ProtoTracker;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const OPS: u64 = 400;

/// One fixed move+query churn round; identical streams every call.
fn churn(t: &mut ProtoTracker, n: u32, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..OPS / 2 {
        let o = ObjectId(rng.gen_range(0..4u32));
        let to = NodeId(rng.gen_range(0..n));
        if Some(to) != t.proxy_of(o) {
            t.move_object(o, to).unwrap();
        }
        t.query(NodeId(rng.gen_range(0..n)), o).unwrap();
    }
}

#[test]
fn steady_state_replay_allocates_sparingly() {
    let g = generators::grid(8, 8).unwrap();
    let m = DenseOracle::build(&g).unwrap();
    let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
    let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
    for k in 0..4u32 {
        t.publish(ObjectId(k), NodeId(k * 9)).unwrap();
    }

    // Warm-up: populate the route-buffer freelist, transport queues,
    // and per-node scratch to their high-water capacities.
    churn(&mut t, 64, 11);

    let before = allocs();
    churn(&mut t, 64, 12);
    let per_op = (allocs() - before) as f64 / OPS as f64;

    // Measured steady state is ~1 allocation per op (retry bookkeeping
    // and occasional Vec growth); the ceiling leaves ~4x headroom while
    // still catching a regression to the ~10/op pre-arena behaviour.
    assert!(
        per_op < 4.0,
        "replay hot path allocates {per_op:.1} times per operation; \
         the arena/freelist reuse has regressed"
    );
}
