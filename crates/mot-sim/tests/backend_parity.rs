//! End-to-end backend parity: a fig4-style tracking pipeline (build
//! bed, publish, replay a mobility trace, issue query batches) must
//! produce *identical* cost accounts whichever distance backend the bed
//! runs on. Distances are f32-quantized by every backend and grid
//! diameters are exact under the lazy double sweep, so the overlays —
//! and therefore every cost — match bit for bit.

use mot_baselines::DetectionRates;
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::{generators, CachedOracle, DistanceOracle, OracleKind};
use mot_sim::{
    replay_moves, replay_moves_faulty, run_publish, run_queries, run_queries_faulty, Algo,
    FaultConfig, TestBed, WorkloadSpec,
};

struct PipelineOutcome {
    publish: f64,
    maintenance: f64,
    maintenance_ratio: f64,
    query_ratio: f64,
    correct: usize,
}

fn run_pipeline(kind: OracleKind, algo: Algo) -> PipelineOutcome {
    let bed = TestBed::grid_with_oracle(12, 12, 7, kind).unwrap();
    run_pipeline_on(&bed, algo)
}

fn run_pipeline_on(bed: &TestBed, algo: Algo) -> PipelineOutcome {
    let w = WorkloadSpec::new(4, 120, 3).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let mut t = bed.make_tracker(algo, &rates).unwrap();
    let publish = run_publish(t.as_mut(), &w).unwrap();
    let stats = replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
    let q = run_queries(t.as_ref(), &bed.oracle, 4, 80, 5).unwrap();
    PipelineOutcome {
        publish,
        maintenance: stats.total,
        maintenance_ratio: stats.ratio(),
        query_ratio: q.cost.ratio(),
        correct: q.correct,
    }
}

#[test]
fn grid_pipeline_costs_are_identical_across_all_backends() {
    for algo in [Algo::Mot, Algo::MotLb, Algo::Stun] {
        let dense = run_pipeline(OracleKind::Dense, algo);
        for kind in [OracleKind::Lazy, OracleKind::Hybrid, OracleKind::Cached] {
            let other = run_pipeline(kind, algo);
            let label = format!("{:?}/{:?}", algo, kind);
            assert_eq!(other.publish, dense.publish, "{label}: publish cost");
            assert_eq!(
                other.maintenance, dense.maintenance,
                "{label}: maintenance cost"
            );
            assert_eq!(
                other.maintenance_ratio, dense.maintenance_ratio,
                "{label}: maintenance ratio"
            );
            assert_eq!(other.query_ratio, dense.query_ratio, "{label}: query ratio");
            assert_eq!(other.correct, dense.correct, "{label}: query correctness");
        }
    }
}

/// The same pipeline threaded through the fault harness instead of the
/// reliable one.
fn run_pipeline_faulty(kind: OracleKind, algo: Algo, cfg: &FaultConfig) -> PipelineOutcome {
    let bed = TestBed::grid_with_oracle(12, 12, 7, kind)
        .unwrap()
        .with_faults(cfg.clone());
    let w = WorkloadSpec::new(4, 120, 3).generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let mut plan = bed.fault_plan(w.moves.len()).unwrap();
    let mut t = bed.make_tracker(algo, &rates).unwrap();
    let publish = run_publish(t.as_mut(), &w).unwrap();
    let run = replay_moves_faulty(t.as_mut(), &w, &bed.oracle, &mut plan).unwrap();
    let q = run_queries_faulty(t.as_mut(), &bed.oracle, 4, 80, 5, &mut plan).unwrap();
    PipelineOutcome {
        publish,
        maintenance: run.maintenance.total,
        maintenance_ratio: run.maintenance.ratio(),
        query_ratio: q.batch.cost.ratio(),
        correct: q.batch.correct,
    }
}

/// The acceptance gate for the fault layer: with all rates zero the
/// faulty harness must reproduce the reliable pipeline's cost accounts
/// bit for bit — the fault machinery costs nothing when disabled.
#[test]
fn zero_fault_pipeline_is_bit_identical_to_the_reliable_one() {
    let clean = FaultConfig::default();
    for algo in [Algo::Mot, Algo::MotLb, Algo::Stun] {
        for kind in [OracleKind::Dense, OracleKind::Lazy, OracleKind::Cached] {
            let reliable = run_pipeline(kind, algo);
            let faulty = run_pipeline_faulty(kind, algo, &clean);
            let label = format!("{algo:?}/{kind:?}");
            assert_eq!(faulty.publish, reliable.publish, "{label}: publish cost");
            assert_eq!(
                faulty.maintenance, reliable.maintenance,
                "{label}: maintenance cost"
            );
            assert_eq!(
                faulty.maintenance_ratio, reliable.maintenance_ratio,
                "{label}: maintenance ratio"
            );
            assert_eq!(
                faulty.query_ratio, reliable.query_ratio,
                "{label}: query ratio"
            );
            assert_eq!(faulty.correct, reliable.correct, "{label}: correctness");
        }
    }
}

#[test]
fn auto_matches_dense_below_the_node_limit() {
    let auto = run_pipeline(OracleKind::Auto, Algo::Mot);
    let dense = run_pipeline(OracleKind::Dense, Algo::Mot);
    assert_eq!(auto.maintenance, dense.maintenance);
    assert_eq!(auto.query_ratio, dense.query_ratio);
}

/// Cache eviction mid-pipeline must not change a single bit: a cached
/// backend squeezed into a three-row byte budget evicts and recomputes
/// rows throughout overlay construction, replay, and querying, yet its
/// cost accounts match the dense pipeline exactly.
#[test]
fn eviction_and_recompute_leave_pipeline_costs_bit_identical() {
    for algo in [Algo::Mot, Algo::Stun] {
        let g = generators::grid(12, 12).unwrap();
        let n = g.node_count();
        let row_bytes = n * (4 + 8);
        let oracle = CachedOracle::with_byte_budget(&g, 3 * row_bytes).unwrap();
        let overlay = build_doubling(&g, &oracle, &OverlayConfig::practical(), 7);
        let bed = TestBed {
            graph: g,
            oracle: Box::new(oracle),
            overlay,
            faults: None,
        };
        let squeezed = run_pipeline_on(&bed, algo);
        let dense = run_pipeline(OracleKind::Dense, algo);
        let label = format!("{algo:?}/cached-tiny-budget");
        let ledger = bed.oracle.cache_stats().expect("cached backend ledger");
        assert!(
            ledger.evictions > 0,
            "{label}: budget too generous, no eviction was exercised"
        );
        assert!(
            ledger.resident_bytes <= 3 * row_bytes,
            "{label}: resident bytes exceed the budget"
        );
        assert_eq!(squeezed.publish, dense.publish, "{label}: publish cost");
        assert_eq!(
            squeezed.maintenance, dense.maintenance,
            "{label}: maintenance cost"
        );
        assert_eq!(
            squeezed.maintenance_ratio, dense.maintenance_ratio,
            "{label}: maintenance ratio"
        );
        assert_eq!(
            squeezed.query_ratio, dense.query_ratio,
            "{label}: query ratio"
        );
        assert_eq!(squeezed.correct, dense.correct, "{label}: correctness");
    }
}
