//! Topology generators for the evaluation.
//!
//! The paper's experiments run on square grids of 10–1024 nodes; rings are
//! called out as the adversarial case for spanning-tree baselines
//! (cost ratios up to `O(D)`); random-geometric graphs (unit-disk graphs)
//! are the standard constant-doubling sensor deployment model; trees and
//! lines round out the test matrix.

use crate::builder::GraphBuilder;
use crate::error::NetError;
use crate::graph::Graph;
use crate::node::{NodeId, Point};
use crate::Result;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// `rows × cols` unit-weight grid with integer coordinates.
///
/// Node `(r, c)` has id `r * cols + c` and position `(c, r)`.
pub fn grid(rows: usize, cols: usize) -> Result<Graph> {
    if rows == 0 || cols == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut b = GraphBuilder::new(rows * cols);
    let mut positions = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Point::new(c as f64, r as f64));
            let id = NodeId::from_index(r * cols + c);
            if c + 1 < cols {
                b.add_edge(id, NodeId::from_index(r * cols + c + 1), 1.0)?;
            }
            if r + 1 < rows {
                b.add_edge(id, NodeId::from_index((r + 1) * cols + c), 1.0)?;
            }
        }
    }
    b.with_positions(positions).build()
}

/// `rows × cols` grid with wrap-around edges (a torus). Diameter is half
/// that of the grid; useful for stressing hierarchy level counts.
pub fn torus(rows: usize, cols: usize) -> Result<Graph> {
    if rows < 3 || cols < 3 {
        return Err(NetError::EmptyGraph);
    }
    let mut b = GraphBuilder::new(rows * cols);
    let mut positions = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            positions.push(Point::new(c as f64, r as f64));
            let id = NodeId::from_index(r * cols + c);
            b.add_edge(id, NodeId::from_index(r * cols + (c + 1) % cols), 1.0)?;
            b.add_edge(id, NodeId::from_index(((r + 1) % rows) * cols + c), 1.0)?;
        }
    }
    b.with_positions(positions).build()
}

/// Ring of `n >= 3` nodes with unit edges, laid out on a circle.
///
/// Rings are where tree-based trackers (STUN, DAT) pay `Θ(D)` cost ratios:
/// two adjacent ring nodes can be distance `D` apart in any spanning tree.
pub fn ring(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(NetError::EmptyGraph);
    }
    let mut b = GraphBuilder::new(n);
    let radius = n as f64 / (2.0 * std::f64::consts::PI);
    let mut positions = Vec::with_capacity(n);
    for i in 0..n {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        positions.push(Point::new(radius * theta.cos(), radius * theta.sin()));
        b.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0)?;
    }
    b.with_positions(positions).build()
}

/// Path (line) of `n >= 1` nodes with unit edges — the maximum-diameter
/// topology for a given `n`.
pub fn line(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut b = GraphBuilder::new(n);
    let positions = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
    for i in 0..n.saturating_sub(1) {
        b.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1), 1.0)?;
    }
    b.with_positions(positions).build()
}

/// Uniform random spanning tree over `n` nodes (random attachment), unit
/// weights. Trees exercise the hierarchy on graphs with no cycles.
pub fn random_tree(n: usize, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(NodeId::from_index(i), NodeId::from_index(parent), 1.0)?;
    }
    let positions = (0..n)
        .map(|i| Point::new((i % 32) as f64, (i / 32) as f64))
        .collect();
    Ok(b.with_positions(positions).build_unchecked())
}

/// Random geometric graph (unit-disk graph): `n` sensors dropped uniformly
/// in a `side × side` square, an edge between any pair within `radius`,
/// edge weight = Euclidean distance (then normalized so the minimum edge
/// weight is 1). If the sample is disconnected, the nearest pair across
/// components is bridged — standard practice so experiments always run on
/// connected deployments.
///
/// Edge discovery runs through a uniform spatial hash (near-linear for
/// the sparse deployments the benchmarks use, so 100k+-sensor fields
/// build in milliseconds rather than the minutes the old all-pairs scan
/// took) but emits edges in the exact ascending `(i, j)` order that
/// scan used, so generated graphs are bit-identical across releases.
pub fn random_geometric(n: usize, side: f64, radius: f64, seed: u64) -> Result<Graph> {
    if n == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let positions: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let mut b = GraphBuilder::new(n);
    add_geometric_edges(&mut b, &positions, radius)?;
    let g = b.with_positions(positions.clone()).build_unchecked();
    bridge_to_connectivity(g, &positions).map(|g| g.normalized())
}

/// Adds every edge `{i, j}` with `0 < dist(i, j) <= radius` in ascending
/// `(i, j)` order — the exact set and insertion order of a naive
/// all-pairs scan, found through a bucket grid instead of O(n²) pair
/// tests. Cell edges are at least `radius`, so every qualifying partner
/// of `i` lives in the 3×3 cell neighborhood around `i`; the grid is
/// capped at 1024² cells so degenerate radii cannot blow up memory
/// (larger cells only mean more candidates, never missed ones).
fn add_geometric_edges(b: &mut GraphBuilder, positions: &[Point], radius: f64) -> Result<()> {
    if radius <= 0.0 {
        return Ok(()); // `d <= radius && d > 0` is unsatisfiable
    }
    let n = positions.len();
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(radius);
    let cell = radius.max(span / 1024.0);
    let nx = ((max_x - min_x) / cell) as usize + 1;
    let ny = ((max_y - min_y) / cell) as usize + 1;
    let cell_of = |p: &Point| {
        let cx = (((p.x - min_x) / cell) as usize).min(nx - 1);
        let cy = (((p.y - min_y) / cell) as usize).min(ny - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
    for (i, p) in positions.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * nx + cx].push(i as u32);
    }
    let mut candidates: Vec<u32> = Vec::new();
    for i in 0..n {
        let (cx, cy) = cell_of(&positions[i]);
        candidates.clear();
        for y in cy.saturating_sub(1)..=(cy + 1).min(ny - 1) {
            for x in cx.saturating_sub(1)..=(cx + 1).min(nx - 1) {
                candidates.extend(
                    buckets[y * nx + x]
                        .iter()
                        .copied()
                        .filter(|&j| j as usize > i),
                );
            }
        }
        candidates.sort_unstable();
        for &j in &candidates {
            let d = positions[i].distance(&positions[j as usize]);
            if d <= radius && d > 0.0 {
                b.add_edge(NodeId::from_index(i), NodeId::from_index(j as usize), d)?;
            }
        }
    }
    Ok(())
}

fn component_labels(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        label[s] = next;
        while let Some(u) = stack.pop() {
            for e in g.neighbors(NodeId::from_index(u)) {
                if label[e.to.index()] == usize::MAX {
                    label[e.to.index()] = next;
                    stack.push(e.to.index());
                }
            }
        }
        next += 1;
    }
    label
}

/// A grid whose sensors are jittered off their lattice points (real
/// deployments are never perfectly regular): node `(r, c)` sits within
/// `jitter` of `(c, r)`, edges follow the grid topology with Euclidean
/// weights, normalized to a unit minimum.
pub fn perturbed_grid(rows: usize, cols: usize, jitter: f64, seed: u64) -> Result<Graph> {
    if rows == 0 || cols == 0 {
        return Err(NetError::EmptyGraph);
    }
    assert!(
        (0.0..0.5).contains(&jitter),
        "jitter must stay below half the spacing"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let positions: Vec<Point> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            Point::new(
                c as f64 + rng.gen_range(-jitter..=jitter),
                r as f64 + rng.gen_range(-jitter..=jitter),
            )
        })
        .collect();
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index(i + 1),
                    positions[i].distance(&positions[i + 1]).max(1e-6),
                )?;
            }
            if r + 1 < rows {
                b.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index(i + cols),
                    positions[i].distance(&positions[i + cols]).max(1e-6),
                )?;
            }
        }
    }
    Ok(b.with_positions(positions).build()?.normalized())
}

/// A clustered deployment: `clusters` Gaussian clouds of sensors (dense
/// villages connected by sparse corridors) — the kind of
/// non-uniform-density field where hierarchical overlays earn their keep.
/// Built as a random-geometric graph over the clustered positions, then
/// bridged to connectivity like [`random_geometric`].
pub fn clustered(n: usize, clusters: usize, side: f64, radius: f64, seed: u64) -> Result<Graph> {
    if n == 0 || clusters == 0 {
        return Err(NetError::EmptyGraph);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let spread = side / (clusters as f64).sqrt() / 4.0;
    let positions: Vec<Point> = (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // Box-Muller Gaussian offsets around the cluster center.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
            let mag = spread * (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            Point::new(
                (c.x + mag * theta.cos()).clamp(0.0, side),
                (c.y + mag * theta.sin()).clamp(0.0, side),
            )
        })
        .collect();
    // Reuse the geometric construction over fixed positions.
    let mut b = GraphBuilder::new(n);
    add_geometric_edges(&mut b, &positions, radius)?;
    let g = b.with_positions(positions.clone()).build_unchecked();
    bridge_to_connectivity(g, &positions).map(|g| g.normalized())
}

/// Bridges the nearest pair across components until `g` is connected.
/// Each round adds the bridge between component 0 and the rest that a
/// full `(i asc, j asc)` pair scan with a strict `<` would pick, but
/// scans only `|comp 0| × |rest|` pairs — when the sample is one giant
/// component plus a few stragglers (the typical supercritical case),
/// that is linear, not quadratic.
fn bridge_to_connectivity(mut g: Graph, positions: &[Point]) -> Result<Graph> {
    let n = g.node_count();
    loop {
        let comp = component_labels(&g);
        if comp.iter().copied().max().map(|m| m + 1).unwrap_or(0) <= 1 {
            return Ok(g);
        }
        let (inside, outside): (Vec<usize>, Vec<usize>) = (0..n).partition(|&i| comp[i] == 0);
        let mut best: Option<(usize, usize, f64)> = None;
        for &i in &inside {
            for &j in &outside {
                let d = positions[i].distance(&positions[j]).max(1e-9);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, d) = best.expect("multiple components imply a bridgeable pair");
        let mut b = GraphBuilder::new(n);
        for (a, c, w) in g.edges() {
            b.add_edge(a, c, w)?;
        }
        b.add_edge(NodeId::from_index(i), NodeId::from_index(j), d)?;
        g = b.with_positions(positions.to_vec()).build_unchecked();
    }
}

/// The grid sizes used throughout the paper's evaluation (≈10 → 1024
/// nodes). Returns `(rows, cols)` pairs.
pub fn paper_grid_sizes() -> Vec<(usize, usize)> {
    vec![
        (3, 3),
        (4, 4),
        (6, 6),
        (8, 8),
        (12, 12),
        (16, 16),
        (23, 23),
        (32, 32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure() {
        let g = grid(4, 5).unwrap();
        assert_eq!(g.node_count(), 20);
        // edges: rows*(cols-1) + (rows-1)*cols
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert!(g.is_connected());
        // corner has degree 2, interior degree 4
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(6)), 4);
        assert_eq!(g.position(NodeId(7)).unwrap(), Point::new(2.0, 1.0));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn ring_structure() {
        let g = ring(10).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 10);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.has_edge(NodeId(9), NodeId(0)));
    }

    #[test]
    fn line_structure() {
        let g = line(5).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        let g = random_tree(64, 7).unwrap();
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.edge_count(), 63);
        assert!(g.is_connected());
    }

    #[test]
    fn random_geometric_is_connected_and_normalized() {
        for seed in 0..3 {
            let g = random_geometric(80, 10.0, 1.8, seed).unwrap();
            assert!(g.is_connected(), "seed {seed}");
            let min = g.min_edge_weight().unwrap();
            assert!((min - 1.0).abs() < 1e-9, "seed {seed}: min weight {min}");
        }
    }

    #[test]
    fn bucketed_edges_match_the_naive_pair_scan() {
        // The spatial hash must reproduce the old O(n²) scan exactly:
        // same edges, same insertion order, same weights.
        for (n, side, radius, seed) in [
            (80usize, 10.0, 1.8, 0u64),
            (120, 6.0, 2.5, 3),
            (60, 30.0, 1.0, 7), // sparse: many singleton cells
            (50, 1.0, 2.0, 9),  // radius beyond the field: complete graph
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let positions: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
                .collect();
            let mut bucketed = GraphBuilder::new(n);
            add_geometric_edges(&mut bucketed, &positions, radius).unwrap();
            let mut naive = GraphBuilder::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = positions[i].distance(&positions[j]);
                    if d <= radius && d > 0.0 {
                        naive
                            .add_edge(NodeId::from_index(i), NodeId::from_index(j), d)
                            .unwrap();
                    }
                }
            }
            let gb = bucketed.build_unchecked();
            let gn = naive.build_unchecked();
            assert_eq!(
                gb.edges().collect::<Vec<_>>(),
                gn.edges().collect::<Vec<_>>(),
                "n={n} side={side} radius={radius} seed={seed}"
            );
        }
    }

    #[test]
    fn random_geometric_deterministic_per_seed() {
        let a = random_geometric(50, 10.0, 2.0, 42).unwrap();
        let b = random_geometric(50, 10.0, 2.0, 42).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn degenerate_sizes_rejected() {
        assert!(grid(0, 5).is_err());
        assert!(ring(2).is_err());
        assert!(line(0).is_err());
        assert!(torus(2, 5).is_err());
        assert!(random_tree(0, 1).is_err());
        assert!(random_geometric(0, 1.0, 1.0, 1).is_err());
    }

    #[test]
    fn perturbed_grid_keeps_topology_with_irregular_weights() {
        let g = perturbed_grid(5, 5, 0.3, 4).unwrap();
        assert_eq!(g.node_count(), 25);
        assert_eq!(g.edge_count(), 40);
        assert!(g.is_connected());
        let min = g.min_edge_weight().unwrap();
        assert!((min - 1.0).abs() < 1e-9, "normalized min weight, got {min}");
        // jitter must actually vary the weights
        let weights: Vec<f64> = g.edges().map(|(_, _, w)| w).collect();
        let spread = weights.iter().cloned().fold(f64::MIN, f64::max)
            - weights.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.01, "weights all equal despite jitter");
    }

    #[test]
    fn perturbed_grid_deterministic_per_seed() {
        let a = perturbed_grid(4, 4, 0.2, 9).unwrap();
        let b = perturbed_grid(4, 4, 0.2, 9).unwrap();
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "jitter must stay below half the spacing")]
    fn perturbed_grid_rejects_wild_jitter() {
        let _ = perturbed_grid(3, 3, 0.6, 1);
    }

    #[test]
    fn clustered_deployment_is_connected_and_clumped() {
        let g = clustered(120, 4, 20.0, 3.0, 11).unwrap();
        assert_eq!(g.node_count(), 120);
        assert!(g.is_connected());
        // clumping: mean degree well above a uniform deployment with the
        // same radius would give
        let uniform = random_geometric(120, 20.0, 3.0, 11).unwrap();
        let deg = |g: &Graph| 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            deg(&g) > deg(&uniform),
            "clusters should be denser: {} vs {}",
            deg(&g),
            deg(&uniform)
        );
    }

    #[test]
    fn clustered_rejects_degenerate_params() {
        assert!(clustered(0, 3, 10.0, 2.0, 1).is_err());
        assert!(clustered(10, 0, 10.0, 2.0, 1).is_err());
    }

    #[test]
    fn paper_sizes_span_10_to_1024() {
        let sizes = paper_grid_sizes();
        let ns: Vec<usize> = sizes.iter().map(|(r, c)| r * c).collect();
        assert!(*ns.first().unwrap() <= 10);
        assert_eq!(*ns.last().unwrap(), 1024);
        assert!(ns.windows(2).all(|w| w[0] < w[1]));
    }
}
