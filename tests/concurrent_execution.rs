//! Cross-crate tests of the concurrent execution engine (§4.1.2, §4.2.2).

use mot_tracking::prelude::*;

fn bed_and_workload(seed: u64) -> (TestBed, Workload) {
    let bed = TestBed::grid(8, 8, seed).unwrap();
    let w = WorkloadSpec::new(4, 80, seed + 1).generate(&bed.graph);
    (bed, w)
}

#[test]
fn single_inflight_equals_sequential_for_every_algorithm() {
    let (bed, w) = bed_and_workload(2);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    for algo in [Algo::Mot, Algo::Stun, Algo::Zdat] {
        let mut seq = bed.make_tracker(algo, &rates).unwrap();
        run_publish(seq.as_mut(), &w).unwrap();
        let s = replay_moves(seq.as_mut(), &w, &bed.oracle).unwrap();

        let mut con = bed.make_tracker(algo, &rates).unwrap();
        run_publish(con.as_mut(), &w).unwrap();
        let c = ConcurrentEngine::run(
            con.as_mut(),
            &w,
            &bed.oracle,
            &ConcurrentConfig {
                max_inflight_per_object: 1,
                queries_per_batch: 0,
                seed: 0,
            },
        )
        .unwrap();
        assert!(
            (c.maintenance.total - s.total).abs() < 1e-6,
            "{}: k=1 concurrent {} != sequential {}",
            algo.label(),
            c.maintenance.total,
            s.total
        );
    }
}

#[test]
fn concurrency_never_loses_operations() {
    let (bed, w) = bed_and_workload(5);
    let rates = DetectionRates::uniform(&bed.graph);
    for k in [2, 5, 10, 17] {
        let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        let out = ConcurrentEngine::run(
            t.as_mut(),
            &w,
            &bed.oracle,
            &ConcurrentConfig {
                max_inflight_per_object: k,
                queries_per_batch: 0,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(out.maintenance.operations, w.moves.len(), "k = {k}");
        assert!(out.maintenance.ratio() >= 1.0, "k = {k}");
    }
}

#[test]
fn concurrent_cost_at_least_sequential_cost() {
    // Racing requests climb at least as far as the sequential execution:
    // the total maintenance cost must not drop below one-by-one replay.
    let (bed, w) = bed_and_workload(7);
    let rates = DetectionRates::uniform(&bed.graph);

    let mut seq = bed.make_tracker(Algo::Mot, &rates).unwrap();
    run_publish(seq.as_mut(), &w).unwrap();
    let s = replay_moves(seq.as_mut(), &w, &bed.oracle).unwrap();

    let mut con = bed.make_tracker(Algo::Mot, &rates).unwrap();
    run_publish(con.as_mut(), &w).unwrap();
    let c =
        ConcurrentEngine::run(con.as_mut(), &w, &bed.oracle, &ConcurrentConfig::default()).unwrap();
    assert!(
        c.maintenance.total >= 0.5 * s.total,
        "concurrent total {} collapsed below sequential {}",
        c.maintenance.total,
        s.total
    );
}

#[test]
fn overlapping_queries_settle_for_all_algorithms() {
    let (bed, w) = bed_and_workload(9);
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    for algo in [
        Algo::Mot,
        Algo::MotLb,
        Algo::Stun,
        Algo::Zdat,
        Algo::ZdatShortcuts,
    ] {
        let mut t = bed.make_tracker(algo, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        let out = ConcurrentEngine::run(
            t.as_mut(),
            &w,
            &bed.oracle,
            &ConcurrentConfig {
                max_inflight_per_object: 8,
                queries_per_batch: 3,
                seed: 4,
            },
        )
        .unwrap();
        assert!(out.queries_issued > 0, "{}", algo.label());
        assert_eq!(
            out.queries_correct,
            out.queries_issued,
            "{}: some overlapping query never settled",
            algo.label()
        );
    }
}

#[test]
fn mot_invariants_survive_concurrency() {
    let (bed, w) = bed_and_workload(13);
    let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
    run_publish(&mut t, &w).unwrap();
    ConcurrentEngine::run(&mut t, &w, &bed.oracle, &ConcurrentConfig::default()).unwrap();
    t.check_invariants();
    // and the structure still answers every query correctly afterwards
    let q = run_queries(&t, &bed.oracle, 4, 200, 8).unwrap();
    assert_eq!(q.correct, 200);
}
