//! Error type for tracking operations.

use crate::object::ObjectId;
use mot_net::NodeId;
use std::fmt;

/// Errors raised by tracking structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// `move_object`/`query` on an object that was never published.
    UnknownObject(ObjectId),
    /// `publish` called twice for the same object (the paper applies
    /// publish exactly once per object).
    AlreadyPublished(ObjectId),
    /// A node id outside the network was used.
    UnknownNode(NodeId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownObject(o) => write!(f, "object {o} was never published"),
            CoreError::AlreadyPublished(o) => write!(f, "object {o} published twice"),
            CoreError::UnknownNode(u) => write!(f, "node {u} is not part of the network"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        assert!(CoreError::UnknownObject(ObjectId(3))
            .to_string()
            .contains('3'));
        assert!(CoreError::AlreadyPublished(ObjectId(9))
            .to_string()
            .contains('9'));
        assert!(CoreError::UnknownNode(NodeId(5)).to_string().contains('5'));
    }
}
