//! Incremental MIS/cluster repair under topology churn (§7).
//!
//! The paper argues that when sensors join or leave, the doubling
//! hierarchy can be *repaired* instead of rebuilt: a topology event at
//! `u` only disturbs level-`ℓ` clustering within `O(2^ℓ)` of `u`, and
//! packing yields O(1) affected members per level — O(log D) structural
//! updates per event, amortized O(1) per cluster level.
//!
//! [`build_doubling`](crate::build_doubling) cannot be repaired
//! incrementally *bit-identically*: Luby's MIS consumes one global
//! random stream whose layout depends on the whole topology, so any
//! local change reshuffles every later draw. [`RepairableHierarchy`]
//! therefore derives membership from a **deterministic local rule**: a
//! fixed hash priority per `(level, node)` and the greedy
//! lexicographically-first MIS ("in the set iff no higher-priority
//! in-set neighbor"). That fixpoint is unique and order-independent, so
//! a local recomputation around the event, cascaded in priority order,
//! lands on exactly the structure a from-scratch build on the final
//! topology produces — the bit-identity contract the differential
//! suites (`repair_differential`) enforce after every delta.
//!
//! Geometry predicates are byte-for-byte the ones the overlay builder
//! uses (DESIGN.md §13/§17): level-`ℓ` connectivity is
//! `q32(d) < 2^ℓ`, default parents minimize `(q32(d), id)` inside the
//! padded `2^{l+1}` cover ball, stations take `q32(d) ≤ ρ·2^l`.
//!
//! Every [`RepairableHierarchy::repair`] call consults the
//! **rebuild-vs-repair ledger**: it prices the repair up front from the
//! influence ball (membership candidates + parent/station recomputes)
//! and falls back to a from-scratch rebuild when the estimate reaches
//! half the measured cost of the last full build — so a pathological delta
//! can never cost more than `O(build)`, and the amortized per-event
//! unit counts the `churn` experiment reports stay honest.

use crate::config::OverlayConfig;
use mot_net::delta::{ChurnEvent, TopologyDelta};
use mot_net::{DijkstraWorkspace, Graph, NetError, NodeId, Result};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Same padding as the overlay builder: `<=` predicates on
/// f32-quantized distances must over-collect by more than half an f32
/// ulp before the exact quantized filter runs.
const BALL_PAD: f64 = 1.0 + 1e-6;

/// Quantizes through `f32` exactly like the oracle backends and the
/// overlay builder.
#[inline]
fn q32(d: f64) -> f64 {
    d as f32 as f64
}

/// SplitMix64 — the fixed per-`(level, node)` priority hash. Stateless,
/// so membership priorities survive any number of topology deltas.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Priority of node `u` in the level-`ℓ` MIS; ties cannot occur because
/// comparisons always pair the hash with the node id.
#[inline]
fn prio(seed: u64, level: usize, u: u32) -> u64 {
    splitmix(splitmix(seed ^ (level as u64)) ^ u as u64)
}

/// What [`RepairableHierarchy::repair`] decided for one delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairDecision {
    /// The delta was absorbed by localized repair.
    Repaired,
    /// The ledger judged repair no cheaper than a rebuild and rebuilt
    /// from scratch (bit-identical by construction).
    Rebuilt,
}

/// Per-delta outcome of [`RepairableHierarchy::repair`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// Repair or rebuild fallback.
    pub decision: RepairDecision,
    /// Structural units actually spent (membership decisions + parent
    /// recomputations + station rebuilds).
    pub units: u64,
    /// The up-front estimate the ledger priced the delta at.
    pub estimated_units: u64,
    /// Cluster memberships that changed across all levels — the §7
    /// "cluster update" count.
    pub membership_flips: u64,
    /// Default-parent entries recomputed.
    pub parents_recomputed: u64,
    /// Station sets rebuilt.
    pub stations_rebuilt: u64,
}

/// Cumulative rebuild-vs-repair accounting across a delta sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairLedger {
    /// Deltas absorbed.
    pub deltas: u64,
    /// Individual leave/join events absorbed.
    pub events: u64,
    /// Deltas absorbed by localized repair.
    pub repairs: u64,
    /// Deltas that fell back to a full rebuild.
    pub rebuilds: u64,
    /// Units spent in localized repairs.
    pub repaired_units: u64,
    /// Units spent in fallback rebuilds.
    pub rebuild_units: u64,
    /// Membership flips across all repairs (§7's per-cluster events).
    pub membership_flips: u64,
    /// Nodes settled by repair-scoping Dijkstra balls.
    pub settled_nodes: u64,
}

impl RepairLedger {
    /// Amortized structural units per absorbed event (repairs and
    /// rebuild fallbacks both counted) — the number the `churn`
    /// experiment compares against the §7 bound.
    pub fn amortized_units_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        (self.repaired_units + self.rebuild_units) as f64 / self.events as f64
    }
}

/// Query-visible structure of a hierarchy, for bit-identity checks:
/// two hierarchies answer every membership/parent/station query
/// identically iff their snapshots are equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchySnapshot {
    /// Sorted members per level.
    pub levels: Vec<Vec<NodeId>>,
    /// Per level `l < height`: sorted `(member, default parent)` pairs.
    pub parents: Vec<Vec<(u32, u32)>>,
    /// Per level `1..=height`: sorted `(home, station)` pairs.
    pub stations: Vec<Vec<(u32, Vec<NodeId>)>>,
}

/// The level/parent/station state produced by one construction pass.
struct Core {
    levels: Vec<Vec<NodeId>>,
    in_level: Vec<Vec<bool>>,
    parent_of: Vec<Vec<u32>>,
    stations: Vec<HashMap<u32, Vec<NodeId>>>,
    units: u64,
}

/// A doubling hierarchy that absorbs topology deltas in place.
///
/// Owns a private copy of the graph; feed the same deltas to every
/// consumer (graph, oracle, hierarchy) to keep them in sync. See the
/// module docs for the repair rule and the bit-identity contract.
///
/// # Example: repair equals rebuild, delta by delta
///
/// ```
/// use mot_hierarchy::{OverlayConfig, RepairableHierarchy};
/// use mot_net::{generators, ChurnSchedule, ChurnSpec};
///
/// let g = generators::grid(6, 6)?;
/// let cfg = OverlayConfig::practical();
/// let mut hier = RepairableHierarchy::build(&g, &cfg, 7)?;
///
/// let sched = ChurnSchedule::generate(&g, &ChurnSpec::new(8, 4, 3))?;
/// let mut live = g.clone();
/// for delta in sched.deltas() {
///     delta.apply(&mut live)?;
///     hier.repair(delta)?;
///     // The repaired structure is bit-identical to a from-scratch
///     // build on the final topology — the §7 correctness contract.
///     let rebuilt = RepairableHierarchy::build(&live, &cfg, 7)?;
///     assert_eq!(hier.snapshot(), rebuilt.snapshot());
/// }
/// assert!(hier.ledger().events >= 8);
/// # Ok::<(), mot_net::NetError>(())
/// ```
pub struct RepairableHierarchy {
    g: Graph,
    cfg: OverlayConfig,
    seed: u64,
    levels: Vec<Vec<NodeId>>,
    /// `in_level[l][u]` ⇔ `u ∈ levels[l]` (index by node id).
    in_level: Vec<Vec<bool>>,
    /// `parent_of[l][u]` = default parent of level-`l` member `u` in
    /// level `l+1` (`u32::MAX` for non-members); `len == height`.
    parent_of: Vec<Vec<u32>>,
    /// `stations[l]` maps a level-`l-1` home to its level-`l` station;
    /// `stations[0]` is empty (level-0 stations are the nodes
    /// themselves); `len == height + 1`.
    stations: Vec<HashMap<u32, Vec<NodeId>>>,
    /// Measured unit cost of the last full construction — the ledger's
    /// rebuild price.
    full_build_units: u64,
    ledger: RepairLedger,
    ws: DijkstraWorkspace,
}

impl RepairableHierarchy {
    /// Builds the hierarchy from scratch on the graph's current active
    /// topology. Errors if no node is active or the active topology is
    /// disconnected. `seed` salts the per-`(level, node)` priority
    /// hashes; equal seeds yield equal hierarchies.
    pub fn build(g: &Graph, cfg: &OverlayConfig, seed: u64) -> Result<Self> {
        if g.active_count() == 0 {
            return Err(NetError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(NetError::Disconnected);
        }
        let g = g.clone();
        let mut ws = DijkstraWorkspace::with_capacity(g.node_count());
        let core = construct(&g, cfg, seed, &mut ws);
        Ok(RepairableHierarchy {
            cfg: cfg.clone(),
            seed,
            levels: core.levels,
            in_level: core.in_level,
            parent_of: core.parent_of,
            stations: core.stations,
            full_build_units: core.units,
            ledger: RepairLedger::default(),
            ws,
            g,
        })
    }

    /// The hierarchy's private graph copy (reflects every absorbed
    /// delta).
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Top level index `h`.
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The single root node.
    pub fn root(&self) -> NodeId {
        self.levels[self.height()][0]
    }

    /// Sorted members of level `l`.
    pub fn level_members(&self, l: usize) -> &[NodeId] {
        &self.levels[l]
    }

    /// True when `u` is a level-`l` member.
    pub fn is_member(&self, l: usize, u: NodeId) -> bool {
        self.in_level[l][u.index()]
    }

    /// Default parent of level-`l` member `u` in level `l+1`.
    pub fn parent(&self, l: usize, u: NodeId) -> Option<NodeId> {
        let p = *self.parent_of.get(l)?.get(u.index())?;
        (p != u32::MAX).then_some(NodeId(p))
    }

    /// The level-`l` station shared by every node whose detection path
    /// passes through the level-`l-1` home `home`.
    pub fn station_of_home(&self, l: usize, home: NodeId) -> Option<&[NodeId]> {
        self.stations.get(l)?.get(&home.0).map(Vec::as_slice)
    }

    /// The level-`l` station on the detection path of active sensor
    /// `u` (level 0 is the sensor itself), walking the default-parent
    /// home chain exactly like the overlay builder.
    ///
    /// # Panics
    /// Panics if `u` is inactive or `l > height()`.
    pub fn station(&self, u: NodeId, l: usize) -> Vec<NodeId> {
        assert!(self.g.is_active(u), "station of inactive sensor {u}");
        if l == 0 {
            return vec![u];
        }
        let mut home = u;
        for step in 0..l - 1 {
            home = NodeId(self.parent_of[step][home.index()]);
        }
        self.stations[l][&home.0].clone()
    }

    /// Cumulative rebuild-vs-repair accounting.
    pub fn ledger(&self) -> RepairLedger {
        self.ledger
    }

    /// Measured unit cost of the last full construction — what the
    /// ledger prices a rebuild fallback at.
    pub fn full_build_units(&self) -> u64 {
        self.full_build_units
    }

    /// The query-visible structure, for bit-identity comparisons.
    pub fn snapshot(&self) -> HierarchySnapshot {
        let parents = self
            .parent_of
            .iter()
            .enumerate()
            .map(|(l, pars)| {
                self.levels[l]
                    .iter()
                    .map(|&u| (u.0, pars[u.index()]))
                    .collect()
            })
            .collect();
        let stations = (1..self.levels.len())
            .map(|l| {
                let mut per: Vec<(u32, Vec<NodeId>)> = self.stations[l]
                    .iter()
                    .map(|(&h, s)| (h, s.clone()))
                    .collect();
                per.sort_unstable_by_key(|&(h, _)| h);
                per
            })
            .collect();
        HierarchySnapshot {
            levels: self.levels.clone(),
            parents,
            stations,
        }
    }

    /// Absorbs one topology delta, repairing the hierarchy in place —
    /// or rebuilding, when the ledger prices repair at no less than a
    /// full build. Either way the result is bit-identical to
    /// [`RepairableHierarchy::build`] on the post-delta topology.
    pub fn repair(&mut self, delta: &TopologyDelta) -> Result<RepairReport> {
        let mut report = RepairReport {
            decision: RepairDecision::Repaired,
            units: 0,
            estimated_units: 0,
            membership_flips: 0,
            parents_recomputed: 0,
            stations_rebuilt: 0,
        };
        for ev in &delta.events {
            self.absorb_event(ev, &mut report)?;
            self.ledger.events += 1;
        }
        self.ledger.deltas += 1;
        match report.decision {
            RepairDecision::Repaired => {
                self.ledger.repairs += 1;
                self.ledger.repaired_units += report.units;
            }
            RepairDecision::Rebuilt => {
                self.ledger.rebuilds += 1;
                self.ledger.rebuild_units += report.units;
            }
        }
        self.ledger.membership_flips += report.membership_flips;
        Ok(report)
    }

    /// Applies one event to the owned graph and repairs around it.
    fn absorb_event(&mut self, ev: &ChurnEvent, report: &mut RepairReport) -> Result<()> {
        let u = ev.node();
        let rho = self.cfg.parent_set_radius_mult;
        // One scoping ball per event, at the largest radius any level's
        // predicate can reach. Leaves scope on the pre-removal graph
        // (stale shortest paths ran *through* u); joins on the
        // post-restore graph (new shortest paths run through u).
        let r_top = (1u64 << (self.height() + 1)) as f64 * rho.max(1.0) * BALL_PAD;
        let influence: Vec<(f64, NodeId)>;
        match ev {
            ChurnEvent::Leave(node) => {
                self.ws.bounded_ball(&self.g, *node, r_top);
                influence = self
                    .ws
                    .settled()
                    .iter()
                    .map(|&v| (self.ws.dist(v), v))
                    .collect();
                self.g.remove_node(*node)?;
            }
            ChurnEvent::Join { node, edges } => {
                self.g.restore_node(*node, edges)?;
                self.ws.bounded_ball(&self.g, *node, r_top);
                influence = self
                    .ws
                    .settled()
                    .iter()
                    .map(|&v| (self.ws.dist(v), v))
                    .collect();
            }
        }
        self.ledger.settled_nodes += influence.len() as u64;
        if self.g.active_count() == 0 {
            return Err(NetError::EmptyGraph);
        }

        // --- rebuild-vs-repair ledger decision --------------------------
        // Price the repair from the influence ball: membership
        // candidates at 2^ℓ per level, parent recomputes at 2^{l+1},
        // station rebuilds at ρ·2^l. Cascades can exceed the estimate,
        // but packing keeps them the same order.
        let mut est: u64 = 1;
        for l in 1..=self.height() {
            let mem_r = (1u64 << l) as f64;
            let par_r = (1u64 << l) as f64 * BALL_PAD;
            let sta_r = rho * (1u64 << l) as f64 * BALL_PAD;
            for &(d, v) in &influence {
                if d <= mem_r && self.in_level[l - 1][v.index()] {
                    est += 1;
                }
                if l < self.levels.len() && d <= par_r && self.in_level[l - 1][v.index()] {
                    est += 1;
                }
                if d <= sta_r && self.in_level[l - 1][v.index()] {
                    est += 1;
                }
            }
        }
        report.estimated_units += est;
        // Break-even at half the measured build cost: the estimate
        // deliberately excludes cascade overshoot and flip-neighborhood
        // rescans, which in practice roughly double the priced work.
        if est.saturating_mul(2) >= self.full_build_units.max(1) {
            // Repair would cost a rebuild: do the rebuild.
            let core = construct(&self.g, &self.cfg, self.seed, &mut self.ws);
            report.units += core.units;
            report.decision = RepairDecision::Rebuilt;
            self.levels = core.levels;
            self.in_level = core.in_level;
            self.parent_of = core.parent_of;
            self.stations = core.stations;
            self.full_build_units = core.units;
            return Ok(());
        }

        self.repair_around(u, matches!(ev, ChurnEvent::Leave(_)), &influence, report);
        Ok(())
    }

    /// Localized repair: membership cascade per level, then scoped
    /// parent/station recomputation.
    fn repair_around(
        &mut self,
        u: NodeId,
        is_leave: bool,
        influence: &[(f64, NodeId)],
        report: &mut RepairReport,
    ) {
        let n = self.g.node_count();
        // --- level 0: the active set -------------------------------------
        let mut flipped: Vec<Vec<NodeId>> = vec![vec![u]];
        if is_leave {
            self.in_level[0][u.index()] = false;
            if let Ok(i) = self.levels[0].binary_search(&u) {
                self.levels[0].remove(i);
            }
        } else {
            self.in_level[0][u.index()] = true;
            if let Err(i) = self.levels[0].binary_search(&u) {
                self.levels[0].insert(i, u);
            }
        }
        report.membership_flips += 1;

        // --- membership repair, level by level ---------------------------
        let mut level = 1usize;
        while level < self.levels.len() {
            let radius = (1u64 << level) as f64;
            let key = |v: u32| (prio(self.seed, level, v), v);
            // Seeds: influence candidates within 2^ℓ plus lower-level
            // flips (membership of a seed's neighbors-or-self changed).
            let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
            let mut queued = vec![false; n];
            for &(d, v) in influence {
                if d > radius {
                    break;
                }
                if self.in_level[level - 1][v.index()] && !queued[v.index()] {
                    queued[v.index()] = true;
                    heap.push(key(v.0));
                }
            }
            for &f in &flipped[level - 1] {
                if !queued[f.index()] {
                    queued[f.index()] = true;
                    heap.push(key(f.0));
                }
            }
            let mut processed = vec![false; n];
            let mut flips: Vec<NodeId> = Vec::new();
            let mut neigh: Vec<NodeId> = Vec::new();
            while let Some((p, vi)) = heap.pop() {
                let v = NodeId(vi);
                if processed[v.index()] {
                    continue;
                }
                processed[v.index()] = true;
                report.units += 1;
                // Recompute v's greedy-MIS decision: in the set iff a
                // level-(ℓ-1) member with no higher-key in-set
                // E-neighbor. Heap order guarantees every higher-key
                // neighbor is final by now.
                let mut decision = self.in_level[level - 1][v.index()];
                neigh.clear();
                if decision || self.in_level[level][v.index()] {
                    self.ws.bounded_ball(&self.g, v, radius);
                    self.ledger.settled_nodes += self.ws.settled().len() as u64;
                    for &w in self.ws.settled() {
                        if w != v
                            && self.in_level[level - 1][w.index()]
                            && q32(self.ws.dist(w)) < radius
                        {
                            neigh.push(w);
                        }
                    }
                    if decision {
                        decision = !neigh
                            .iter()
                            .any(|&w| key(w.0) > (p, vi) && self.in_level[level][w.index()]);
                    }
                }
                if decision != self.in_level[level][v.index()] {
                    self.in_level[level][v.index()] = decision;
                    flips.push(v);
                    report.membership_flips += 1;
                    // The flip can free or block strictly lower-key
                    // E-neighbors; cascade to them.
                    for &w in &neigh {
                        if key(w.0) < (p, vi) && !processed[w.index()] && !queued[w.index()] {
                            queued[w.index()] = true;
                            heap.push(key(w.0));
                        }
                    }
                }
            }
            // Fold flips into the sorted member list.
            for &f in &flips {
                if self.in_level[level][f.index()] {
                    if let Err(i) = self.levels[level].binary_search(&f) {
                        self.levels[level].insert(i, f);
                    }
                } else if let Ok(i) = self.levels[level].binary_search(&f) {
                    self.levels[level].remove(i);
                }
            }
            flipped.push(flips);
            if self.levels[level].len() == 1 {
                // From-scratch construction stops at the first
                // singleton level: truncate anything above it.
                self.levels.truncate(level + 1);
                self.in_level.truncate(level + 1);
                self.parent_of.truncate(level);
                self.stations.truncate(level + 1);
                break;
            }
            level += 1;
        }
        // --- height growth ----------------------------------------------
        // If the top level still has several members, extend with
        // from-scratch levels (they are tiny; no influence scoping
        // needed — the construction is exact at any scale).
        while self.levels.last().map(Vec::len) != Some(1) {
            let level = self.levels.len();
            let prev = &self.levels[level - 1];
            report.units += prev.len() as u64;
            let (members, flags) = build_level(
                &self.g,
                prev,
                level,
                self.seed,
                n,
                &mut self.ws,
                &mut self.ledger.settled_nodes,
            );
            // Everything in a brand-new level "flipped in".
            flipped.push(members.clone());
            report.membership_flips += members.len() as u64;
            self.levels.push(members);
            self.in_level.push(flags);
            self.parent_of.push(vec![u32::MAX; n]);
            self.stations.push(HashMap::new());
            assert!(self.levels.len() <= 66, "repair did not converge to a root");
        }
        while flipped.len() < self.levels.len() {
            flipped.push(Vec::new());
        }
        let height = self.levels.len() - 1;
        self.parent_of.truncate(height);
        while self.parent_of.len() < height {
            self.parent_of.push(vec![u32::MAX; n]);
        }
        self.stations.truncate(height + 1);
        while self.stations.len() < height + 1 {
            self.stations.push(HashMap::new());
        }

        // --- scoped parent + station recomputation -----------------------
        let rho = self.cfg.parent_set_radius_mult;
        let mut ball_cache: Vec<NodeId> = Vec::new();
        for l in 0..height {
            let cover = (1u64 << (l + 1)) as f64;
            // Affected members: distance-disturbed within the padded
            // cover radius, membership flips at l (need/lose a parent),
            // and members near a flipped level-(l+1) node (their argmin
            // candidate set changed).
            let mut affected: Vec<NodeId> = Vec::new();
            let mut seen = vec![false; n];
            for &(d, v) in influence {
                if d > cover * BALL_PAD {
                    break;
                }
                if self.in_level[l][v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    affected.push(v);
                }
            }
            for &f in &flipped[l] {
                if !self.in_level[l][f.index()] {
                    self.parent_of[l][f.index()] = u32::MAX;
                } else if !seen[f.index()] {
                    seen[f.index()] = true;
                    affected.push(f);
                }
            }
            for &f in &flipped[l + 1] {
                self.ws.bounded_ball(&self.g, f, cover * BALL_PAD);
                self.ledger.settled_nodes += self.ws.settled().len() as u64;
                ball_cache.clear();
                ball_cache.extend_from_slice(self.ws.settled());
                for &v in &ball_cache {
                    if self.in_level[l][v.index()] && !seen[v.index()] {
                        seen[v.index()] = true;
                        affected.push(v);
                    }
                }
            }
            for &w in &affected {
                let p = compute_parent(
                    &self.g,
                    w,
                    &self.in_level[l + 1],
                    cover,
                    &mut self.ws,
                    &mut self.ledger.settled_nodes,
                );
                self.parent_of[l][w.index()] = p;
                report.parents_recomputed += 1;
                report.units += 1;
            }
        }

        for l in 1..=height {
            let radius = rho * (1u64 << l) as f64;
            let reach = ((1u64 << l) as f64).max(radius) * BALL_PAD;
            let mut homes: Vec<NodeId> = Vec::new();
            let mut seen = vec![false; n];
            for &(d, v) in influence {
                if d > reach {
                    break;
                }
                if self.in_level[l - 1][v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    homes.push(v);
                }
            }
            for &f in &flipped[l - 1] {
                if !self.in_level[l - 1][f.index()] {
                    self.stations[l].remove(&f.0);
                } else if !seen[f.index()] {
                    seen[f.index()] = true;
                    homes.push(f);
                }
            }
            for &f in &flipped[l] {
                self.ws.bounded_ball(&self.g, f, reach);
                self.ledger.settled_nodes += self.ws.settled().len() as u64;
                ball_cache.clear();
                ball_cache.extend_from_slice(self.ws.settled());
                for &v in &ball_cache {
                    if self.in_level[l - 1][v.index()] && !seen[v.index()] {
                        seen[v.index()] = true;
                        homes.push(v);
                    }
                }
            }
            // Homes whose default parent changed pick up a new station
            // member even when no distance near them moved.
            for &home in &self.levels[l - 1] {
                if seen[home.index()] {
                    continue;
                }
                let dp = self.parent_of[l - 1][home.index()];
                let stale = self.stations[l].get(&home.0).is_none_or(|s| {
                    s.binary_search(&NodeId(dp)).is_err()
                        || s.iter().any(|m| !self.in_level[l][m.index()])
                });
                if stale {
                    seen[home.index()] = true;
                    homes.push(home);
                }
            }
            for &home in &homes {
                let station = compute_station(
                    &self.g,
                    home,
                    &self.in_level[l],
                    radius,
                    NodeId(self.parent_of[l - 1][home.index()]),
                    &mut self.ws,
                    &mut self.ledger.settled_nodes,
                );
                self.stations[l].insert(home.0, station);
                report.stations_rebuilt += 1;
                report.units += 1;
            }
        }
    }
}

/// One from-scratch MIS level over `prev` (greedy lexicographically
/// first by `(prio, id)`), returning sorted members and the membership
/// flags.
fn build_level(
    g: &Graph,
    prev: &[NodeId],
    level: usize,
    seed: u64,
    n: usize,
    ws: &mut DijkstraWorkspace,
    settled: &mut u64,
) -> (Vec<NodeId>, Vec<bool>) {
    let radius = (1u64 << level) as f64;
    let mut in_prev = vec![false; n];
    for &v in prev {
        in_prev[v.index()] = true;
    }
    let mut order: Vec<(u64, u32)> = prev
        .iter()
        .map(|&v| (prio(seed, level, v.0), v.0))
        .collect();
    order.sort_unstable_by(|a, b| b.cmp(a));
    let mut flags = vec![false; n];
    for &(_, vi) in &order {
        let v = NodeId(vi);
        ws.bounded_ball(g, v, radius);
        *settled += ws.settled().len() as u64;
        // Greedy in key order: any already-selected E-neighbor has a
        // higher key, so "no selected E-neighbor" is the full rule.
        let free = !ws
            .settled()
            .iter()
            .any(|&w| w != v && in_prev[w.index()] && flags[w.index()] && q32(ws.dist(w)) < radius);
        if free {
            flags[vi as usize] = true;
        }
    }
    let mut members: Vec<NodeId> = prev.iter().copied().filter(|v| flags[v.index()]).collect();
    members.sort_unstable();
    (members, flags)
}

/// The overlay builder's default-parent rule: `(q32(dist), id)` minimum
/// over next-level members inside the padded cover ball.
fn compute_parent(
    g: &Graph,
    w: NodeId,
    upper: &[bool],
    cover: f64,
    ws: &mut DijkstraWorkspace,
    settled: &mut u64,
) -> u32 {
    ws.bounded_ball(g, w, cover * BALL_PAD);
    *settled += ws.settled().len() as u64;
    ws.settled()
        .iter()
        .filter(|&&v| upper[v.index()])
        .map(|&v| (q32(ws.dist(v)), v))
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
        .map(|(_, v)| v.0)
        .expect("MIS maximality guarantees a covering parent")
}

/// The overlay builder's station rule: next-level members with
/// `q32(d) ≤ ρ·2^l`, default parent always included, sorted by id.
fn compute_station(
    g: &Graph,
    home: NodeId,
    upper: &[bool],
    radius: f64,
    dp: NodeId,
    ws: &mut DijkstraWorkspace,
    settled: &mut u64,
) -> Vec<NodeId> {
    ws.bounded_ball(g, home, radius * BALL_PAD);
    *settled += ws.settled().len() as u64;
    let mut station: Vec<NodeId> = ws
        .settled()
        .iter()
        .copied()
        .filter(|&v| upper[v.index()] && q32(ws.dist(v)) <= radius)
        .collect();
    if !station.contains(&dp) {
        station.push(dp);
    }
    station.sort();
    station
}

/// Full construction pass (used by `build` and the rebuild fallback).
fn construct(g: &Graph, cfg: &OverlayConfig, seed: u64, ws: &mut DijkstraWorkspace) -> Core {
    let n = g.node_count();
    let mut units: u64 = 1;
    let mut settled: u64 = 0;
    let active: Vec<NodeId> = g.active_nodes().collect();
    let mut in_level: Vec<Vec<bool>> = vec![vec![false; n]];
    for &v in &active {
        in_level[0][v.index()] = true;
    }
    let mut levels: Vec<Vec<NodeId>> = vec![active];
    for level in 1..=64usize {
        if levels[level - 1].len() == 1 {
            break;
        }
        units += levels[level - 1].len() as u64;
        let (members, flags) = build_level(g, &levels[level - 1], level, seed, n, ws, &mut settled);
        levels.push(members);
        in_level.push(flags);
    }
    assert_eq!(
        levels.last().map(Vec::len),
        Some(1),
        "hash-priority MIS construction did not converge to a root"
    );
    let height = levels.len() - 1;

    let mut parent_of: Vec<Vec<u32>> = Vec::with_capacity(height);
    for l in 0..height {
        let cover = (1u64 << (l + 1)) as f64;
        let mut parents = vec![u32::MAX; n];
        for &w in &levels[l] {
            parents[w.index()] = compute_parent(g, w, &in_level[l + 1], cover, ws, &mut settled);
            units += 1;
        }
        parent_of.push(parents);
    }

    let mut stations: Vec<HashMap<u32, Vec<NodeId>>> = Vec::with_capacity(height + 1);
    stations.push(HashMap::new());
    for l in 1..=height {
        let radius = cfg.parent_set_radius_mult * (1u64 << l) as f64;
        let mut per: HashMap<u32, Vec<NodeId>> = HashMap::with_capacity(levels[l - 1].len());
        for &home in &levels[l - 1] {
            let dp = NodeId(parent_of[l - 1][home.index()]);
            per.insert(
                home.0,
                compute_station(g, home, &in_level[l], radius, dp, ws, &mut settled),
            );
            units += 1;
        }
        stations.push(per);
    }
    Core {
        levels,
        in_level,
        parent_of,
        stations,
        units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;

    #[test]
    fn build_matches_doubling_invariants() {
        let g = generators::grid(8, 8).unwrap();
        let h = RepairableHierarchy::build(&g, &OverlayConfig::practical(), 7).unwrap();
        assert_eq!(h.level_members(h.height()).len(), 1);
        assert_eq!(h.level_members(0).len(), 64);
        // Nested independent sets with 2^l separation (same predicate
        // family as build_doubling; checked via fresh Dijkstra).
        let m = mot_net::DenseOracle::build(&g).unwrap();
        for l in 1..=h.height() {
            let cur = h.level_members(l);
            for &v in cur {
                assert!(h.is_member(l - 1, v));
            }
            let sep = (1u64 << l) as f64;
            for (i, &a) in cur.iter().enumerate() {
                for &b in &cur[i + 1..] {
                    assert!(m.dist(a, b) >= sep, "level {l}: {a},{b}");
                }
            }
        }
        // Every member has a covering default parent.
        for l in 0..h.height() {
            let cover = (1u64 << (l + 1)) as f64;
            for &w in h.level_members(l) {
                let p = h.parent(l, w).unwrap();
                assert!(h.is_member(l + 1, p));
                assert!(m.dist(w, p) < cover + 1e-6);
            }
        }
        // Stations exist for every home, sorted, containing the
        // default parent.
        for l in 1..=h.height() {
            for &home in h.level_members(l - 1) {
                let s = h.station_of_home(l, home).unwrap();
                assert!(!s.is_empty());
                assert!(s.windows(2).all(|w| w[0] < w[1]));
                let dp = h.parent(l - 1, home).unwrap();
                assert!(s.contains(&dp));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(7, 7).unwrap();
        let a = RepairableHierarchy::build(&g, &OverlayConfig::practical(), 3).unwrap();
        let b = RepairableHierarchy::build(&g, &OverlayConfig::practical(), 3).unwrap();
        let c = RepairableHierarchy::build(&g, &OverlayConfig::practical(), 4).unwrap();
        assert_eq!(a.snapshot(), b.snapshot());
        assert_ne!(a.snapshot(), c.snapshot());
    }

    #[test]
    fn station_chain_matches_home_walk() {
        let g = generators::grid(6, 6).unwrap();
        let h = RepairableHierarchy::build(&g, &OverlayConfig::practical(), 11).unwrap();
        let u = NodeId(0);
        assert_eq!(h.station(u, 0), vec![u]);
        let top = h.station(u, h.height());
        assert_eq!(top, vec![h.root()]);
    }

    #[test]
    fn single_active_node_degenerates() {
        let g = generators::line(1).unwrap();
        let h = RepairableHierarchy::build(&g, &OverlayConfig::practical(), 1).unwrap();
        assert_eq!(h.height(), 0);
        assert_eq!(h.root(), NodeId(0));
    }

    #[test]
    fn tiny_graph_deltas_fall_back_to_rebuild() {
        // On a 4-node line the influence ball is the whole graph: the
        // estimate reaches the full-build cost and the ledger must
        // choose rebuild — and the result still matches from-scratch.
        let g = generators::line(4).unwrap();
        let cfg = OverlayConfig::practical();
        let mut h = RepairableHierarchy::build(&g, &cfg, 5).unwrap();
        let mut live = g.clone();
        let delta = TopologyDelta::leave(NodeId(3));
        live.remove_node(NodeId(3)).unwrap();
        let report = h.repair(&delta).unwrap();
        assert_eq!(report.decision, RepairDecision::Rebuilt);
        let fresh = RepairableHierarchy::build(&live, &cfg, 5).unwrap();
        assert_eq!(h.snapshot(), fresh.snapshot());
        assert_eq!(h.ledger().rebuilds, 1);
    }

    #[test]
    fn ledger_amortized_accounting() {
        let g = generators::grid(6, 6).unwrap();
        let cfg = OverlayConfig::practical();
        let mut h = RepairableHierarchy::build(&g, &cfg, 2).unwrap();
        let sched =
            mot_net::ChurnSchedule::generate(&g, &mot_net::ChurnSpec::new(10, 4, 8)).unwrap();
        for d in sched.deltas() {
            h.repair(d).unwrap();
        }
        let ledger = h.ledger();
        assert_eq!(ledger.deltas, 10);
        assert_eq!(ledger.events, 10);
        assert_eq!(ledger.repairs + ledger.rebuilds, 10);
        assert!(ledger.amortized_units_per_event() > 0.0);
        assert!(ledger.membership_flips >= 10, "{ledger:?}");
    }
}
