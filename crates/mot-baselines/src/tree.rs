//! Message-pruning-tree semantics shared by every baseline.
//!
//! A tracking tree spans all sensors. For each object, the nodes holding
//! it in their detection sets are exactly the tree ancestors of its proxy.
//! A move climbs from the new proxy to the lowest ancestor that already
//! knows the object (the LCA with the old proxy's path), then prunes the
//! stale branch downward; a query climbs to the first ancestor that knows
//! the object and descends the detection chain. Tree edges may be logical
//! (representative-to-representative), so each hop costs the shortest-path
//! distance between its endpoints.

use mot_core::{
    CoreError, LedgerKind, MoveOutcome, ObjectId, OpKind, QueryResult, TraceEvent, TracePhase,
    TraceSink, Tracker,
};
use mot_net::{DistanceOracle, NodeId};
use std::collections::{HashMap, HashSet};

/// A rooted spanning tree over the sensor nodes.
#[derive(Clone, Debug)]
pub struct TrackingTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl TrackingTree {
    /// Assembles and validates a tree from a parent array
    /// (`parent[root] = None`, every node must reach the root).
    ///
    /// # Panics
    /// Panics if the parent array contains a cycle, a second root, or a
    /// node that cannot reach the root.
    pub fn from_parents(root: NodeId, parent: Vec<Option<NodeId>>) -> Self {
        let n = parent.len();
        assert!(root.index() < n, "root out of range");
        assert!(parent[root.index()].is_none(), "root must have no parent");
        let mut children = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId::from_index(i));
            } else {
                assert_eq!(i, root.index(), "second root at node {i}");
            }
        }
        for ch in &mut children {
            ch.sort();
        }
        // depth by walking up (also detects cycles / unreachable nodes)
        let mut depth = vec![usize::MAX; n];
        depth[root.index()] = 0;
        for start in 0..n {
            let mut chain = Vec::new();
            let mut cur = start;
            while depth[cur] == usize::MAX {
                chain.push(cur);
                assert!(chain.len() <= n, "cycle through node {start}");
                cur = parent[cur].expect("non-root node missing parent").index();
            }
            let base = depth[cur];
            for (k, &node) in chain.iter().rev().enumerate() {
                depth[node] = base + k + 1;
            }
        }
        TrackingTree {
            root,
            parent,
            children,
            depth,
        }
    }

    /// The sink/root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Always false — trees span the whole (non-empty) network.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tree parent of `u` (None for the root).
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()]
    }

    /// Tree children of `u`, sorted by id.
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u.index()]
    }

    /// Hop depth of `u` below the root.
    pub fn depth(&self, u: NodeId) -> usize {
        self.depth[u.index()]
    }

    /// Tree-path distance from `u` to the root, with each tree hop costed
    /// at the graph shortest-path distance between its endpoints.
    pub fn dist_to_root(&self, u: NodeId, m: &dyn DistanceOracle) -> f64 {
        let mut cost = 0.0;
        let mut cur = u;
        while let Some(p) = self.parent(cur) {
            cost += m.dist(cur, p);
            cur = p;
        }
        cost
    }

    /// Tree-path distance between two nodes (through their LCA), with
    /// each tree hop costed at the graph shortest-path distance.
    pub fn tree_distance(&self, u: NodeId, v: NodeId, m: &dyn DistanceOracle) -> f64 {
        let (mut a, mut b) = (u, v);
        let mut cost = 0.0;
        while self.depth(a) > self.depth(b) {
            let p = self.parent(a).expect("deeper node has a parent");
            cost += m.dist(a, p);
            a = p;
        }
        while self.depth(b) > self.depth(a) {
            let p = self.parent(b).expect("deeper node has a parent");
            cost += m.dist(b, p);
            b = p;
        }
        while a != b {
            let (pa, pb) = (self.parent(a).unwrap(), self.parent(b).unwrap());
            cost += m.dist(a, pa) + m.dist(b, pb);
            a = pa;
            b = pb;
        }
        cost
    }

    /// Maximum *deviation* over all nodes: tree distance to root minus
    /// graph distance to root (zero for a deviation-avoidance tree).
    pub fn max_deviation(&self, m: &dyn DistanceOracle) -> f64 {
        (0..self.len())
            .map(NodeId::from_index)
            .map(|u| self.dist_to_root(u, m) - m.dist(u, self.root))
            .fold(0.0, f64::max)
    }
}

/// Message-pruning-tree tracker: the [`Tracker`] implementation shared by
/// STUN, DAT, Z-DAT, and Z-DAT+shortcuts.
pub struct TreeTracker<'a> {
    name: String,
    tree: TrackingTree,
    oracle: &'a dyn DistanceOracle,
    detection: Vec<HashSet<ObjectId>>,
    proxies: HashMap<ObjectId, NodeId>,
    /// Liu-et-al.-style shortcuts: ancestors keep enough detail that a
    /// located query routes straight (shortest path) to the proxy instead
    /// of walking tree edges down.
    shortcuts: bool,
    /// STUN-style query routing: requests are forwarded to the sink
    /// (root) first and descend from there — Kung & Vlah's design never
    /// prunes queries at intermediate ancestors, one reason its query
    /// cost ratio degrades (§1.3: "DAB does not take the query cost
    /// into account").
    via_root: bool,
    load: Vec<usize>,
    /// Per-node liveness under the fault model (true = crashed).
    down: Vec<bool>,
    /// Number of nodes currently down (0 ⇒ skip liveness checks).
    down_count: usize,
    /// Objects that lost a detection entry to a crash and whose chain has
    /// not been rebuilt yet. Empty on fault-free runs, so those stay
    /// bit-identical to a build without the fault layer.
    dirty: HashSet<ObjectId>,
    /// Message distance spent on crash repair (handoffs + chain rebuilds).
    repair_spent: f64,
    /// Optional structured-trace consumer (`None` = zero-cost silence).
    /// Events are tagged with the tree depth of the destination node as
    /// the "level" (the tree analogue of MOT's hierarchy level).
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> TreeTracker<'a> {
    /// Wraps a tree in tracking state.
    pub fn new(
        name: impl Into<String>,
        tree: TrackingTree,
        oracle: &'a dyn DistanceOracle,
        shortcuts: bool,
    ) -> Self {
        let n = tree.len();
        TreeTracker {
            name: name.into(),
            tree,
            oracle,
            detection: vec![HashSet::new(); n],
            proxies: HashMap::new(),
            shortcuts,
            via_root: false,
            load: vec![0; n],
            down: vec![false; n],
            down_count: 0,
            dirty: HashSet::new(),
            repair_spent: 0.0,
            sink: None,
        }
    }

    /// Routes queries through the root (STUN semantics) instead of
    /// stopping at the first ancestor holding the object.
    pub fn with_root_queries(mut self) -> Self {
        self.via_root = true;
        self
    }

    /// Attaches a structured-trace sink (see the `Tracker` trait's
    /// observability contract). Without one, no event is constructed.
    pub fn with_sink(mut self, sink: &'a dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    #[inline]
    fn emit_op(&self, op: OpKind, o: ObjectId, cost: f64) {
        if let Some(s) = self.sink {
            s.op_complete(op, o, cost);
        }
    }

    /// Emits one billed tree hop, tagged with the destination's depth
    /// (free when no sink is attached).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn hop(
        &self,
        op: OpKind,
        phase: TracePhase,
        ledger: LedgerKind,
        o: ObjectId,
        src: NodeId,
        dst: NodeId,
        distance: f64,
    ) {
        if let Some(s) = self.sink {
            s.event(&TraceEvent {
                op,
                phase,
                ledger,
                object: o,
                src,
                dst,
                level: self.tree.depth(dst) as u32,
                distance,
            });
        }
    }

    /// Whether queries are routed via the root.
    pub fn queries_via_root(&self) -> bool {
        self.via_root
    }

    /// The underlying tree (for structural assertions in tests).
    pub fn tree(&self) -> &TrackingTree {
        &self.tree
    }

    fn check_node(&self, u: NodeId) -> mot_core::Result<()> {
        if u.index() >= self.tree.len() {
            return Err(CoreError::UnknownNode(u));
        }
        Ok(())
    }

    fn add(&mut self, u: NodeId, o: ObjectId) {
        if self.detection[u.index()].insert(o) {
            self.load[u.index()] += 1;
        }
    }

    fn remove(&mut self, u: NodeId, o: ObjectId) {
        if self.detection[u.index()].remove(&o) {
            self.load[u.index()] -= 1;
        }
    }

    /// Whether `u` currently holds `o` in its detection set (committed
    /// state; used by the concurrent execution engine).
    pub fn holds(&self, u: NodeId, o: ObjectId) -> bool {
        self.detection[u.index()].contains(&o)
    }

    /// Whether this tracker routes located queries straight to the proxy.
    pub fn has_shortcuts(&self) -> bool {
        self.shortcuts
    }

    /// The live node nearest to `u` (deterministic tie-break by id) —
    /// the handoff target when a proxy crashes.
    fn nearest_live(&self, u: NodeId) -> Option<NodeId> {
        let live: Vec<NodeId> = (0..self.tree.len())
            .map(NodeId::from_index)
            .filter(|&v| v != u && !self.down[v.index()])
            .collect();
        self.oracle.nearest_in(u, &live)
    }

    /// The first crashed node on the tree path from `v` to the root, if
    /// any — a climb from `v` cannot get past it until it reboots.
    fn path_blocked(&self, v: NodeId) -> Option<NodeId> {
        if self.down_count == 0 {
            return None;
        }
        let mut cur = v;
        loop {
            if self.down[cur.index()] {
                return Some(cur);
            }
            match self.tree.parent(cur) {
                Some(p) => cur = p,
                None => return None,
            }
        }
    }

    /// Cost of the downward phase of a query that located `o` at `node`,
    /// or `None` for an unpublished object.
    pub fn descend_cost(&self, o: ObjectId, node: NodeId) -> Option<f64> {
        let proxy = *self.proxies.get(&o)?;
        if self.shortcuts {
            return Some(self.oracle.dist(node, proxy));
        }
        let mut cost = 0.0;
        let mut cur = node;
        while cur != proxy {
            let c = self
                .tree
                .children(cur)
                .iter()
                .copied()
                .find(|c| self.holds(*c, o))?;
            cost += self.oracle.dist(cur, c);
            cur = c;
        }
        Some(cost)
    }
}

impl Tracker for TreeTracker<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn publish(&mut self, o: ObjectId, proxy: NodeId) -> mot_core::Result<f64> {
        self.check_node(proxy)?;
        if self.proxies.contains_key(&o) {
            return Err(CoreError::AlreadyPublished(o));
        }
        if let Some(b) = self.path_blocked(proxy) {
            return Err(CoreError::NodeDown(b));
        }
        let mut cost = 0.0;
        let mut cur = proxy;
        self.add(cur, o);
        while let Some(p) = self.tree.parent(cur) {
            let d = self.oracle.dist(cur, p);
            cost += d;
            self.hop(
                OpKind::Publish,
                TracePhase::Climb,
                LedgerKind::Publish,
                o,
                cur,
                p,
                d,
            );
            cur = p;
            self.add(cur, o);
        }
        self.proxies.insert(o, proxy);
        self.emit_op(OpKind::Publish, o, cost);
        Ok(cost)
    }

    fn move_object(&mut self, o: ObjectId, to: NodeId) -> mot_core::Result<MoveOutcome> {
        self.check_node(to)?;
        if !self.proxies.contains_key(&o) {
            return Err(CoreError::UnknownObject(o));
        }
        if let Some(b) = self.path_blocked(to) {
            return Err(CoreError::NodeDown(b));
        }
        if self.dirty.contains(&o) {
            // Self-repair: rebuild the broken detection chain before the
            // climb, or the prune below would walk into the gap.
            self.repair_object(o)?;
        }
        let from = *self.proxies.get(&o).expect("checked above");
        if from == to {
            self.emit_op(OpKind::Move, o, 0.0);
            return Ok(MoveOutcome { from, cost: 0.0 });
        }
        let mut cost = 0.0;
        // insert: climb from the new proxy to the first holder (the LCA
        // of the old and new proxies).
        let mut added = HashSet::new();
        let mut cur = to;
        while !self.holds(cur, o) {
            self.add(cur, o);
            added.insert(cur);
            let p = self
                .tree
                .parent(cur)
                .expect("the root holds every published object");
            let d = self.oracle.dist(cur, p);
            cost += d;
            self.hop(
                OpKind::Move,
                TracePhase::Climb,
                LedgerKind::Maintenance,
                o,
                cur,
                p,
                d,
            );
            cur = p;
        }
        let meet = cur;
        // delete: prune the stale branch from the meet down to `from`,
        // following the unique old-path child (never the fresh one).
        let mut d = meet;
        loop {
            let next = self
                .tree
                .children(d)
                .iter()
                .copied()
                .find(|c| self.holds(*c, o) && !added.contains(c));
            match next {
                Some(c) => {
                    let dd = self.oracle.dist(d, c);
                    cost += dd;
                    self.hop(
                        OpKind::Move,
                        TracePhase::Prune,
                        LedgerKind::Maintenance,
                        o,
                        d,
                        c,
                        dd,
                    );
                    self.remove(c, o);
                    d = c;
                }
                None => break,
            }
        }
        debug_assert_eq!(d, from, "stale branch must end at the old proxy");
        self.proxies.insert(o, to);
        self.emit_op(OpKind::Move, o, cost);
        Ok(MoveOutcome { from, cost })
    }

    fn query(&self, from: NodeId, o: ObjectId) -> mot_core::Result<QueryResult> {
        self.check_node(from)?;
        let proxy = *self.proxies.get(&o).ok_or(CoreError::UnknownObject(o))?;
        if self.dirty.contains(&o) {
            // A read-only query cannot rebuild the chain; name the node
            // that broke it so a mutable caller can repair and retry.
            let mut culprit = proxy;
            let mut cur = proxy;
            loop {
                if self.down[cur.index()] || !self.holds(cur, o) {
                    culprit = cur;
                    break;
                }
                match self.tree.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            return Err(CoreError::NodeDown(culprit));
        }
        if let Some(b) = self.path_blocked(from) {
            return Err(CoreError::NodeDown(b));
        }
        let mut cost = 0.0;
        let mut cur = from;
        let done = |t: &Self, cur: NodeId| {
            if t.via_root {
                cur == t.tree.root()
            } else {
                t.holds(cur, o)
            }
        };
        while !done(self, cur) {
            let p = self
                .tree
                .parent(cur)
                .expect("the root holds every published object");
            let d = self.oracle.dist(cur, p);
            cost += d;
            self.hop(
                OpKind::Query,
                TracePhase::Climb,
                LedgerKind::Query,
                o,
                cur,
                p,
                d,
            );
            cur = p;
        }
        if self.shortcuts {
            // Ancestors store the routing detail: jump straight down.
            let d = self.oracle.dist(cur, proxy);
            cost += d;
            self.hop(
                OpKind::Query,
                TracePhase::SdlJump,
                LedgerKind::Query,
                o,
                cur,
                proxy,
                d,
            );
        } else {
            // Walk the detection chain down, one tree hop at a time.
            while cur != proxy {
                let c = self
                    .tree
                    .children(cur)
                    .iter()
                    .copied()
                    .find(|c| self.holds(*c, o))
                    .expect("detection chain must lead to the proxy");
                let d = self.oracle.dist(cur, c);
                cost += d;
                self.hop(
                    OpKind::Query,
                    TracePhase::Descend,
                    LedgerKind::Query,
                    o,
                    cur,
                    c,
                    d,
                );
                cur = c;
            }
        }
        self.emit_op(OpKind::Query, o, cost);
        Ok(QueryResult { proxy, cost })
    }

    fn proxy_of(&self, o: ObjectId) -> Option<NodeId> {
        self.proxies.get(&o).copied()
    }

    fn node_loads(&self) -> Vec<usize> {
        self.load.clone()
    }

    fn crash_node(&mut self, u: NodeId) {
        if u.index() >= self.tree.len() || self.down[u.index()] {
            return;
        }
        self.down[u.index()] = true;
        self.down_count += 1;
        let lost = std::mem::take(&mut self.detection[u.index()]);
        self.load[u.index()] = self.load[u.index()].saturating_sub(lost.len());
        let mut lost: Vec<ObjectId> = lost.into_iter().collect();
        lost.sort();
        for o in lost {
            self.dirty.insert(o);
            // Graceful degradation: an object proxied at the crashed
            // sensor is re-detected by the nearest live one (one handoff
            // hop, billed as repair); its chain rebuild stays lazy.
            if self.proxies.get(&o) == Some(&u) {
                if let Some(next) = self.nearest_live(u) {
                    let d = self.oracle.dist(u, next);
                    self.repair_spent += d;
                    self.hop(
                        OpKind::Repair,
                        TracePhase::Handoff,
                        LedgerKind::Repair,
                        o,
                        u,
                        next,
                        d,
                    );
                    self.emit_op(OpKind::Repair, o, d);
                    self.proxies.insert(o, next);
                    self.add(next, o);
                }
            }
        }
    }

    fn recover_node(&mut self, u: NodeId) {
        if u.index() < self.tree.len() && self.down[u.index()] {
            self.down[u.index()] = false;
            self.down_count -= 1;
        }
    }

    fn repair_object(&mut self, o: ObjectId) -> mot_core::Result<f64> {
        if !self.dirty.contains(&o) {
            return Ok(0.0);
        }
        let recorded = *self.proxies.get(&o).ok_or(CoreError::UnknownObject(o))?;
        let proxy = if self.down[recorded.index()] {
            self.nearest_live(recorded)
                .ok_or(CoreError::NodeDown(recorded))?
        } else {
            recorded
        };
        if let Some(b) = self.path_blocked(proxy) {
            // A crashed ancestor blocks the rebuild: defer — the next
            // operation after it reboots finishes the repair.
            return Err(CoreError::NodeDown(b));
        }
        // Scrub every surviving entry (stale branches included), then
        // re-publish the chain from the proxy; the climb is the repair.
        for i in 0..self.tree.len() {
            self.remove(NodeId::from_index(i), o);
        }
        self.proxies.insert(o, proxy);
        let mut cost = 0.0;
        let mut cur = proxy;
        self.add(cur, o);
        while let Some(p) = self.tree.parent(cur) {
            let d = self.oracle.dist(cur, p);
            cost += d;
            self.hop(
                OpKind::Repair,
                TracePhase::Climb,
                LedgerKind::Repair,
                o,
                cur,
                p,
                d,
            );
            cur = p;
            self.add(cur, o);
        }
        self.repair_spent += cost;
        self.dirty.remove(&o);
        self.emit_op(OpKind::Repair, o, cost);
        Ok(cost)
    }

    fn repair_cost(&self) -> f64 {
        self.repair_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;
    use mot_net::DenseOracle;

    /// A simple BFS tree over a grid for exercising the tracker.
    fn grid_tracker(shortcuts: bool) -> (mot_net::Graph, DenseOracle, Vec<Option<NodeId>>) {
        let g = generators::grid(4, 4).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let spt = mot_net::shortest_path_tree(&g, NodeId(0));
        let _ = shortcuts;
        (g, m, spt.parent)
    }

    #[test]
    fn from_parents_builds_consistent_structure() {
        let (_, _, parents) = grid_tracker(false);
        let t = TrackingTree::from_parents(NodeId(0), parents);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.len(), 16);
        for i in 1..16 {
            let u = NodeId(i);
            let p = t.parent(u).unwrap();
            assert_eq!(t.depth(u), t.depth(p) + 1);
            assert!(t.children(p).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_rejected() {
        // 0 -> 1 -> 2 -> 1 cycle
        let parent = vec![None, Some(NodeId(2)), Some(NodeId(1))];
        let _ = TrackingTree::from_parents(NodeId(0), parent);
    }

    #[test]
    fn publish_move_query_roundtrip() {
        let (g, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        let o = ObjectId(0);
        t.publish(o, NodeId(15)).unwrap();
        // ancestors of 15 hold the object
        assert!(t.holds(NodeId(15), o));
        assert!(t.holds(NodeId(0), o));
        let mv = t.move_object(o, NodeId(12)).unwrap();
        assert_eq!(mv.from, NodeId(15));
        assert!(!t.holds(NodeId(15), o));
        for x in g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, NodeId(12));
        }
    }

    #[test]
    fn detection_sets_are_exactly_proxy_ancestors() {
        let (_, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        let o = ObjectId(4);
        t.publish(o, NodeId(10)).unwrap();
        for hop in [11, 7, 3, 2, 6, 5] {
            t.move_object(o, NodeId(hop)).unwrap();
        }
        // collect expected ancestors of final proxy 5
        let mut expected = HashSet::new();
        let mut cur = Some(NodeId(5));
        while let Some(u) = cur {
            expected.insert(u);
            cur = t.tree().parent(u);
        }
        for i in 0..16 {
            let u = NodeId(i);
            assert_eq!(
                t.holds(u, o),
                expected.contains(&u),
                "detection set wrong at {u}"
            );
        }
        let total: usize = t.node_loads().iter().sum();
        assert_eq!(total, expected.len());
    }

    #[test]
    fn shortcuts_never_cost_more_on_queries() {
        let (g, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents.clone());
        let tree2 = TrackingTree::from_parents(NodeId(0), parents);
        let mut plain = TreeTracker::new("plain", tree, &m, false);
        let mut sc = TreeTracker::new("sc", tree2, &m, true);
        let o = ObjectId(0);
        for t in [&mut plain, &mut sc] {
            t.publish(o, NodeId(9)).unwrap();
            t.move_object(o, NodeId(13)).unwrap();
        }
        for x in g.nodes() {
            let qp = plain.query(x, o).unwrap();
            let qs = sc.query(x, o).unwrap();
            assert_eq!(qp.proxy, qs.proxy);
            assert!(
                qs.cost <= qp.cost + 1e-9,
                "from {x}: {} > {}",
                qs.cost,
                qp.cost
            );
        }
    }

    #[test]
    fn move_to_same_proxy_is_free() {
        let (_, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        t.publish(ObjectId(0), NodeId(3)).unwrap();
        assert_eq!(t.move_object(ObjectId(0), NodeId(3)).unwrap().cost, 0.0);
    }

    #[test]
    fn crashed_proxy_hands_object_to_live_neighbor() {
        let (g, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        let o = ObjectId(0);
        t.publish(o, NodeId(15)).unwrap();
        t.crash_node(NodeId(15));
        let new_proxy = t.proxy_of(o).unwrap();
        assert_ne!(new_proxy, NodeId(15));
        assert_eq!(m.dist(NodeId(15), new_proxy), 1.0, "nearest live sensor");
        assert!(t.repair_cost() > 0.0, "handoff hop billed as repair");
        t.recover_node(NodeId(15));
        assert!(t.repair_object(o).unwrap() > 0.0, "chain rebuild billed");
        for x in g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, new_proxy);
        }
    }

    #[test]
    fn mid_chain_crash_query_surfaces_node_down_then_repairs() {
        let (g, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        // STUN semantics: queries via the root
        let mut t = TreeTracker::new("STUN", tree, &m, false).with_root_queries();
        let o = ObjectId(0);
        t.publish(o, NodeId(15)).unwrap();
        let victim = t.tree().parent(NodeId(15)).unwrap();
        t.crash_node(victim);
        t.recover_node(victim);
        let err = t.query(NodeId(3), o).unwrap_err();
        assert!(matches!(err, CoreError::NodeDown(_)), "got {err:?}");
        let c = t.repair_object(o).unwrap();
        assert!(c > 0.0);
        assert_eq!(t.repair_object(o).unwrap(), 0.0, "repair is idempotent");
        for x in g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, NodeId(15));
        }
    }

    #[test]
    fn move_self_repairs_after_proxy_crash() {
        let (_, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        let o = ObjectId(0);
        t.publish(o, NodeId(15)).unwrap();
        t.crash_node(NodeId(15));
        t.recover_node(NodeId(15));
        let handoff = t.proxy_of(o).unwrap();
        let mv = t.move_object(o, NodeId(5)).unwrap();
        assert_eq!(mv.from, handoff, "move starts from the handoff proxy");
        assert_eq!(t.proxy_of(o), Some(NodeId(5)));
        assert_eq!(t.query(NodeId(10), o).unwrap().proxy, NodeId(5));
        // detection sets are whole again: exactly the ancestors of 5
        let total: usize = t.node_loads().iter().sum();
        assert_eq!(total, t.tree().depth(NodeId(5)) + 1);
    }

    #[test]
    fn operations_refuse_paths_through_down_nodes() {
        let (_, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        t.crash_node(NodeId(0)); // the root blocks every climb
        assert!(matches!(
            t.publish(ObjectId(0), NodeId(15)),
            Err(CoreError::NodeDown(_))
        ));
        t.recover_node(NodeId(0));
        t.publish(ObjectId(0), NodeId(15)).unwrap();
    }

    #[test]
    fn trace_events_sum_to_costs_and_tag_tree_depth() {
        use mot_core::MemorySink;
        let (_, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let sink = MemorySink::new();
        let mut t = TreeTracker::new("BFS", tree, &m, false).with_sink(&sink);
        let o = ObjectId(0);
        let pc = t.publish(o, NodeId(15)).unwrap();
        let mv = t.move_object(o, NodeId(12)).unwrap();
        let q = t.query(NodeId(3), o).unwrap();
        let ops = sink.ops();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], (OpKind::Publish, o, pc));
        assert_eq!(ops[1], (OpKind::Move, o, mv.cost));
        assert_eq!(ops[2], (OpKind::Query, o, q.cost));
        for ev in sink.events() {
            assert_eq!(ev.level, t.tree().depth(ev.dst) as u32);
        }
        // tracing off must not change costs (bit parity)
        let (_, m2, parents2) = grid_tracker(false);
        let tree2 = TrackingTree::from_parents(NodeId(0), parents2);
        let mut silent = TreeTracker::new("BFS", tree2, &m2, false);
        assert_eq!(
            silent.publish(o, NodeId(15)).unwrap().to_bits(),
            pc.to_bits()
        );
        assert_eq!(
            silent.move_object(o, NodeId(12)).unwrap().cost.to_bits(),
            mv.cost.to_bits()
        );
        assert_eq!(
            silent.query(NodeId(3), o).unwrap().cost.to_bits(),
            q.cost.to_bits()
        );
    }

    #[test]
    fn errors_match_core_conventions() {
        let (_, m, parents) = grid_tracker(false);
        let tree = TrackingTree::from_parents(NodeId(0), parents);
        let mut t = TreeTracker::new("BFS", tree, &m, false);
        assert!(matches!(
            t.query(NodeId(0), ObjectId(9)),
            Err(CoreError::UnknownObject(_))
        ));
        t.publish(ObjectId(1), NodeId(1)).unwrap();
        assert!(matches!(
            t.publish(ObjectId(1), NodeId(2)),
            Err(CoreError::AlreadyPublished(_))
        ));
        assert!(matches!(
            t.publish(ObjectId(2), NodeId(99)),
            Err(CoreError::UnknownNode(_))
        ));
    }
}
