//! Network dynamism: node joins/leaves under tracking (paper §7).
//!
//! The paper keeps `HS` usable under churn by (a) handing leadership to a
//! cluster member when a leader departs, (b) relabelling the embedded de
//! Bruijn graph with `O(1)` amortized updates per event, and (c) falling
//! back to a full rebuild once clusters drift past a threshold (too big
//! after joins, at risk of disconnection after leaves). This module
//! simulates exactly that protocol over all of an overlay's clusters and
//! measures the *adaptability* (nodes updated per event) that the `churn`
//! experiment reports. Full re-integration of a changed overlay into live
//! tracking state is, as in the paper, done by rebuild.

use crate::config::MotConfig;
use crate::mot::MotTracker;
use crate::object::ObjectId;
use crate::tracker::Tracker;
use mot_debruijn::DynamicCluster;
use mot_hierarchy::{build_doubling, Overlay, OverlayConfig};
use mot_net::{dijkstra, subgraph, DistanceOracle, Graph, NetError, NodeId, OracleKind};

/// Aggregate effect of one join/leave across every affected cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChurnReport {
    /// Total member updates across all affected clusters (the paper's
    /// adaptability measure, summed over the `O(log D)` levels the node
    /// participates in).
    pub nodes_updated: usize,
    /// Clusters whose membership changed.
    pub clusters_touched: usize,
    /// Leadership handoffs triggered.
    pub leader_changes: usize,
    /// True when some cluster crossed the drift threshold and a hierarchy
    /// rebuild is recommended.
    pub rebuild_recommended: bool,
}

/// Simulates §7's churn protocol over all clusters of an overlay.
pub struct ChurnSimulator<'a> {
    oracle: &'a dyn DistanceOracle,
    /// (level, radius) of each simulated cluster.
    roles: Vec<(usize, NodeId, f64)>,
    clusters: Vec<DynamicCluster>,
    original_sizes: Vec<usize>,
    /// Allowed relative growth/shrink before recommending a rebuild.
    drift_factor: f64,
    departed: Vec<bool>,
    /// Rebuild recommendations issued so far.
    pub rebuilds_recommended: usize,
}

impl<'a> ChurnSimulator<'a> {
    /// Builds the cluster population of `overlay` (one radius-`2^ℓ`
    /// cluster per internal member, as in §5).
    pub fn new(overlay: &Overlay, oracle: &'a dyn DistanceOracle, drift_factor: f64) -> Self {
        let mut roles = Vec::new();
        let mut clusters = Vec::new();
        for level in 1..=overlay.height() {
            let radius = (1u64 << level) as f64;
            for &center in overlay.level_members(level) {
                let mut members = oracle.ball(center, radius);
                members.sort();
                roles.push((level, center, radius));
                clusters.push(DynamicCluster::new(members));
            }
        }
        let original_sizes = clusters.iter().map(|c| c.members().len()).collect();
        ChurnSimulator {
            oracle,
            roles,
            clusters,
            original_sizes,
            drift_factor,
            departed: vec![false; oracle.node_count()],
            rebuilds_recommended: 0,
        }
    }

    fn drifted(&self, idx: usize) -> bool {
        let orig = self.original_sizes[idx] as f64;
        let now = self.clusters[idx].members().len() as f64;
        now > orig * self.drift_factor || now < (orig / self.drift_factor).floor()
    }

    /// Node `u` announces departure (the paper assumes failing nodes
    /// announce before dying so object state can be transferred).
    pub fn node_leaves(&mut self, u: NodeId) -> ChurnReport {
        debug_assert!(!self.departed[u.index()], "{u} left twice");
        self.departed[u.index()] = true;
        let mut report = ChurnReport::default();
        for idx in 0..self.clusters.len() {
            if !self.clusters[idx].members().contains(&u) || self.clusters[idx].members().len() <= 1
            {
                continue;
            }
            let ev = self.clusters[idx].leave(u);
            report.nodes_updated += ev.nodes_updated;
            report.clusters_touched += 1;
            report.leader_changes += usize::from(ev.leader_changed);
            if self.drifted(idx) {
                report.rebuild_recommended = true;
            }
        }
        if report.rebuild_recommended {
            self.rebuilds_recommended += 1;
        }
        report
    }

    /// A (possibly returning) node joins at its physical position; it
    /// enters every cluster whose center lies within the cluster radius.
    pub fn node_joins(&mut self, u: NodeId) -> ChurnReport {
        self.departed[u.index()] = false;
        let mut report = ChurnReport::default();
        for idx in 0..self.clusters.len() {
            let (_, center, radius) = self.roles[idx];
            if self.oracle.dist(center, u) > radius || self.clusters[idx].members().contains(&u) {
                continue;
            }
            let ev = self.clusters[idx].join(u);
            report.nodes_updated += ev.nodes_updated;
            report.clusters_touched += 1;
            if self.drifted(idx) {
                report.rebuild_recommended = true;
            }
        }
        if report.rebuild_recommended {
            self.rebuilds_recommended += 1;
        }
        report
    }

    /// Mean nodes-updated per cluster event so far, across all clusters —
    /// §7's amortized adaptability (O(1) per cluster; a node sits in
    /// `O(log D)` clusters, hence `O(log D)` overall).
    pub fn amortized_adaptability(&self) -> f64 {
        let (mut updates, mut events) = (0usize, 0usize);
        for c in &self.clusters {
            events += c.events.len();
            updates += c.events.iter().map(|e| e.nodes_updated).sum::<usize>();
        }
        if events == 0 {
            0.0
        } else {
            updates as f64 / events as f64
        }
    }

    /// Number of simulated clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

/// The substrate bundle produced by [`plan_rebuild`]: the surviving
/// deployment, its fresh oracle/overlay, id mappings, and the proxy
/// assignment for every surviving tracked object.
pub struct RebuildPlan {
    /// The surviving deployment (departed sensors removed).
    pub graph: Graph,
    /// Distance backend rebuilt over the surviving graph.
    pub oracle: Box<dyn DistanceOracle>,
    /// Fresh hierarchical overlay over the surviving graph.
    pub overlay: Overlay,
    /// `old_of_new[new] = old` node id mapping.
    pub old_of_new: Vec<NodeId>,
    /// `new_of_old[old] = Some(new)` for survivors.
    pub new_of_old: Vec<Option<NodeId>>,
    /// Object → proxy (in *new* ids). Objects whose proxy died are
    /// re-detected by the nearest surviving sensor (nearest-sensor
    /// model: the object is still physically in the field).
    pub proxies: Vec<(ObjectId, NodeId)>,
}

impl RebuildPlan {
    /// Builds a fresh tracker over the rebuilt substrate and re-publishes
    /// every object, returning the tracker and the total publish cost —
    /// the price of a §7 rebuild.
    pub fn execute(&self, cfg: MotConfig) -> crate::Result<(MotTracker<'_>, f64)> {
        let mut t = MotTracker::new(&self.overlay, &*self.oracle, cfg);
        let mut cost = 0.0;
        for &(o, proxy) in &self.proxies {
            cost += t.publish(o, proxy)?;
        }
        Ok((t, cost))
    }
}

/// Plans the full rebuild §7 falls back to once clusters drift past the
/// threshold: extract the surviving deployment, rebuild the overlay from
/// scratch, and re-assign proxies. Fails with
/// [`NetError::Disconnected`] when the survivors no longer form one
/// field.
pub fn plan_rebuild(
    g: &Graph,
    alive: &[bool],
    objects: &[(ObjectId, NodeId)],
    ocfg: &OverlayConfig,
    seed: u64,
) -> Result<RebuildPlan, NetError> {
    plan_rebuild_with(g, alive, objects, ocfg, seed, OracleKind::Auto)
}

/// As [`plan_rebuild`] with an explicit distance-oracle backend for the
/// rebuilt substrate.
pub fn plan_rebuild_with(
    g: &Graph,
    alive: &[bool],
    objects: &[(ObjectId, NodeId)],
    ocfg: &OverlayConfig,
    seed: u64,
    kind: OracleKind,
) -> Result<RebuildPlan, NetError> {
    let (sub, old_of_new) = subgraph(g, alive)?;
    let oracle = kind.build(&sub)?;
    let overlay = build_doubling(&sub, &*oracle, ocfg, seed);
    let mut new_of_old = vec![None; g.node_count()];
    for (new, old) in old_of_new.iter().enumerate() {
        new_of_old[old.index()] = Some(NodeId::from_index(new));
    }
    let proxies = objects
        .iter()
        .map(|&(o, old_proxy)| {
            let new_proxy = match new_of_old[old_proxy.index()] {
                Some(p) => p,
                None => {
                    // proxy died: nearest surviving sensor in the old
                    // field takes over detection
                    let d = dijkstra(g, old_proxy);
                    let nearest_old = g
                        .nodes()
                        .filter(|u| alive[u.index()])
                        .min_by(|&a, &b| {
                            d[a.index()]
                                .partial_cmp(&d[b.index()])
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        })
                        .expect("subgraph() guarantees at least one survivor");
                    new_of_old[nearest_old.index()].expect("survivor has a new id")
                }
            };
            (o, new_proxy)
        })
        .collect();
    Ok(RebuildPlan {
        graph: sub,
        oracle,
        overlay,
        old_of_new,
        new_of_old,
        proxies,
    })
}

/// Greedy few-handover assignment over one object trajectory
/// (arXiv:1105.0392, Eppstein/Goodrich/Löffler): partition the
/// position sequence into the fewest contiguous segments such that each
/// segment is covered by a single sensor within `radius` of every
/// position in it. The greedy sweep — keep the set of sensors that can
/// still cover the running segment, cut when it empties — is optimal
/// for a single trajectory by the classic exchange argument (any
/// assignment must cut no later than the greedy one does).
///
/// Returns the number of segments, i.e. distinct tracking assignments;
/// the handover count is `segments - 1`, against a naive duty cycle
/// that wakes a new detector on every hop (`positions.len() - 1`
/// handovers). An empty trajectory needs zero assignments.
pub fn min_handovers(trajectory: &[NodeId], oracle: &dyn DistanceOracle, radius: f64) -> usize {
    let mut segments = 0usize;
    let mut feasible: Vec<NodeId> = Vec::new();
    for &p in trajectory {
        feasible.retain(|&s| oracle.dist(s, p) <= radius);
        if feasible.is_empty() {
            // Start a new segment anchored at p: any covering sensor
            // must lie within `radius` of the segment's first position.
            feasible = oracle.ball(p, radius);
            segments += 1;
        }
    }
    segments
}

/// Energy prices of the duty-cycled tracking mode (arXiv:1108.1321,
/// Semwal et al.): a sensor pays `wake_cost` each time it is woken to
/// take over detection of an object, and `tx_cost` per unit distance of
/// update traffic. The defaults (wake 5, tx 1) reflect the paper's
/// regime where radio start-up dominates a single-hop transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Cost of waking a sensor into detection duty.
    pub wake_cost: f64,
    /// Cost per unit distance of update traffic.
    pub tx_cost: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            wake_cost: 5.0,
            tx_cost: 1.0,
        }
    }
}

/// Accumulated wake-ups and update traffic of one tracking run, priced
/// by an [`EnergyModel`]. The scenario experiments keep two ledgers per
/// workload — naive (a wake-up per hop) and few-handover (a wake-up per
/// [`min_handovers`] segment) — and report the energy saved.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    /// Sensor wake-ups charged so far.
    pub wakeups: u64,
    /// Update-traffic distance charged so far.
    pub tx_distance: f64,
}

impl EnergyLedger {
    /// Charges `n` sensor wake-ups.
    pub fn record_wakeups(&mut self, n: u64) {
        self.wakeups += n;
    }

    /// Charges `d` units of update-traffic distance.
    pub fn record_tx(&mut self, d: f64) {
        self.tx_distance += d;
    }

    /// Total energy under `model`.
    pub fn energy(&self, model: &EnergyModel) -> f64 {
        self.wakeups as f64 * model.wake_cost + self.tx_distance * model.tx_cost
    }

    /// Fraction of energy this ledger saves over `baseline` (in
    /// `[0, 1]` when it is cheaper; `0` when the baseline is free).
    pub fn saving_over(&self, baseline: &EnergyLedger, model: &EnergyModel) -> f64 {
        let base = baseline.energy(model);
        if base <= 0.0 {
            0.0
        } else {
            (base - self.energy(model)) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;
    use mot_net::DenseOracle;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (mot_net::Graph, DenseOracle) {
        let g = generators::grid(8, 8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        (g, m)
    }

    #[test]
    fn leave_touches_only_containing_clusters() {
        let (g, m) = setup();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut sim = ChurnSimulator::new(&o, &m, 2.0);
        let total = sim.cluster_count();
        let rep = sim.node_leaves(NodeId(27));
        assert!(rep.clusters_touched >= 1);
        assert!(rep.clusters_touched < total);
        assert!(rep.nodes_updated >= rep.clusters_touched);
    }

    #[test]
    fn leader_departure_hands_off() {
        let (g, m) = setup();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut sim = ChurnSimulator::new(&o, &m, 4.0);
        // The first member of some cluster is its leader; removing it
        // must trigger at least one handoff.
        let leader = sim.clusters[0].leader();
        let rep = sim.node_leaves(leader);
        assert!(rep.leader_changes >= 1);
    }

    #[test]
    fn join_after_leave_restores_membership() {
        let (g, m) = setup();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut sim = ChurnSimulator::new(&o, &m, 8.0);
        let u = NodeId(35);
        let before: usize = sim
            .clusters
            .iter()
            .filter(|c| c.members().contains(&u))
            .count();
        sim.node_leaves(u);
        let mid: usize = sim
            .clusters
            .iter()
            .filter(|c| c.members().contains(&u))
            .count();
        assert_eq!(mid, 0);
        sim.node_joins(u);
        let after: usize = sim
            .clusters
            .iter()
            .filter(|c| c.members().contains(&u))
            .count();
        assert_eq!(after, before);
    }

    #[test]
    fn amortized_adaptability_is_small_under_churn() {
        let (g, m) = setup();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut sim = ChurnSimulator::new(&o, &m, 16.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut out: Vec<NodeId> = Vec::new();
        for _ in 0..120 {
            if !out.is_empty() && rng.gen_bool(0.5) {
                let u = out.swap_remove(rng.gen_range(0..out.len()));
                sim.node_joins(u);
            } else {
                let u = NodeId(rng.gen_range(0..64));
                if !sim.departed[u.index()] {
                    sim.node_leaves(u);
                    out.push(u);
                }
            }
        }
        let a = sim.amortized_adaptability();
        assert!(a > 0.0 && a < 8.0, "amortized adaptability {a}");
    }

    #[test]
    fn rebuild_restores_tracking_after_heavy_churn() {
        let (g, _m) = setup();
        // a tracked population before the churn
        let objects: Vec<(ObjectId, NodeId)> = (0..6u32)
            .map(|k| (ObjectId(k), NodeId(k * 9 % 64)))
            .collect();
        // a fifth of the field dies (scattered, staying connected),
        // including most proxies
        let mut alive = vec![true; 64];
        for i in [0usize, 9, 27, 36, 45, 11, 13, 25, 29, 41, 43, 54] {
            alive[i] = false;
        }
        let plan = plan_rebuild(&g, &alive, &objects, &OverlayConfig::practical(), 3)
            .expect("survivors stay connected");
        assert_eq!(plan.graph.node_count(), 52);
        // dead proxies were reassigned to survivors
        for &(_, p) in &plan.proxies {
            assert!(p.index() < 52);
        }
        let (t, publish_cost) = plan.execute(MotConfig::plain()).unwrap();
        assert!(publish_cost > 0.0);
        for &(o, p) in &plan.proxies {
            for x in plan.graph.nodes() {
                assert_eq!(t.query(x, o).unwrap().proxy, p);
            }
        }
        // object 0's proxy (node 0) died; its new proxy must be near the
        // old position (an old neighbor of node 0 that survived)
        let (o0, p0) = plan.proxies[0];
        assert_eq!(o0, ObjectId(0));
        let old = plan.old_of_new[p0.index()];
        assert!(old == NodeId(1) || old == NodeId(8), "reassigned to {old}");
    }

    #[test]
    fn rebuild_fails_cleanly_when_survivors_split() {
        let g = generators::line(6).unwrap();
        let objects = vec![(ObjectId(0), NodeId(0))];
        let alive = vec![true, true, false, false, true, true];
        assert!(matches!(
            plan_rebuild(&g, &alive, &objects, &OverlayConfig::practical(), 1),
            Err(NetError::Disconnected)
        ));
    }

    #[test]
    fn min_handovers_beats_naive_and_respects_coverage() {
        let (g, m) = setup();
        // A straight 8-hop walk along the top row of the 8×8 grid.
        let traj: Vec<NodeId> = (0..8).map(NodeId::from_index).collect();
        // Radius 2: one sensor covers a 5-node stretch of the row, so
        // the greedy needs 2 segments where naive wakes 8 detectors.
        let segs = min_handovers(&traj, &m, 2.0);
        assert!(segs >= 2, "radius 2 cannot cover the whole row");
        assert!(segs < traj.len(), "greedy must beat a wake-per-hop");
        // Radius ≥ diameter: one assignment suffices.
        assert_eq!(min_handovers(&traj, &m, 64.0), 1);
        // Radius 0: only the position itself covers it.
        assert_eq!(min_handovers(&traj, &m, 0.0), traj.len());
        assert_eq!(min_handovers(&[], &m, 2.0), 0);
        let _ = g;
    }

    #[test]
    fn energy_ledger_prices_wakeups_and_traffic() {
        let model = EnergyModel::default();
        let mut naive = EnergyLedger::default();
        naive.record_wakeups(10);
        naive.record_tx(10.0);
        let mut few = EnergyLedger::default();
        few.record_wakeups(2);
        few.record_tx(10.0);
        assert_eq!(naive.energy(&model), 60.0);
        assert_eq!(few.energy(&model), 20.0);
        let saving = few.saving_over(&naive, &model);
        assert!((saving - 40.0 / 60.0).abs() < 1e-12, "saving {saving}");
        assert_eq!(few.saving_over(&EnergyLedger::default(), &model), 0.0);
    }

    #[test]
    fn drift_triggers_rebuild_recommendation() {
        let (g, m) = setup();
        let o = build_doubling(&g, &m, &OverlayConfig::practical(), 1);
        let mut sim = ChurnSimulator::new(&o, &m, 1.2); // tight threshold
                                                        // strip the neighborhood of node 0 until some cluster shrinks
        let mut recommended = false;
        for u in [0u32, 1, 8, 9, 2, 16, 10, 17] {
            let rep = sim.node_leaves(NodeId(u));
            recommended |= rep.rebuild_recommended;
        }
        assert!(recommended, "aggressive shrink never recommended a rebuild");
        assert!(sim.rebuilds_recommended >= 1);
    }
}
