//! Configuration of the MOT tracker.

/// Feature toggles and cost-accounting switches for [`crate::MotTracker`].
#[derive(Clone, Debug)]
pub struct MotConfig {
    /// Maintain special parents / special detection lists (§3). Turning
    /// this off reproduces the path-fragmentation pathology of Fig. 2 and
    /// backs the `ablation-sp` experiment.
    pub use_special_parents: bool,
    /// Count the distance travelled to update/probe special parents in
    /// reported costs. The paper's analysis excludes it ("we do not take
    /// into account the cost for probing special-parents"; it is a
    /// constant factor in doubling networks), so the default matches.
    pub count_sp_cost: bool,
    /// Distribute detection lists across radius-`2^i` clusters with
    /// hashed placement and de Bruijn routing (§5).
    pub load_balance: bool,
    /// Count the intra-cluster de Bruijn routing distance in reported
    /// costs (the `O(log n)` factor of Corollary 5.2). Only meaningful
    /// with `load_balance`.
    pub count_lb_cost: bool,
}

impl MotConfig {
    /// Plain MOT: Algorithm 1 exactly, analysis-style cost accounting.
    pub fn plain() -> Self {
        MotConfig {
            use_special_parents: true,
            count_sp_cost: false,
            load_balance: false,
            count_lb_cost: false,
        }
    }

    /// Load-balanced MOT (§5), de Bruijn routing costs included.
    pub fn load_balanced() -> Self {
        MotConfig {
            use_special_parents: true,
            count_sp_cost: false,
            load_balance: true,
            count_lb_cost: true,
        }
    }

    /// MOT without special parents — the Fig. 2 pathology, for ablation.
    pub fn no_special_parents() -> Self {
        MotConfig {
            use_special_parents: false,
            ..Self::plain()
        }
    }
}

impl Default for MotConfig {
    fn default() -> Self {
        Self::plain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(MotConfig::plain().use_special_parents);
        assert!(!MotConfig::plain().load_balance);
        assert!(MotConfig::load_balanced().load_balance);
        assert!(MotConfig::load_balanced().count_lb_cost);
        assert!(!MotConfig::no_special_parents().use_special_parents);
        assert!(MotConfig::default().use_special_parents);
    }
}
