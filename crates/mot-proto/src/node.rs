//! Per-sensor state machine.
//!
//! Each sensor keeps, per (object, level) internal-node role it currently
//! plays, a [`DlEntry`]: membership plus the routing state a distributed
//! node actually needs — the complete holder list of the level below
//! (*down members*, where deletes and query descents go) and the static
//! member list of its own level (*level members*, the repoint fan-out
//! targets after a splice). The invariant maintained by the protocol —
//! every trail level is the complete parent set of a single origin, meet
//! levels included (partial additions are rolled back) — keeps both lists
//! exact at all times.

use crate::arena::RouteArena;
use crate::message::{Message, Payload};
use mot_core::ObjectId;
use mot_hierarchy::Overlay;
use mot_net::{DistanceOracle, NodeId};
use std::collections::HashMap;

/// One detection-list entry with its distributed routing state.
#[derive(Clone, Debug)]
pub struct DlEntry {
    /// Complete holder list of the trail level below (empty at level 0).
    pub down_members: Vec<NodeId>,
    /// Member list of this entry's own level (the creating origin's
    /// parent set) — repoint fan-out targets.
    pub level_members: Vec<NodeId>,
    /// Where this entry's SDL guard lives, if special parents are on.
    pub sp_host: Option<NodeId>,
}

/// Context shared by every handler invocation.
pub struct Ctx<'a> {
    /// The hierarchy the node machines climb.
    pub overlay: &'a Overlay,
    /// Distance backend used for cost accounting and proxy checks.
    pub oracle: &'a dyn DistanceOracle,
    /// Whether SDL guards (Definition 3) are installed and consulted.
    pub use_special_parents: bool,
}

impl Ctx<'_> {
    /// Mirror of the direct implementation's special-parent policy.
    fn sp_for(&self, origin: NodeId, level: usize, index: usize) -> Option<NodeId> {
        if !self.use_special_parents {
            return None;
        }
        if self.overlay.sp_level(level) == level {
            return None;
        }
        Some(self.overlay.sp_host(origin, level, index))
    }
}

/// The state of one sensor node.
#[derive(Clone, Debug, Default)]
pub struct NodeState {
    dl: HashMap<(ObjectId, u8), DlEntry>,
    sdl: HashMap<ObjectId, Vec<(u8, NodeId)>>,
}

impl NodeState {
    /// Whether this node holds `o` at role `level`.
    pub fn holds(&self, o: ObjectId, level: usize) -> bool {
        self.dl.contains_key(&(o, level as u8))
    }

    /// The lowest level at which this node holds `o`, if any.
    pub fn lowest_level(&self, o: ObjectId) -> Option<usize> {
        self.dl
            .keys()
            .filter(|(obj, _)| *obj == o)
            .map(|&(_, l)| l as usize)
            .min()
    }

    /// The canonical SDL entry for `o` (minimum (level, child) pair — the
    /// same canonical choice as the direct implementation).
    pub fn sdl_entry(&self, o: ObjectId) -> Option<(usize, NodeId)> {
        self.sdl
            .get(&o)
            .and_then(|v| v.iter().min())
            .map(|&(l, c)| (l as usize, c))
    }

    /// Number of DL + SDL entries stored here (the load metric).
    pub fn load(&self) -> usize {
        self.dl.len() + self.sdl.values().map(Vec::len).sum::<usize>()
    }

    /// Installs a DL entry directly (used by the runtime to seed the
    /// proxy's own level-0 entry).
    pub(crate) fn insert_entry(&mut self, o: ObjectId, level: usize, entry: DlEntry) {
        self.dl.insert((o, level as u8), entry);
    }

    /// Handles one incoming message at node `me`, appending the outgoing
    /// messages to `out`. Route buffers carried by the consumed payload
    /// are either forwarded in an outgoing message or retired into
    /// `arena` — never silently dropped — so a steady-state message loop
    /// allocates nothing.
    pub fn handle(
        &mut self,
        me: NodeId,
        msg: Payload,
        ctx: &Ctx<'_>,
        arena: &mut RouteArena,
        out: &mut Vec<Message>,
    ) {
        match msg {
            Payload::Climb {
                object,
                origin,
                level,
                index,
                prev_members,
                added,
                publish,
            } => self.on_climb(
                me,
                ctx,
                object,
                origin,
                level,
                index,
                prev_members,
                added,
                publish,
                arena,
                out,
            ),
            Payload::Repoint {
                object,
                level,
                new_down,
                mut targets_remaining,
            } => {
                if let Some(e) = self.dl.get_mut(&(object, level as u8)) {
                    e.down_members.clear();
                    e.down_members.extend_from_slice(&new_down);
                }
                if targets_remaining.is_empty() {
                    arena.recycle(new_down);
                    arena.recycle(targets_remaining);
                } else {
                    let next = targets_remaining.remove(0);
                    out.push(Message {
                        src: me,
                        dst: next,
                        payload: Payload::Repoint {
                            object,
                            level,
                            new_down,
                            targets_remaining,
                        },
                    });
                }
            }
            Payload::Delete {
                object,
                level,
                members_remaining,
                continue_down,
            } => self.on_delete(
                me,
                object,
                level,
                members_remaining,
                continue_down,
                arena,
                out,
            ),
            Payload::SpInstall {
                object,
                guarded_level,
                child,
            } => {
                self.sdl
                    .entry(object)
                    .or_default()
                    .push((guarded_level as u8, child));
            }
            Payload::SpRemove {
                object,
                guarded_level,
                child,
            } => {
                if let Some(v) = self.sdl.get_mut(&object) {
                    if let Some(pos) = v
                        .iter()
                        .position(|&(l, c)| l == guarded_level as u8 && c == child)
                    {
                        v.swap_remove(pos);
                    }
                    if v.is_empty() {
                        self.sdl.remove(&object);
                    }
                }
            }
            Payload::Query {
                object,
                origin,
                level,
                index,
            } => self.on_query(me, ctx, object, origin, level, index, out),
            Payload::Descend {
                object,
                origin,
                level,
            } => self.on_descend(me, ctx, object, origin, level, out),
            Payload::Reply { .. } => {} // intercepted by the runtime
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_climb(
        &mut self,
        me: NodeId,
        ctx: &Ctx<'_>,
        object: ObjectId,
        origin: NodeId,
        level: usize,
        index: usize,
        prev_members: Vec<NodeId>,
        mut added: Vec<NodeId>,
        publish: bool,
        arena: &mut RouteArena,
        out: &mut Vec<Message>,
    ) {
        let station = ctx.overlay.station(origin, level);
        debug_assert_eq!(station.get(index), Some(&me), "climb misrouted");
        let key = (object, level as u8);

        if !publish && self.dl.contains_key(&key) {
            // --- the meet: lowest ancestor already holding the object ---
            let fresh_down = arena.take_from(&prev_members);
            let entry = self.dl.get_mut(&key).expect("checked above");
            let mut old_down = std::mem::replace(&mut entry.down_members, fresh_down);
            let mut repoint_targets = arena.take();
            repoint_targets.extend(entry.level_members.iter().copied().filter(|&t| t != me));
            // Roll back this pass's partial additions at the meet level
            // (reverse walk, continue_down = false: the rolled-back
            // entries point at the *fresh* fragment, which must survive),
            // keeping the level a complete parent set.
            match added.pop() {
                Some(first_back) => {
                    added.reverse();
                    out.push(Message {
                        src: me,
                        dst: first_back,
                        payload: Payload::Delete {
                            object,
                            level,
                            members_remaining: added,
                            continue_down: false,
                        },
                    });
                }
                None => arena.recycle(added),
            }
            // Repoint co-holders' down lists to the fresh fragment.
            if repoint_targets.is_empty() {
                arena.recycle(repoint_targets);
                arena.recycle(prev_members);
            } else {
                let first = repoint_targets.remove(0);
                out.push(Message {
                    src: me,
                    dst: first,
                    payload: Payload::Repoint {
                        object,
                        level,
                        new_down: prev_members,
                        targets_remaining: repoint_targets,
                    },
                });
            }
            // Delete the stale trail below the meet.
            debug_assert!(!old_down.is_empty(), "meet below level 1 is filtered out");
            if old_down.is_empty() {
                arena.recycle(old_down);
            } else {
                let first = old_down.remove(0);
                out.push(Message {
                    src: me,
                    dst: first,
                    payload: Payload::Delete {
                        object,
                        level: level - 1,
                        members_remaining: old_down,
                        continue_down: true,
                    },
                });
            }
            return;
        }

        // --- fresh addition ------------------------------------------------
        let sp_host = ctx.sp_for(origin, level, index);
        let entry = DlEntry {
            down_members: arena.take_from(&prev_members),
            level_members: arena.take_from(station),
            sp_host,
        };
        self.dl.insert(key, entry);
        if let Some(host) = sp_host {
            out.push(Message {
                src: me,
                dst: host,
                payload: Payload::SpInstall {
                    object,
                    guarded_level: level,
                    child: me,
                },
            });
        }
        added.push(me);
        if index + 1 < station.len() {
            out.push(Message {
                src: me,
                dst: station[index + 1],
                payload: Payload::Climb {
                    object,
                    origin,
                    level,
                    index: index + 1,
                    prev_members,
                    added,
                    publish,
                },
            });
        } else if level < ctx.overlay.height() {
            let next_station = ctx.overlay.station(origin, level + 1);
            arena.recycle(prev_members);
            out.push(Message {
                src: me,
                dst: next_station[0],
                payload: Payload::Climb {
                    object,
                    origin,
                    level: level + 1,
                    index: 0,
                    prev_members: added,
                    added: arena.take(),
                    publish,
                },
            });
        } else {
            debug_assert!(publish, "an insert must meet at the root at the latest");
            arena.recycle(prev_members);
            arena.recycle(added);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_delete(
        &mut self,
        me: NodeId,
        object: ObjectId,
        level: usize,
        mut members_remaining: Vec<NodeId>,
        continue_down: bool,
        arena: &mut RouteArena,
        out: &mut Vec<Message>,
    ) {
        let removed = self.dl.remove(&(object, level as u8));
        debug_assert!(removed.is_some(), "delete routed to a non-holder");
        let mut down_members = Vec::new();
        if let Some(entry) = removed {
            if let Some(host) = entry.sp_host {
                out.push(Message {
                    src: me,
                    dst: host,
                    payload: Payload::SpRemove {
                        object,
                        guarded_level: level,
                        child: me,
                    },
                });
            }
            arena.recycle(entry.level_members);
            down_members = entry.down_members;
        }
        if !members_remaining.is_empty() {
            let next = members_remaining.remove(0);
            arena.recycle(down_members);
            out.push(Message {
                src: me,
                dst: next,
                payload: Payload::Delete {
                    object,
                    level,
                    members_remaining,
                    continue_down,
                },
            });
        } else if continue_down && level > 0 && !down_members.is_empty() {
            // Last member of this level: continue to the level below via
            // this entry's down members.
            arena.recycle(members_remaining);
            let first = down_members.remove(0);
            out.push(Message {
                src: me,
                dst: first,
                payload: Payload::Delete {
                    object,
                    level: level - 1,
                    members_remaining: down_members,
                    continue_down: true,
                },
            });
        } else {
            arena.recycle(members_remaining);
            arena.recycle(down_members);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_query(
        &mut self,
        me: NodeId,
        ctx: &Ctx<'_>,
        object: ObjectId,
        origin: NodeId,
        level: usize,
        index: usize,
        out: &mut Vec<Message>,
    ) {
        // A physical node knows every role's DL: probe all levels, lowest
        // first (matches the direct implementation).
        if let Some(lowest) = self.lowest_level(object) {
            return self.descend_step(me, ctx, object, origin, lowest, out);
        }
        if ctx.use_special_parents {
            if let Some((guarded_level, child)) = self.sdl_entry(object) {
                out.push(Message {
                    src: me,
                    dst: child,
                    payload: Payload::Descend {
                        object,
                        origin,
                        level: guarded_level,
                    },
                });
                return;
            }
        }
        // Continue climbing DPath(origin).
        let station = ctx.overlay.station(origin, level);
        if index + 1 < station.len() {
            out.push(Message {
                src: me,
                dst: station[index + 1],
                payload: Payload::Query {
                    object,
                    origin,
                    level,
                    index: index + 1,
                },
            });
        } else {
            debug_assert!(
                level < ctx.overlay.height(),
                "the root always resolves a published object"
            );
            let next_station = ctx.overlay.station(origin, level + 1);
            out.push(Message {
                src: me,
                dst: next_station[0],
                payload: Payload::Query {
                    object,
                    origin,
                    level: level + 1,
                    index: 0,
                },
            });
        }
    }

    fn on_descend(
        &mut self,
        me: NodeId,
        ctx: &Ctx<'_>,
        object: ObjectId,
        origin: NodeId,
        level: usize,
        out: &mut Vec<Message>,
    ) {
        debug_assert!(self.holds(object, level), "descend routed to a non-holder");
        self.descend_step(me, ctx, object, origin, level, out)
    }

    /// One step of the downward phase from a holder at `level`: reply if
    /// this is the proxy, otherwise forward to the nearest holder below.
    fn descend_step(
        &self,
        me: NodeId,
        ctx: &Ctx<'_>,
        object: ObjectId,
        origin: NodeId,
        level: usize,
        out: &mut Vec<Message>,
    ) {
        if level == 0 {
            out.push(Message {
                src: me,
                dst: origin,
                payload: Payload::Reply { object, proxy: me },
            });
            return;
        }
        let entry = &self.dl[&(object, level as u8)];
        let next = ctx
            .oracle
            .nearest_in(me, &entry.down_members)
            .expect("trail levels are never empty");
        out.push(Message {
            src: me,
            dst: next,
            payload: Payload::Descend {
                object,
                origin,
                level: level - 1,
            },
        });
    }
}
